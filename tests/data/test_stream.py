"""The unbounded tweet stream: determinism, random access, bounded memory."""

import tracemalloc

import numpy as np
import pytest

from repro.data.stream import (
    LANGUAGE_CODE_WEIGHTS,
    STREAM_EPOCH,
    stream_chunk,
    tweet_stream,
)
from repro.errors import InvalidParameterError

COLUMNS = (
    "id", "uid", "tweet_time", "retweet_count", "likes_count",
    "lang_code", "score",
)


class TestStreamChunk:
    def test_columns_and_lengths(self):
        chunk = stream_chunk(0, 512)
        assert set(chunk) == set(COLUMNS)
        assert all(len(chunk[name]) == 512 for name in COLUMNS)

    def test_deterministic_per_pair(self):
        first = stream_chunk(7, 256, seed=3)
        second = stream_chunk(7, 256, seed=3)
        for name in COLUMNS:
            assert np.array_equal(first[name], second[name])

    def test_chunks_differ_across_index_and_seed(self):
        base = stream_chunk(0, 256, seed=0)
        assert not np.array_equal(
            base["score"], stream_chunk(1, 256, seed=0)["score"]
        )
        assert not np.array_equal(
            base["score"], stream_chunk(0, 256, seed=1)["score"]
        )

    def test_random_access_needs_no_predecessors(self):
        # Chunk c is a pure function of (seed, c): jumping straight to it
        # must equal walking the stream there.
        direct = stream_chunk(5, 128, seed=2)
        stream = tweet_stream(128, seed=2)
        for _ in range(5):
            next(stream)
        walked = next(stream)
        for name in COLUMNS:
            assert np.array_equal(direct[name], walked[name])

    def test_global_ids_are_contiguous(self):
        chunk = stream_chunk(3, 100)
        assert np.array_equal(
            chunk["id"], np.arange(300, 400, dtype=np.int64)
        )
        assert np.array_equal(
            chunk["tweet_time"], STREAM_EPOCH + chunk["id"]
        )

    def test_score_is_float32_and_nonnegative(self):
        chunk = stream_chunk(0, 4096)
        assert chunk["score"].dtype == np.float32
        assert (chunk["score"] >= 0).all()

    def test_lang_codes_in_range(self):
        chunk = stream_chunk(0, 4096)
        assert chunk["lang_code"].min() >= 0
        assert chunk["lang_code"].max() < len(LANGUAGE_CODE_WEIGHTS)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            stream_chunk(-1, 128)
        with pytest.raises(InvalidParameterError):
            stream_chunk(0, 0)
        with pytest.raises(InvalidParameterError):
            stream_chunk(0, 128, seed=-1)


class TestTweetStream:
    def test_resumes_mid_stream(self):
        resumed = next(tweet_stream(64, seed=1, start_chunk=9))
        assert np.array_equal(
            resumed["id"], stream_chunk(9, 64, seed=1)["id"]
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            next(tweet_stream(0))
        with pytest.raises(InvalidParameterError):
            next(tweet_stream(64, start_chunk=-1))

    def test_memory_stays_bounded_by_one_chunk(self):
        # The regression the lazy generator exists for: consuming many
        # chunks must not accumulate memory proportional to the stream.
        chunk_rows = 1 << 14
        row_bytes = sum(
            array.dtype.itemsize
            for array in stream_chunk(0, 8).values()
        )
        stream = tweet_stream(chunk_rows)
        next(stream)  # warm the cached user CDF and numpy internals
        tracemalloc.start()
        for _ in range(24):
            chunk = next(stream)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(chunk["id"]) == chunk_rows
        # Peak covers one chunk plus generation temporaries — far below
        # the 24 chunks a materializing implementation would hold.
        budget = 8 * row_bytes * chunk_rows
        assert peak < budget, (
            f"peak {peak} bytes exceeds {budget} (~8 chunks); "
            "is the stream materializing its history?"
        )
