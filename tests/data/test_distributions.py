"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.data.distributions import (
    bucket_killer,
    decreasing,
    generate,
    increasing,
    list_distributions,
    uniform_doubles,
    uniform_floats,
    uniform_uints,
    zipf_integers,
)
from repro.errors import InvalidParameterError


class TestUniform:
    def test_floats_shape_and_range(self):
        values = uniform_floats(1000)
        assert values.dtype == np.float32
        assert len(values) == 1000
        assert (values >= 0).all() and (values < 1).all()

    def test_doubles(self):
        assert uniform_doubles(100).dtype == np.float64

    def test_uints_span_the_word(self):
        values = uniform_uints(1 << 16)
        assert values.dtype == np.uint32
        assert values.max() > 2**31  # high bit actually exercised

    def test_seed_determinism(self):
        assert np.array_equal(uniform_floats(100, seed=1), uniform_floats(100, seed=1))
        assert not np.array_equal(
            uniform_floats(100, seed=1), uniform_floats(100, seed=2)
        )


class TestSorted:
    def test_increasing_is_sorted(self):
        values = increasing(500)
        assert np.all(np.diff(values) >= 0)

    def test_decreasing_is_reversed_increasing(self):
        assert np.array_equal(decreasing(500, seed=9), increasing(500, seed=9)[::-1])


class TestBucketKiller:
    def test_structure(self):
        values = bucket_killer(10000)
        ones = values == np.float32(1.0)
        assert ones.sum() == 10000 - 4
        specials = values[~ones]
        one_bits = np.float32(1.0).view(np.uint32)
        for special in specials:
            difference = int(special.view(np.uint32)) ^ int(one_bits)
            # Exactly one 8-bit digit differs.
            digits = [(difference >> (8 * d)) & 0xFF for d in range(4)]
            assert sum(1 for digit in digits if digit) == 1

    def test_minimum_size(self):
        with pytest.raises(InvalidParameterError):
            bucket_killer(4)


class TestZipf:
    def test_range_and_dtype(self):
        values = zipf_integers(10000, 100)
        assert values.dtype == np.int64
        assert values.min() >= 0
        assert values.max() < 100

    def test_skew_concentrates_mass(self):
        values = zipf_integers(100000, 1000, skew=1.3)
        _, counts = np.unique(values, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / len(values)
        assert top_share > 0.3

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            zipf_integers(10, 0)
        with pytest.raises(InvalidParameterError):
            zipf_integers(10, 5, skew=-1)


class TestRegistry:
    def test_generate_by_name(self):
        values = generate("increasing", 100)
        assert np.all(np.diff(values) >= 0)

    def test_all_registered_names_work(self):
        for name in list_distributions():
            assert len(generate(name, 64)) == 64

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            generate("pareto", 10)

    def test_negative_n(self):
        with pytest.raises(InvalidParameterError):
            uniform_floats(-1)
