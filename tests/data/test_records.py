"""Tests for key/value record batches (Section 6.6 workloads)."""

import numpy as np
import pytest

from repro.data.records import RecordBatch, gather_payload, make_batch
from repro.errors import InvalidParameterError


class TestMakeBatch:
    @pytest.mark.parametrize("num_keys", [1, 2, 3])
    def test_configurations(self, num_keys):
        batch = make_batch(1000, num_keys=num_keys)
        assert batch.num_keys == num_keys
        assert len(batch) == 1000
        assert batch.row_bytes == 4 * num_keys + 4

    def test_value_column_is_row_ids(self):
        batch = make_batch(100)
        assert np.array_equal(batch.values, np.arange(100, dtype=np.int32))

    def test_invalid_key_count(self):
        with pytest.raises(InvalidParameterError):
            make_batch(10, num_keys=4)

    def test_total_bytes(self):
        batch = make_batch(100, num_keys=2)
        assert batch.total_bytes == 100 * 12


class TestValidation:
    def test_unequal_key_lengths(self):
        with pytest.raises(InvalidParameterError):
            RecordBatch(
                keys=[np.zeros(3), np.zeros(4)], values=np.zeros(3, np.int32)
            )

    def test_value_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            RecordBatch(keys=[np.zeros(3)], values=np.zeros(4, np.int32))

    def test_empty_keys(self):
        with pytest.raises(InvalidParameterError):
            RecordBatch(keys=[], values=np.zeros(3, np.int32))


class TestCompositeRank:
    def test_single_key_is_identity_order(self):
        batch = make_batch(500, num_keys=1, seed=4)
        rank = batch.composite_rank()
        assert np.array_equal(np.argsort(rank), np.argsort(batch.keys[0]))

    def test_secondary_key_breaks_ties(self):
        primary = np.array([1.0, 1.0, 2.0, 2.0], dtype=np.float32)
        secondary = np.array([5.0, 9.0, 3.0, 1.0], dtype=np.float32)
        batch = RecordBatch(
            keys=[primary, secondary], values=np.arange(4, dtype=np.int32)
        )
        order = np.argsort(batch.composite_rank())[::-1]
        assert order.tolist() == [2, 3, 1, 0]

    def test_primary_key_dominates(self):
        primary = np.array([1.0, 2.0], dtype=np.float32)
        secondary = np.array([1000.0, 0.0], dtype=np.float32)
        batch = RecordBatch(
            keys=[primary, secondary], values=np.arange(2, dtype=np.int32)
        )
        rank = batch.composite_rank()
        assert rank[1] > rank[0]


class TestTakeAndGather:
    def test_take_selects_rows(self):
        batch = make_batch(100, num_keys=2, seed=0)
        subset = batch.take(np.array([5, 10, 15]))
        assert len(subset) == 3
        assert np.array_equal(subset.values, [5, 10, 15])
        assert np.array_equal(subset.keys[1], batch.keys[1][[5, 10, 15]])

    def test_gather_payload(self):
        payload = {
            "text": np.array(["a", "b", "c", "d"]),
            "score": np.array([1, 2, 3, 4]),
        }
        gathered = gather_payload(np.array([3, 1]), payload)
        assert gathered["text"].tolist() == ["d", "b"]
        assert gathered["score"].tolist() == [4, 2]
