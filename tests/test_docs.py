"""Documentation health: the checks behind the CI ``docs`` job.

Runs the same checker CI runs (``tools/check_docs.py``) so a broken link,
a stale CLI example, or a docs-index / architecture-table gap fails the
tier-1 suite locally before it fails the docs job remotely.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepositoryDocs:
    def test_all_intra_repo_links_resolve(self):
        assert checker.check_links() == []

    def test_readme_indexes_every_doc(self):
        assert checker.check_docs_index() == []

    def test_architecture_covers_every_package(self):
        assert checker.check_architecture_coverage() == []

    def test_quoted_cli_commands_answer_help(self):
        assert checker.check_cli_examples() == []

    def test_examples_cover_the_new_surfaces(self):
        commands = {command for _, command in checker.cli_invocations()}
        assert "repro approx-bench" in commands
        assert "repro serve-bench" in commands


class TestCheckerCatchesRot(object):
    def test_broken_link_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](does/not/exist.md) for details")
        problems = checker.check_links([doc])
        assert len(problems) == 1
        assert "does/not/exist.md" in problems[0]

    def test_external_and_anchor_links_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[a](https://example.com) [b](#section) [c](mailto:x@y.z)"
        )
        assert checker.check_links([doc]) == []

    def test_unknown_subcommand_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\npython -m repro no-such-command --n 4\n```\n")
        problems = checker.check_cli_examples([doc])
        assert len(problems) == 1
        assert "no-such-command" in problems[0]

    def test_non_bash_fences_are_not_executed(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```python\npython -m repro no-such-command\n```\n")
        assert checker.check_cli_examples([doc]) == []
