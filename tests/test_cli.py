"""Tests for the top-level command line."""


from repro.cli import main


class TestTopKCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["topk", "--n", "4096", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out
        assert "simulated" in out
        assert "top values" in out

    def test_explicit_algorithm_and_distribution(self, capsys):
        code = main(
            [
                "topk",
                "--n", "4096",
                "--k", "4",
                "--algorithm", "radix-select",
                "--distribution", "increasing",
            ]
        )
        assert code == 0
        assert "radix-select" in capsys.readouterr().out

    def test_timeline_rendering(self, capsys):
        assert main(["topk", "--n", "4096", "--k", "8", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "SortReducer" in out

    def test_model_n_extrapolation(self, capsys):
        assert main(
            ["topk", "--n", "4096", "--k", "8", "--model-n", "536870912"]
        ) == 0
        assert "536870912" in capsys.readouterr().out


class TestPlanCommand:
    def test_ranks_algorithms(self, capsys):
        assert main(["plan", "--n", "536870912", "--k", "256"]) == 0
        out = capsys.readouterr().out
        assert "bitonic" in out
        assert "radix-select" in out
        assert "choice" in out

    def test_profile_changes_the_ranking(self, capsys):
        main(["plan", "--k", "1024", "--dtype", "uint32",
              "--profile", "uniform-uint"])
        uint_out = capsys.readouterr().out
        main(["plan", "--k", "1024", "--profile", "bucket-killer"])
        killer_out = capsys.readouterr().out
        assert "radix-select" in uint_out.splitlines()[1]
        assert "bitonic" in killer_out.splitlines()[1]


class TestExplainCommand:
    def test_explains_a_query(self, capsys):
        code = main(
            [
                "explain",
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10",
                "--rows", "8192",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "fused" in out


class TestDispatch:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "topk" in capsys.readouterr().out
