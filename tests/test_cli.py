"""Tests for the top-level command line."""


from repro.cli import main


class TestTopKCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["topk", "--n", "4096", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out
        assert "simulated" in out
        assert "top values" in out

    def test_explicit_algorithm_and_distribution(self, capsys):
        code = main(
            [
                "topk",
                "--n", "4096",
                "--k", "4",
                "--algorithm", "radix-select",
                "--distribution", "increasing",
            ]
        )
        assert code == 0
        assert "radix-select" in capsys.readouterr().out

    def test_timeline_rendering(self, capsys):
        assert main(["topk", "--n", "4096", "--k", "8", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "SortReducer" in out

    def test_model_n_extrapolation(self, capsys):
        assert main(
            ["topk", "--n", "4096", "--k", "8", "--model-n", "536870912"]
        ) == 0
        assert "536870912" in capsys.readouterr().out


class TestPlanCommand:
    def test_ranks_algorithms(self, capsys):
        assert main(["plan", "--n", "536870912", "--k", "256"]) == 0
        out = capsys.readouterr().out
        assert "bitonic" in out
        assert "radix-select" in out
        assert "choice" in out

    def test_profile_changes_the_ranking(self, capsys):
        main(["plan", "--k", "1024", "--dtype", "uint32",
              "--profile", "uniform-uint"])
        uint_out = capsys.readouterr().out
        main(["plan", "--k", "1024", "--profile", "bucket-killer"])
        killer_out = capsys.readouterr().out
        assert "radix-select" in uint_out.splitlines()[1]
        assert "bitonic" in killer_out.splitlines()[1]


class TestExplainCommand:
    def test_explains_a_query(self, capsys):
        code = main(
            [
                "explain",
                "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10",
                "--rows", "8192",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "fused" in out


class TestServeBenchCommand:
    def test_small_workload_reports_and_passes(self, capsys):
        code = main(
            ["serve-bench", "--queries", "60", "--shapes", "2",
             "--n", "128", "--k", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "bit-equal" in out

    def test_json_report_and_baseline_round_trip(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_serving.json"
        code = main(
            ["serve-bench", "--queries", "60", "--shapes", "2",
             "--n", "128", "--k", "4", "--json", "--out", str(path)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True
        assert payload["plan_cache"]["hit_rate"] > 0.9
        assert json.loads(path.read_text()) == payload
        # The run gates cleanly against its own baseline.
        code = main(
            ["serve-bench", "--queries", "60", "--shapes", "2",
             "--n", "128", "--k", "4", "--baseline", str(path)]
        )
        assert code == 0

    def test_ablation_flags(self, capsys):
        code = main(
            ["serve-bench", "--queries", "30", "--shapes", "2",
             "--n", "128", "--k", "4", "--no-cache", "--no-batch", "--json"]
        )
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["plan_cache"]["hits"] == 0
        assert payload["batcher"]["batches"] == 0
        assert payload["identical"] is True


class TestDispatch:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "topk" in capsys.readouterr().out
