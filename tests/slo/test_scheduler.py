"""The SLO decision core: EDF order, the ladder, admission, the control arm."""

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ResourceExhaustedError
from repro.serving.batcher import ServingRequest
from repro.slo import (
    DEGRADE,
    REJECT,
    RUN,
    SHED_BREAKER,
    SHED_DEADLINE,
    FifoScheduler,
    SloScheduler,
)


def request(n=50_000, k=64, qos="standard", deadline_ms=None, seed=0):
    data = np.random.default_rng(seed).integers(
        0, 1 << 20, size=n, dtype=np.int32
    )
    return ServingRequest(data=data, k=k, qos=qos, deadline_ms=deadline_ms)


@pytest.fixture
def scheduler(device):
    return SloScheduler(device=device)


class TestEdfOrder:
    def test_earliest_deadline_runs_first(self, scheduler):
        late = request(qos="best-effort", deadline_ms=9.0)
        soon = request(qos="gold", deadline_ms=2.0)
        middle = request(qos="standard", deadline_ms=5.0)
        to_run, shed = scheduler.prepare([late, soon, middle], now_ms=0.0)
        assert [r.deadline_ms for r in to_run] == [2.0, 5.0, 9.0]
        assert shed == []

    def test_priority_breaks_deadline_ties(self, scheduler):
        best = request(qos="best-effort", deadline_ms=4.0)
        gold = request(qos="gold", deadline_ms=4.0)
        to_run, _ = scheduler.prepare([best, gold], now_ms=0.0)
        assert to_run[0] is gold


class TestShedding:
    def test_overdue_sheddable_queries_are_shed(self, scheduler):
        overdue = request(qos="best-effort", deadline_ms=1.0)
        fresh = request(qos="best-effort", deadline_ms=9.0)
        to_run, shed = scheduler.prepare([overdue, fresh], now_ms=2.0)
        assert to_run == [fresh]
        [(victim, decision, error)] = shed
        assert victim is overdue
        assert decision.action == SHED_DEADLINE
        assert isinstance(error, DeadlineExceededError)

    def test_overdue_non_sheddable_queries_still_run(self, scheduler):
        # Gold never consented to shedding: a late gold answer beats none.
        overdue = request(qos="gold", deadline_ms=1.0)
        to_run, shed = scheduler.prepare([overdue], now_ms=5.0)
        assert to_run == [overdue] and shed == []

    def test_breaker_shed_splits_by_consent(self, scheduler):
        sheddable = request(qos="best-effort", deadline_ms=5.0)
        protected = request(qos="gold", deadline_ms=5.0)
        keep, shed = scheduler.breaker_shed([sheddable, protected])
        assert keep == [protected]
        [(victim, decision, error)] = shed
        assert victim is sheddable
        assert decision.action == SHED_BREAKER
        assert isinstance(error, ResourceExhaustedError)


class TestDegradation:
    def test_projected_overrun_degrades_a_degradable_query(self, scheduler):
        # Deadline tighter than one EWMA service time: EDF projects a
        # miss, and the recall model finds a cheaper approximate config.
        victim = request(qos="standard", deadline_ms=0.01)
        to_run, _ = scheduler.prepare([victim], now_ms=0.0)
        assert to_run == [victim]
        assert victim.degraded
        assert victim.recall_target == scheduler.policy.degraded_recall
        assert 0.0 < victim.expected_recall <= 1.0
        assert [d.action for d in scheduler.decisions] == [DEGRADE]

    def test_gold_is_never_degraded(self, scheduler):
        victim = request(qos="gold", deadline_ms=0.01)
        scheduler.prepare([victim], now_ms=0.0)
        assert not victim.degraded
        assert victim.recall_target == 1.0

    def test_comfortable_deadlines_stay_exact(self, scheduler):
        victim = request(qos="standard", deadline_ms=100.0)
        scheduler.prepare([victim], now_ms=0.0)
        assert not victim.degraded

    def test_explicitly_approximate_queries_are_left_alone(self, scheduler):
        victim = request(qos="standard", deadline_ms=0.01)
        victim.recall_target = 0.95  # the tenant already chose a target
        scheduler.prepare([victim], now_ms=0.0)
        assert not victim.degraded
        assert victim.recall_target == 0.95


class TestAdmission:
    def test_over_budget_class_is_rejected(self, scheduler):
        budget = scheduler.policy.class_named("best-effort").queue_budget
        assert scheduler.admit("best-effort", budget - 1) is None
        decision = scheduler.admit("best-effort", budget)
        assert decision is not None and decision.action == REJECT
        error = scheduler.rejection_error(decision)
        assert isinstance(error, ResourceExhaustedError)


class TestBookkeeping:
    def test_note_run_logs_exactly_once(self, scheduler):
        req = request(deadline_ms=50.0)
        # prepare() may see the same queued request across many cycles and
        # must not log RUN; the single RUN entry comes at execution time.
        scheduler.prepare([req], now_ms=0.0)
        scheduler.prepare([req], now_ms=0.1)
        assert scheduler.decisions == []
        scheduler.note_run(req)
        assert [d.action for d in scheduler.decisions] == [RUN]

    def test_ewma_tracks_observed_service_times(self, scheduler):
        initial = scheduler.ewma_service_ms
        scheduler.observe_service(10 * initial)
        assert initial < scheduler.ewma_service_ms < 10 * initial


class TestFifoControlArm:
    def test_fifo_never_reorders_never_sheds_never_degrades(self, device):
        fifo = FifoScheduler(device=device)
        late = request(qos="best-effort", deadline_ms=0.001)
        soon = request(qos="gold", deadline_ms=2.0)
        to_run, shed = fifo.prepare([late, soon], now_ms=5.0)
        assert to_run == [late, soon] and shed == []
        assert not late.degraded
        assert fifo.decisions == []

    def test_fifo_ignores_class_budgets_but_validates_names(self, device):
        from repro.errors import InvalidParameterError

        fifo = FifoScheduler(device=device)
        assert fifo.admit("best-effort", 10_000) is None
        with pytest.raises(InvalidParameterError):
            fifo.admit("platinum", 0)
