"""Open-loop workload generation: arrival processes and trace shapes."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.slo import OpenLoopWorkload, bursty_arrivals, poisson_arrivals


class TestPoisson:
    def test_deterministic_for_a_seed(self):
        first = poisson_arrivals(10.0, 200, seed=7)
        second = poisson_arrivals(10.0, 200, seed=7)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, poisson_arrivals(10.0, 200, seed=8))

    def test_timestamps_are_increasing(self):
        arrivals = poisson_arrivals(5.0, 500, seed=0)
        assert len(arrivals) == 500
        assert np.all(np.diff(arrivals) > 0)

    def test_long_run_rate_matches_nominal(self):
        arrivals = poisson_arrivals(10.0, 5000, seed=0)
        realized = len(arrivals) / arrivals[-1]
        assert realized == pytest.approx(10.0, rel=0.1)

    @pytest.mark.parametrize("rate,count", [(0.0, 10), (-1.0, 10), (5.0, 0)])
    def test_invalid_parameters_rejected(self, rate, count):
        with pytest.raises(InvalidParameterError):
            poisson_arrivals(rate, count)


class TestBursty:
    def test_deterministic_for_a_seed(self):
        first = bursty_arrivals(10.0, 200, seed=7)
        assert np.array_equal(first, bursty_arrivals(10.0, 200, seed=7))

    def test_long_run_rate_matches_nominal(self):
        # The MMPP's calm rate is solved so the long-run offered rate
        # equals the nominal one despite the burst state's multiplier.
        arrivals = bursty_arrivals(10.0, 8000, seed=0)
        realized = len(arrivals) / arrivals[-1]
        assert realized == pytest.approx(10.0, rel=0.15)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of the gaps must exceed the
        # Poisson process's (~1): the whole point of the second process.
        poisson_gaps = np.diff(poisson_arrivals(10.0, 4000, seed=3))
        bursty_gaps = np.diff(bursty_arrivals(10.0, 4000, seed=3))
        def scv(gaps):
            return np.var(gaps) / np.mean(gaps) ** 2
        assert scv(bursty_gaps) > scv(poisson_gaps)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_factor": 1.0},
            {"burst_fraction": 0.0},
            {"burst_fraction": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            bursty_arrivals(10.0, 100, **kwargs)


class TestWorkload:
    def test_generate_is_deterministic(self):
        first = OpenLoopWorkload(queries=40, seed=3)
        second = OpenLoopWorkload(queries=40, seed=3)
        column_a, trace_a = first.generate()
        column_b, trace_b = second.generate()
        assert np.array_equal(column_a, column_b)
        assert trace_a == trace_b

    def test_every_query_gets_a_distinct_window_length(self):
        _, trace = OpenLoopWorkload(queries=60, seed=0).generate()
        lengths = [query.n for query in trace]
        assert len(set(lengths)) == len(lengths)
        assert all(
            40_960 <= query.n < 65_536 and query.offset >= 0 for query in trace
        )

    def test_shapes_are_rate_independent(self):
        # A load sweep must rank identical windows at every rate: only the
        # arrival timestamps may differ.
        _, slow = OpenLoopWorkload(queries=30, rate_per_ms=2.0, seed=5).generate()
        _, fast = OpenLoopWorkload(queries=30, rate_per_ms=50.0, seed=5).generate()
        for a, b in zip(slow, fast):
            assert (a.offset, a.n, a.k, a.qos) == (b.offset, b.n, b.k, b.qos)
            assert a.arrival_ms != b.arrival_ms

    def test_class_mix_covers_every_class(self):
        _, trace = OpenLoopWorkload(queries=120, seed=0).generate()
        assert {query.qos for query in trace} == {
            "gold",
            "standard",
            "best-effort",
        }

    def test_bursty_process_is_selectable(self):
        workload = OpenLoopWorkload(queries=20, process="bursty", seed=0)
        assert len(workload.arrivals()) == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queries": 0},
            {"process": "uniform"},
            {"n_min": 0},
            {"n_min": 1 << 18, "n_max": 1 << 18},
            {"queries": 100, "n_min": 1000, "n_max": 1050},
            {"k": 0},
        ],
    )
    def test_invalid_workloads_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            OpenLoopWorkload(**kwargs)
