"""SloTopKServer: QoS admission, deadlines, and shutdown on the thread path."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets
from repro.errors import (
    InvalidParameterError,
    ResourceExhaustedError,
    ShutdownError,
)
from repro.resilience import BreakerPolicy
from repro.slo import DEFAULT_CLASSES, SloPolicy, SloTopKServer


class TestSubmission:
    def test_round_trip_with_qos(self, device, rng):
        data = rng.random(2048).astype(np.float32)
        with SloTopKServer(device=device) as server:
            outcome = server.submit(data, k=16, qos="gold").result(timeout=30)
        expected_values, _ = reference_topk(data, 16)
        assert np.array_equal(outcome.values, expected_values)

    def test_unknown_qos_rejected(self, device, rng):
        with SloTopKServer(device=device) as server:
            with pytest.raises(InvalidParameterError):
                server.submit(rng.random(64).astype(np.float32), k=2,
                              qos="platinum")

    def test_class_queue_budget_enforced(self, device, rng):
        tiny = SloPolicy(
            classes=tuple(
                type(qos)(
                    qos.name, qos.priority, qos.deadline_ms, 2,
                    qos.degradable, qos.sheddable,
                )
                for qos in DEFAULT_CLASSES
            )
        )
        data = rng.random(128).astype(np.float32)
        server = SloTopKServer(device=device, policy=tiny, auto_start=False)
        try:
            futures = [server.submit(data, k=4, qos="standard")
                       for _ in range(2)]
            with pytest.raises(ResourceExhaustedError):
                server.submit(data, k=4, qos="standard")
            # Another class's budget is independent of the exhausted one.
            futures.append(server.submit(data, k=4, qos="gold"))
            server.start()
            for future in futures:
                assert future.result(timeout=30).values.shape == (4,)
        finally:
            server.close()

    def test_deadline_accounting_lands_in_metrics(self, device, rng):
        data = rng.random(1024).astype(np.float32)
        with SloTopKServer(device=device) as server:
            server.submit(data, k=8, qos="gold").result(timeout=30)
            server.flush()
            met = server.metrics.value("serving.deadline_met", qos="gold")
            missed = server.metrics.value(
                "serving.deadline_missed", qos="gold"
            )
        assert (met or 0) + (missed or 0) == 1


class TestShutdown:
    def test_close_fails_undispatched_slo_futures(self, device, rng):
        server = SloTopKServer(device=device, auto_start=False)
        future = server.submit(rng.random(64).astype(np.float32), k=2)
        server.close()
        with pytest.raises(ShutdownError):
            future.result(timeout=5)


class TestStats:
    def test_stats_expose_the_slo_layer(self, device, rng):
        with SloTopKServer(device=device) as server:
            server.submit(rng.random(256).astype(np.float32), k=4).result(
                timeout=30
            )
            server.flush()
            stats = server.stats()
        assert stats["slo"]["ewma_service_ms"] > 0
        assert stats["slo"]["breaker"]["state"] == "closed"
        assert stats["slo"]["decisions"] >= 1

    def test_breaker_can_be_disabled(self, device):
        with SloTopKServer(device=device, enable_breaker=False) as server:
            assert server.breaker is None
            assert server.stats()["slo"]["breaker"] is None


class TestSessionIntegration:
    def test_session_serve_slo_flag(self, device):
        session = Session(device)
        session.register(generate_tweets(4096, seed=7))
        with session.serve(slo=True) as server:
            assert isinstance(server, SloTopKServer)
            outcome = server.submit(
                table="tweets", column="likes_count", k=10, qos="best-effort"
            ).result(timeout=30)
        column = session.table("tweets").column("likes_count")
        expected_values, _ = reference_topk(column, 10)
        assert np.array_equal(outcome.values, expected_values)

    def test_session_serve_accepts_a_policy(self, device):
        session = Session(device)
        policy = SloPolicy(
            degraded_recall=0.97, breaker=BreakerPolicy(failure_threshold=5)
        )
        with session.serve(slo=policy) as server:
            assert server.policy.degraded_recall == 0.97
            assert server.breaker.policy.failure_threshold == 5

    def test_session_serve_default_stays_plain(self, device):
        session = Session(device)
        with session.serve() as server:
            assert not isinstance(server, SloTopKServer)
