"""SLO serving layer tests."""
