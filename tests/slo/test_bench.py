"""The SLO load-sweep benchmark and its baseline gate."""

import copy
import json

import pytest

from repro.errors import InvalidParameterError
from repro.slo import check_baseline, run_slo_benchmark

RATES = (8.0, 60.0)


@pytest.fixture(scope="module")
def report():
    return run_slo_benchmark(queries=80, rates=RATES, seed=0)


class TestSweep:
    def test_one_point_per_rate(self, report):
        assert [point.rate for point in report.points] == list(RATES)

    def test_calm_rate_is_pristine_and_identical(self, report):
        calm = report.points[0]
        assert calm.pristine and calm.identical and not calm.saturated

    def test_overload_rate_saturates_and_slo_dominates(self, report):
        hot = report.points[1]
        assert hot.saturated
        assert hot.slo.goodput > hot.fifo.goodput
        assert report.dominates

    def test_all_three_gates_hold(self, report):
        assert report.recall_honest
        assert report.exact_below_saturation
        assert report.passed

    def test_empty_rate_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_slo_benchmark(rates=())


class TestSerialization:
    def test_report_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["format"] == "repro-slo-bench"
        assert payload["passed"] is True
        assert len(payload["points"]) == len(RATES)
        assert "rate_per_ms" not in payload["workload"]

    def test_render_mentions_every_rate_and_verdicts(self, report):
        text = report.render()
        for rate in RATES:
            assert f"{rate:.1f}" in text
        assert "dominance" in text and "below satur." in text


class TestBaselineGate:
    def test_matching_baseline_reports_no_problems(self, report):
        assert check_baseline(report, report.to_dict()) == []

    def test_goodput_drift_is_flagged(self, report):
        baseline = copy.deepcopy(report.to_dict())
        baseline["points"][1]["slo"]["goodput"] *= 2.0
        problems = check_baseline(report, baseline)
        assert any("goodput" in problem for problem in problems)

    def test_latency_drift_is_flagged(self, report):
        baseline = copy.deepcopy(report.to_dict())
        gold = baseline["points"][0]["slo"]["classes"]["gold"]
        gold["p99"] *= 10.0
        problems = check_baseline(report, baseline)
        assert any("p99" in problem for problem in problems)

    def test_wrong_format_rejected_outright(self, report):
        assert check_baseline(report, {"format": "something-else"}) == [
            "baseline is not a repro-slo-bench document"
        ]

    def test_workload_mismatch_rejected(self, report):
        baseline = copy.deepcopy(report.to_dict())
        baseline["workload"]["queries"] = 999
        problems = check_baseline(report, baseline)
        assert len(problems) == 1 and "workload" in problems[0]

    def test_missing_rate_is_flagged(self, report):
        baseline = copy.deepcopy(report.to_dict())
        baseline["points"].append(
            copy.deepcopy(baseline["points"][0])
        )
        baseline["points"][-1]["rate"] = 99.0
        problems = check_baseline(report, baseline)
        assert any("rate 99.0 missing" in problem for problem in problems)
