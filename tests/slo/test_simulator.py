"""Deterministic overload simulation: decisions, digests, the ladder."""

import numpy as np
import pytest

from repro.gpu.faults import FaultInjector, FaultPlan
from repro.observability.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerPolicy, CircuitBreaker
from repro.serving.plan_cache import PlanCache
from repro.slo import (
    FifoScheduler,
    OpenLoopWorkload,
    SloScheduler,
    simulate,
)

#: Offered rates bracketing the exact path's ~20 q/ms capacity on the
#: titan-x-maxwell profile: one comfortably below, one well past it.
CALM_RATE = 8.0
OVERLOAD_RATE = 60.0


@pytest.fixture(scope="module")
def plan_cache():
    # Planning is payload-independent; one cache across the module keeps
    # these tests fast without changing any simulated result.
    from repro.gpu.device import get_device

    return PlanCache(device=get_device("titan-x-maxwell"), capacity=1024)


def run(rate, scheduler_cls=SloScheduler, device=None, queries=80, **kwargs):
    workload = OpenLoopWorkload(queries=queries, rate_per_ms=rate, seed=0)
    return simulate(
        workload,
        scheduler_cls(device=device),
        device=device,
        metrics=MetricsRegistry(),
        **kwargs,
    )


class TestDeterminism:
    def test_same_seed_same_decisions_and_digests(self, device, plan_cache):
        first = run(OVERLOAD_RATE, device=device, plan_cache=plan_cache)
        second = run(OVERLOAD_RATE, device=device, plan_cache=plan_cache)
        assert first.decisions == second.decisions
        assert len(first.answers) == len(second.answers)
        for a, b in zip(first.answers, second.answers):
            assert (a.action, a.ok, a.start_ms, a.finish_ms) == (
                b.action,
                b.ok,
                b.start_ms,
                b.finish_ms,
            )
        for qos in ("gold", "standard", "best-effort"):
            assert first.class_latency(qos) == second.class_latency(qos)

    def test_every_offered_query_is_accounted_for(self, device, plan_cache):
        result = run(OVERLOAD_RATE, device=device, plan_cache=plan_cache)
        assert result.offered == 80
        assert {answer.index for answer in result.answers} == set(range(80))


class TestBelowSaturation:
    def test_slo_arm_is_bit_equal_to_fifo(self, device, plan_cache):
        fifo = run(
            CALM_RATE, FifoScheduler, device=device, plan_cache=plan_cache
        )
        slo = run(CALM_RATE, device=device, plan_cache=plan_cache)
        assert slo.degraded_count == 0
        assert slo.shed_count == 0
        assert slo.rejected_count == 0
        for a, b in zip(fifo.answers, slo.answers):
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.indices, b.indices)


class TestOverload:
    def test_ladder_engages_and_beats_fifo(self, device, plan_cache):
        fifo = run(
            OVERLOAD_RATE, FifoScheduler, device=device, plan_cache=plan_cache
        )
        slo = run(OVERLOAD_RATE, device=device, plan_cache=plan_cache)
        assert fifo.goodput < 0.9, "sweep rate no longer saturates FIFO"
        assert slo.goodput > fifo.goodput
        assert slo.degraded_count + slo.shed_count > 0

    def test_degraded_answers_meet_their_advertised_recall(
        self, device, plan_cache
    ):
        slo = run(OVERLOAD_RATE, device=device, plan_cache=plan_cache)
        degraded = [answer for answer in slo.answers if answer.degraded]
        assert degraded, "overload no longer triggers degradation"
        for answer in degraded:
            assert answer.measured_recall is not None
            assert answer.expected_recall >= slo.min_advertised_recall()
            assert answer.measured_recall >= answer.expected_recall - 0.05

    def test_queue_pressure_rejects_past_max_pending(self, device, plan_cache):
        result = run(
            OVERLOAD_RATE,
            device=device,
            plan_cache=plan_cache,
            max_pending=4,
        )
        assert result.rejected_count > 0
        rejected = [a for a in result.answers if a.action == "reject"]
        assert all(not a.ok and a.error for a in rejected)


class TestBreakerIntegration:
    def test_persistent_faults_trip_the_breaker(self, device, plan_cache):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="device-lost",
                    probability=1.0,
                    max_injections=1000,
                )
            ],
        )
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        result = run(
            CALM_RATE,
            device=device,
            plan_cache=plan_cache,
            injector=injector,
            breaker=breaker,
            queries=30,
        )
        assert result.breaker["times_opened"] >= 1
        # Every query still resolves: shed fast, or served through the
        # resilient fallback chain.
        assert len(result.answers) == 30

    def test_result_serializes_breaker_state(self, device, plan_cache):
        breaker = CircuitBreaker()
        result = run(
            CALM_RATE,
            device=device,
            plan_cache=plan_cache,
            breaker=breaker,
            queries=10,
        )
        assert result.to_dict()["breaker"]["state"] == "closed"


class TestResultAccounting:
    def test_to_dict_is_json_ready(self, device, plan_cache):
        import json

        result = run(CALM_RATE, device=device, plan_cache=plan_cache)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["scheduler"] == "slo"
        assert payload["offered"] == 80
        assert 0.0 <= payload["goodput"] <= 1.0
        assert set(payload["classes"]) <= {"gold", "standard", "best-effort"}

    def test_goodput_counts_met_deadlines_only(self, device, plan_cache):
        result = run(CALM_RATE, device=device, plan_cache=plan_cache)
        met = sum(1 for answer in result.answers if answer.ok)
        assert result.goodput == met / result.offered
