"""QoS classes and the SLO policy: contracts and validation."""

import pytest

from repro.errors import InvalidParameterError
from repro.slo import (
    BEST_EFFORT,
    DEFAULT_CLASSES,
    DEFAULT_POLICY,
    GOLD,
    STANDARD,
    QoSClass,
    SloPolicy,
)


class TestClassTable:
    def test_default_tiers_are_ordered_by_priority(self):
        assert [qos.priority for qos in DEFAULT_CLASSES] == [0, 1, 2]
        assert GOLD.deadline_ms < STANDARD.deadline_ms < BEST_EFFORT.deadline_ms

    def test_ladder_consent_tightens_with_priority(self):
        # Gold consents to nothing; best-effort consents to everything.
        assert not GOLD.degradable and not GOLD.sheddable
        assert STANDARD.degradable and not STANDARD.sheddable
        assert BEST_EFFORT.degradable and BEST_EFFORT.sheddable

    @pytest.mark.parametrize(
        "kwargs", [{"deadline_ms": 0.0}, {"queue_budget": 0}]
    )
    def test_bad_class_rejected(self, kwargs):
        defaults = dict(
            name="x", priority=0, deadline_ms=1.0, queue_budget=4,
            degradable=True, sheddable=True,
        )
        with pytest.raises(InvalidParameterError):
            QoSClass(**{**defaults, **kwargs})


class TestPolicy:
    def test_class_named_resolves_and_rejects(self):
        assert DEFAULT_POLICY.class_named("gold") is GOLD
        with pytest.raises(InvalidParameterError):
            DEFAULT_POLICY.class_named("platinum")

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(InvalidParameterError):
            SloPolicy(classes=(GOLD, GOLD))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"classes": ()},
            {"degraded_recall": 0.0},
            {"degraded_recall": 1.5},
            {"ewma_alpha": 0.0},
            {"initial_service_ms": 0.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            SloPolicy(**kwargs)
