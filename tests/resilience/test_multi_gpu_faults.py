"""Multi-GPU device loss: redistribution, cascades, gather retries."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.errors import DeviceLostError
from repro.gpu.device import get_device
from repro.gpu.faults import FaultInjector, FaultPlan, inject
from repro.hybrid.multi_gpu import MultiGpuTopK


@pytest.fixture
def data(rng):
    return rng.standard_normal(8192).astype(np.float32)


@pytest.fixture
def expected(data):
    return reference_topk(data, 32)[0]


def test_no_injector_unchanged(data, expected):
    result = MultiGpuTopK().run(data, 32)
    assert np.array_equal(result.values, expected)
    assert result.trace.notes["devices_lost"] == 0


def test_one_lost_device_redistributes_exactly(data, expected):
    injector = FaultInjector(
        seed=0,
        plans=[FaultPlan(site="device-launch", fault="device-lost", nth=1)],
    )
    with inject(injector):
        result = MultiGpuTopK().run(data, 32)
    assert np.array_equal(result.values, expected)
    assert result.trace.notes["devices_lost"] == 1
    assert result.trace.notes["slices_redistributed"] >= 1


def test_loss_costs_simulated_time(data):
    baseline = MultiGpuTopK().run(data, 32).simulated_ms()
    injector = FaultInjector(
        seed=0,
        plans=[FaultPlan(site="device-launch", fault="device-lost", nth=1)],
    )
    with inject(injector):
        degraded = MultiGpuTopK().run(data, 32)
    assert degraded.simulated_ms() > baseline
    names = [kernel.name for kernel in degraded.trace.kernels]
    assert "multi-gpu-redistribute" in names


def test_cascading_loss_survives_with_one_survivor(data, expected):
    devices = [get_device("titan-x-maxwell") for _ in range(4)]
    injector = FaultInjector(
        seed=0,
        plans=[
            FaultPlan(
                site="device-launch",
                fault="device-lost",
                nth=None,
                probability=1.0,
                max_injections=3,
            )
        ],
    )
    with inject(injector):
        result = MultiGpuTopK(devices).run(data, 32)
    assert np.array_equal(result.values, expected)
    assert result.trace.notes["devices_lost"] == 3


def test_all_devices_lost_raises_typed_error(data):
    injector = FaultInjector(
        seed=0,
        plans=[
            FaultPlan(
                site="device-launch",
                fault="device-lost",
                probability=1.0,
                max_injections=None,
            )
        ],
    )
    with pytest.raises(DeviceLostError):
        with inject(injector):
            MultiGpuTopK().run(data, 32)


def test_gather_transfer_fault_retried(data, expected):
    injector = FaultInjector(
        seed=0,
        plans=[
            FaultPlan(site="pcie-transfer", fault="transfer-error", nth=1)
        ],
    )
    with inject(injector):
        result = MultiGpuTopK().run(data, 32)
    assert np.array_equal(result.values, expected)


def test_determinism_identical_seeds(data):
    def run_once():
        injector = FaultInjector(
            seed=5,
            plans=[
                FaultPlan(
                    site="device-launch",
                    fault="device-lost",
                    probability=0.5,
                    max_injections=1,
                )
            ],
        )
        with inject(injector):
            result = MultiGpuTopK().run(data, 32)
        return (
            result.simulated_ms(),
            injector.schedule(),
            result.trace.notes["devices_lost"],
        )

    assert run_once() == run_once()
