"""Property-style guarantees: every fault at every site, for every
algorithm, either recovers to the exact top-k or raises a typed
:class:`~repro.errors.ReproError` — never a wrong answer, never a bare
exception.  NaN and Inf payloads keep the same guarantee."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.errors import ReproError
from repro.gpu.faults import FAULT_TYPES, FaultInjector, FaultPlan, inject
from repro.resilience import ResilientExecutor

ALGORITHMS = ("bitonic", "radix-select", "bucket-select", "sort", "per-thread")

SITES = ("kernel-launch", "result-transfer", "result-buffer")


def _expected(data, k):
    return reference_topk(data, k)[0]


def _run_under_fault(data, k, algorithm, site, fault, silent=False, seed=0):
    """Returns ("exact"|"typed-error", result_or_error)."""
    injector = FaultInjector(
        seed=seed,
        plans=[
            FaultPlan(
                site=site, fault=fault, nth=1, silent=silent, max_injections=2
            )
        ],
    )
    try:
        with inject(injector):
            result = ResilientExecutor().run(data, k, algorithm=algorithm)
    except ReproError as error:
        return "typed-error", error
    assert np.array_equal(result.values, _expected(data, k)), (
        f"{algorithm} under {fault}@{site} returned a wrong answer"
    )
    return "exact", result


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(99).standard_normal(2048).astype(np.float32)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("site", SITES)
@pytest.mark.parametrize("fault", FAULT_TYPES)
def test_exact_or_typed_for_every_combination(data, algorithm, site, fault):
    outcome, _ = _run_under_fault(data, 32, algorithm, site, fault)
    # A single bounded fault must always be survivable: either retried or
    # absorbed by a fallback, so the strong form of the property holds.
    assert outcome == "exact"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_silent_corruption_exact_or_typed(data, algorithm):
    outcome, _ = _run_under_fault(
        data, 32, algorithm, "result-buffer", "memory-corruption", silent=True
    )
    assert outcome == "exact"


class TestSpecialPayloads:
    @pytest.fixture
    def inf_data(self):
        data = np.random.default_rng(7).standard_normal(2048)
        data = data.astype(np.float32)
        data[::97] = np.inf
        data[1::191] = -np.inf
        return data

    @pytest.fixture
    def nan_data(self):
        data = np.random.default_rng(8).standard_normal(2048)
        data = data.astype(np.float32)
        data[::131] = np.nan
        return data

    @pytest.mark.parametrize("fault", FAULT_TYPES)
    def test_inf_payload_survives_faults(self, inf_data, fault):
        outcome, _ = _run_under_fault(
            inf_data, 16, "bitonic", "kernel-launch", fault
        )
        assert outcome == "exact"

    @pytest.mark.parametrize("fault", FAULT_TYPES)
    def test_nan_payload_exact_or_typed(self, nan_data, fault):
        """NaN order is implementation-defined, so the guarantee weakens to
        'k plausible values or a typed error' — never a bare exception."""
        injector = FaultInjector(
            seed=0,
            plans=[FaultPlan(site="kernel-launch", fault=fault, nth=1)],
        )
        try:
            with inject(injector):
                result = ResilientExecutor().run(nan_data, 16)
        except ReproError:
            return
        assert len(result.values) == 16
        assert len(result.indices) == 16

    def test_nan_payload_silent_corruption_never_hangs(self, nan_data):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="result-buffer",
                    fault="memory-corruption",
                    nth=1,
                    silent=True,
                )
            ],
        )
        try:
            with inject(injector):
                result = ResilientExecutor().run(nan_data, 16)
        except ReproError:
            return
        assert len(result.values) == 16
