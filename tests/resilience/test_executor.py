"""The resilient executor: retries, fallbacks, verification, zero cost."""

import numpy as np
import pytest

from repro import observability as obs
from repro.algorithms.base import reference_topk
from repro.core.topk import topk
from repro.errors import InvalidParameterError, TransferError
from repro.gpu.faults import FaultInjector, FaultPlan, inject
from repro.gpu.timing import BACKOFF_KERNEL
from repro.resilience import (
    AttemptLog,
    ResilientExecutor,
    RetryPolicy,
    resilient_topk,
)


@pytest.fixture
def data(rng):
    return rng.standard_normal(4096).astype(np.float32)


@pytest.fixture
def expected(data):
    return reference_topk(data, 32)[0]


class TestZeroCost:
    def test_no_injector_identical_values_and_timing(self, data):
        plain = topk(data, 32)
        resilient = resilient_topk(data, 32)
        assert np.array_equal(plain.values, resilient.values)
        assert np.array_equal(plain.indices, resilient.indices)
        assert plain.simulated_ms() == resilient.simulated_ms()

    def test_no_backoff_kernel_without_faults(self, data):
        result = resilient_topk(data, 32)
        names = [kernel.name for kernel in result.trace.kernels]
        assert BACKOFF_KERNEL not in names


class TestRetry:
    def test_transient_fault_retried_to_exact_result(self, data, expected):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(site="kernel-launch", fault="device-lost", nth=1)
            ],
        )
        log = AttemptLog()
        with inject(injector):
            result = ResilientExecutor().run(data, 32, log=log)
        assert np.array_equal(result.values, expected)
        assert log.retries == 1
        assert log.fallbacks == []

    def test_backoff_charged_in_simulated_time(self, data):
        baseline = resilient_topk(data, 32).simulated_ms()
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(site="kernel-launch", fault="device-lost", nth=1)
            ],
        )
        with inject(injector):
            result = resilient_topk(data, 32)
        names = [kernel.name for kernel in result.trace.kernels]
        assert BACKOFF_KERNEL in names
        assert result.simulated_ms() > baseline

    def test_retry_policy_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_backoff_seconds=1e-3,
            multiplier=2.0,
            max_backoff_seconds=3e-3,
        )
        backoffs = [policy.backoff_seconds(a) for a in range(1, 5)]
        assert backoffs == [1e-3, 2e-3, 3e-3, 3e-3]


class TestFallback:
    def test_persistent_fault_falls_back(self, data, expected):
        # Exactly enough injections to exhaust the first stage's retry
        # budget (3 attempts, each dying on its first kernel launch), so
        # the executor must fall back — and the next stage then runs clean.
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="device-lost",
                    probability=1.0,
                    max_injections=3,
                )
            ],
        )
        log = AttemptLog()
        with inject(injector):
            result = ResilientExecutor().run(
                data, 32, algorithm="bitonic", log=log
            )
        assert np.array_equal(result.values, expected)
        assert log.fallbacks, "expected at least one fallback transition"
        assert result.algorithm != "bitonic"

    def test_everything_down_reaches_cpu(self, data, expected):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="device-lost",
                    probability=1.0,
                    max_injections=None,
                )
            ],
        )
        with inject(injector):
            result = resilient_topk(data, 32)
        assert np.array_equal(result.values, expected)
        assert result.algorithm == "cpu-hand-pq"

    def test_exhausted_chain_raises_typed_error(self, data):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="result-transfer",
                    fault="transfer-error",
                    probability=1.0,
                    max_injections=None,
                )
            ],
        )
        executor = ResilientExecutor(
            retry=RetryPolicy(max_attempts=2), cpu_fallback=False
        )
        with inject(injector):
            with pytest.raises(TransferError):
                executor.run(data, 32)

    def test_chain_ends_with_cpu(self, data):
        chain = ResilientExecutor().fallback_chain(
            len(data), 32, data.dtype
        )
        assert chain[-1] == "cpu-heap"
        assert len(set(chain)) == len(chain)


class TestVerification:
    def test_silent_corruption_never_escapes(self, data, expected):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="result-buffer",
                    fault="memory-corruption",
                    nth=1,
                    silent=True,
                )
            ],
        )
        log = AttemptLog()
        with inject(injector):
            result = ResilientExecutor().run(data, 32, log=log)
        assert np.array_equal(result.values, expected)
        assert log.verification_failures >= 1

    def test_validation_still_typed_under_injection(self, data):
        with pytest.raises(InvalidParameterError):
            resilient_topk(data, 0)
        with pytest.raises(InvalidParameterError):
            resilient_topk(data, len(data) + 1)


class TestObservability:
    def test_counters_and_spans_recorded(self, data):
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(site="kernel-launch", fault="device-lost", nth=1)
            ],
        )
        with observation.activate(), inject(injector):
            resilient_topk(data, 32)
        metrics = {
            instrument.name for instrument in observation.metrics
        }
        assert "faults.injected" in metrics
        assert "resilience.retries" in metrics
        assert "resilience.runs" in metrics
        categories = {
            span.category for span in observation.tracer.spans()
        }
        assert "fault" in categories
        assert "resilience" in categories
