"""Fault handling in the surrounding layers: hybrid CPU+GPU, chunked
pipeline, query engine, planner degradation, CLI exit codes."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.cli import main
from repro.core.chunked import ChunkedTopK
from repro.core.topk import topk
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets
from repro.errors import (
    EXIT_CODES,
    DeviceLostError,
    InvalidParameterError,
    ReproError,
    TransferError,
    exit_code,
)
from repro.gpu.faults import FaultInjector, FaultPlan, inject
from repro.hybrid.cpu_gpu import HybridTopK


@pytest.fixture
def data(rng):
    return rng.standard_normal(8192).astype(np.float32)


@pytest.fixture
def expected(data):
    return reference_topk(data, 32)[0]


class TestHybridCpuGpu:
    def test_gpu_loss_absorbed_by_cpu(self, data, expected):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="device-launch", fault="device-lost", nth=1
                )
            ],
        )
        with inject(injector):
            result = HybridTopK().run(data, 32)
        assert np.array_equal(result.values, expected)
        assert result.trace.notes["gpu_lost"] == 1.0

    def test_gpu_loss_costs_simulated_time(self, data):
        baseline = HybridTopK().run(data, 32).simulated_ms()
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="device-launch", fault="device-lost", nth=1
                )
            ],
        )
        with inject(injector):
            degraded = HybridTopK().run(data, 32)
        assert degraded.simulated_ms() > baseline


class TestChunkedPipeline:
    def test_chunk_transfer_fault_retried(self, data, expected):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="pcie-transfer", fault="transfer-error", nth=1
                )
            ],
        )
        runner = ChunkedTopK(memory_budget_bytes=8192 * 2)
        with inject(injector):
            result = runner.run(data, 32)
        assert np.array_equal(result.values, expected)
        assert result.trace.notes["transfer_retries"] == 1.0

    def test_persistent_transfer_fault_surfaces_typed(self, data):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="pcie-transfer",
                    fault="transfer-error",
                    probability=1.0,
                    max_injections=None,
                )
            ],
        )
        runner = ChunkedTopK(memory_budget_bytes=8192 * 2)
        with pytest.raises(TransferError):
            with inject(injector):
                runner.run(data, 32)


class TestEngine:
    @pytest.fixture
    def session(self):
        session = Session()
        session.register(generate_tweets(1 << 12, seed=3))
        return session

    SQL = "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 20"

    def test_query_survives_functional_fault(self, session):
        clean = session.sql(self.SQL).column("id")
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch", fault="device-lost", nth=1
                )
            ],
        )
        with inject(injector):
            survived = session.sql(self.SQL).column("id")
        assert np.array_equal(clean, survived)

    def test_query_falls_back_to_cpu_oracle(self, session):
        # Tie-breaks among equal retweet_counts are implementation-defined
        # between the bitonic path and the CPU oracle, so compare the
        # selected id *sets* and the ranking keys, not the exact id order.
        clean = session.sql(self.SQL)
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="device-lost",
                    probability=1.0,
                    max_injections=None,
                )
            ],
        )
        with inject(injector):
            survived = session.sql(self.SQL)
        table = session.table("tweets")
        ranks = table.column("retweet_count")
        id_to_row = {row_id: row for row, row_id in enumerate(table.column("id"))}
        clean_ranks = [ranks[id_to_row[i]] for i in clean.column("id")]
        survived_ranks = [ranks[id_to_row[i]] for i in survived.column("id")]
        assert clean_ranks == survived_ranks

    def test_negative_limit_rejected(self, session):
        with pytest.raises(InvalidParameterError):
            session.sql(
                "SELECT id FROM tweets ORDER BY retweet_count DESC "
                "LIMIT -1"
            )

    def test_bad_model_rows_rejected(self, session):
        with pytest.raises(InvalidParameterError):
            session.sql(self.SQL, model_rows=0)


class TestPlannerDegradation:
    def test_auto_skips_runtime_infeasible_candidate(self, rng):
        # A k small enough for every model but with the per-thread heap
        # forced infeasible at runtime via an injected capacity fault on
        # its first kernel launch.
        data = rng.standard_normal(4096).astype(np.float32)
        expected = reference_topk(data, 16)[0]
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="resource-exhausted",
                    nth=1,
                )
            ],
        )
        with inject(injector):
            result = topk(data, 16, algorithm="auto")
        assert np.array_equal(result.values, expected)

    def test_explicit_algorithm_surfaces_capacity_error(self, rng):
        from repro.errors import ResourceExhaustedError

        data = rng.standard_normal(4096).astype(np.float32)
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="resource-exhausted",
                    nth=1,
                )
            ],
        )
        with pytest.raises(ResourceExhaustedError):
            with inject(injector):
                topk(data, 16, algorithm="bitonic")


class TestKValidation:
    @pytest.mark.parametrize("bad_k", [0, -1, 10**9])
    def test_topk_rejects_bad_k(self, rng, bad_k):
        data = rng.standard_normal(128).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            topk(data, bad_k)

    def test_topk_rejects_non_integer_k(self, rng):
        data = rng.standard_normal(128).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            topk(data, 2.5)
        with pytest.raises(InvalidParameterError):
            topk(data, True)


class TestCliExitCodes:
    def test_typed_error_exit_code(self, capsys):
        code = main(["topk", "--n", "64", "--k", "128"])
        captured = capsys.readouterr()
        assert code == EXIT_CODES[InvalidParameterError]
        assert "InvalidParameterError" in captured.err
        assert captured.err.count("\n") == 1

    def test_exit_codes_distinct_per_class(self):
        codes = list(EXIT_CODES.values())
        assert len(codes) == len(set(codes))
        assert all(code != 0 for code in codes)

    def test_exit_code_walks_mro(self):
        class CustomLoss(DeviceLostError):
            pass

        assert exit_code(CustomLoss("x")) == EXIT_CODES[DeviceLostError]
        assert exit_code(ValueError("x")) not in (0,)

    def test_chaos_command_runs(self, capsys):
        code = main(["chaos", "--seed", "0", "--trials", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert "chaos campaign" in captured.out

    def test_chaos_command_json(self, capsys):
        import json

        code = main(["chaos", "--seed", "0", "--trials", "3", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["survived"] is True


class TestReproErrorHierarchy:
    def test_all_fault_errors_are_repro_errors(self):
        from repro.errors import (
            FaultError,
            KernelTimeoutError,
            MemoryCorruptionError,
        )

        for error_type in (
            DeviceLostError,
            MemoryCorruptionError,
            KernelTimeoutError,
            TransferError,
        ):
            assert issubclass(error_type, FaultError)
            assert issubclass(error_type, ReproError)
