"""The fault injector: plans, determinism, schedules, zero overhead."""

import numpy as np
import pytest

from repro.errors import (
    DeviceLostError,
    KernelTimeoutError,
    MemoryCorruptionError,
    ResourceExhaustedError,
    TransferError,
)
from repro.gpu import faults
from repro.gpu.faults import (
    FAULT_ERRORS,
    FaultInjector,
    FaultPlan,
    inject,
)


class TestFaultPlan:
    def test_unknown_fault_type_rejected(self):
        with pytest.raises(ValueError, match="unknown fault type"):
            FaultPlan(site="kernel-launch", fault="gremlins")

    def test_nth_must_be_positive(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(site="kernel-launch", fault="device-lost", nth=0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(
                site="kernel-launch", fault="device-lost", probability=1.5
            )


class TestInjectorFiring:
    def test_nth_call_fires_exactly_once(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(site="s", fault="device-lost", nth=3)
            ],
        )
        injector.check("s")
        injector.check("s")
        with pytest.raises(DeviceLostError):
            injector.check("s")
        # The nth plan matched call 3 only; later calls pass.
        injector.check("s")
        assert len(injector.injections) == 1
        assert injector.injections[0].call_index == 3

    def test_max_injections_bounds_probability_plans(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="s",
                    fault="transfer-error",
                    probability=1.0,
                    max_injections=2,
                )
            ],
        )
        for _ in range(2):
            with pytest.raises(TransferError):
                injector.check("s")
        injector.check("s")
        assert len(injector.injections) == 2

    def test_match_restricts_by_detail(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="kernel-launch",
                    fault="device-lost",
                    nth=1,
                    match="SortReducer",
                )
            ],
        )
        injector.check("kernel-launch", "LocalSort")
        with pytest.raises(DeviceLostError):
            injector.check("kernel-launch", "SortReducer")

    def test_every_fault_type_raises_its_class(self):
        for fault, error_type in FAULT_ERRORS.items():
            injector = FaultInjector(
                seed=0, plans=[FaultPlan(site="s", fault=fault, nth=1)]
            )
            with pytest.raises(error_type):
                injector.check("s")

    def test_typed_faults_carry_site_and_detail(self):
        injector = FaultInjector(
            seed=0,
            plans=[FaultPlan(site="s", fault="kernel-timeout", nth=1)],
        )
        with pytest.raises(KernelTimeoutError) as excinfo:
            injector.check("s", "LocalSort")
        assert excinfo.value.site == "s"
        assert excinfo.value.detail == "LocalSort"


class TestSilentCorruption:
    def test_silent_value_plan_flips_a_bit(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="global-memory-read",
                    fault="memory-corruption",
                    nth=1,
                    silent=True,
                )
            ],
        )
        corrupted = injector.filter_value("global-memory-read", 1.0)
        assert corrupted != 1.0
        assert injector.filter_value("global-memory-read", 1.0) == 1.0

    def test_non_silent_value_plan_raises(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="global-memory-read",
                    fault="memory-corruption",
                    nth=1,
                )
            ],
        )
        with pytest.raises(MemoryCorruptionError):
            injector.filter_value("global-memory-read", 1.0)

    def test_silent_array_plan_corrupts_one_element(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="result-buffer",
                    fault="memory-corruption",
                    nth=1,
                    silent=True,
                )
            ],
        )
        values = np.arange(16, dtype=np.float32)
        pristine = values.copy()
        injector.filter_array("result-buffer", values)
        assert np.count_nonzero(values != pristine) == 1


class TestDeterminism:
    def _schedule(self, seed):
        injector = FaultInjector(
            seed=seed,
            plans=[
                FaultPlan(
                    site="s",
                    fault="device-lost",
                    probability=0.4,
                    max_injections=None,
                )
            ],
        )
        schedule = []
        for index in range(64):
            try:
                injector.check("s", f"call-{index}")
            except DeviceLostError:
                schedule.append(index)
        return schedule

    def test_identical_seeds_identical_schedules(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seeds_differ(self):
        assert self._schedule(7) != self._schedule(8)


class TestContextVar:
    def test_no_injector_is_a_no_op(self):
        assert faults.active_injector() is None
        faults.fault_point("kernel-launch", "anything")
        assert faults.filter_read("global-memory-read", 2.5) == 2.5

    def test_inject_installs_and_restores(self):
        injector = FaultInjector(seed=0)
        with inject(injector):
            assert faults.active_injector() is injector
        assert faults.active_injector() is None

    def test_suspended_hides_the_injector(self):
        injector = FaultInjector(
            seed=0,
            plans=[
                FaultPlan(
                    site="s",
                    fault="device-lost",
                    probability=1.0,
                    max_injections=None,
                )
            ],
        )
        with inject(injector):
            with faults.suspended():
                faults.fault_point("s")
            with pytest.raises(DeviceLostError):
                faults.fault_point("s")

    def test_resource_exhausted_plan_raises_plain_class(self):
        injector = FaultInjector(
            seed=0,
            plans=[FaultPlan(site="s", fault="resource-exhausted", nth=1)],
        )
        with pytest.raises(ResourceExhaustedError):
            injector.check("s")
