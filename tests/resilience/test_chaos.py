"""The chaos campaign: survival across seeds, determinism, reporting."""

import json

import pytest

from repro.resilience.chaos import TARGETS, run_campaign


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_campaign_survives_across_seeds(seed):
    report = run_campaign(seed=seed, trials=30)
    assert len(report.trials) == 30
    assert report.survived, report.render()
    assert report.count("wrong-answer") == 0
    assert report.count("unhandled") == 0


def test_campaign_is_deterministic():
    first = run_campaign(seed=42, trials=20)
    second = run_campaign(seed=42, trials=20)
    assert [t.to_dict() for t in first.trials] == [
        t.to_dict() for t in second.trials
    ]


def test_campaign_actually_injects_faults():
    report = run_campaign(seed=0, trials=30)
    assert sum(trial.injections for trial in report.trials) > 0


def test_campaign_covers_every_target():
    report = run_campaign(seed=0, trials=120)
    seen = {trial.target for trial in report.trials}
    assert seen == set(TARGETS)


def test_report_serializes_to_json():
    report = run_campaign(seed=0, trials=5)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["seed"] == 0
    assert len(payload["trials"]) == 5
    assert set(payload["outcomes"]) == {
        "exact",
        "typed-error",
        "wrong-answer",
        "unhandled",
    }


def test_render_mentions_verdict():
    report = run_campaign(seed=0, trials=5)
    text = report.render()
    assert "SURVIVED" in text or "FAILED" in text


def test_serving_target_survives_forced_faults():
    from repro.gpu.faults import FaultPlan
    from repro.resilience.chaos import SERVING_FAULTS, _run_serving_trial

    for site, fault, silent in SERVING_FAULTS:
        plan = FaultPlan(
            site=site,
            fault=fault,
            probability=1.0,
            max_injections=2,
            silent=silent,
        )
        trial = _run_serving_trial(0, 1024, 16, plan, seed=7)
        assert trial.outcome in ("exact", "typed-error"), trial.to_dict()
        assert trial.injections > 0
