"""Circuit breaker: state transitions, cooldown, probes, fault taxonomy."""

import pytest

from repro.errors import DeviceLostError, InvalidParameterError
from repro.observability.metrics import MetricsRegistry
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    CircuitBreaker,
)


def tripped(policy=None, now_ms=0.0):
    """A breaker driven to OPEN by consecutive device faults."""
    breaker = CircuitBreaker(policy or BreakerPolicy())
    for _ in range(breaker.policy.failure_threshold):
        assert breaker.allow(now_ms)
        breaker.record_failure(now_ms, DeviceLostError("boom"))
    return breaker


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)

    def test_trips_open_at_failure_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        breaker.record_failure(0.0, DeviceLostError("1"))
        breaker.record_failure(0.0, DeviceLostError("2"))
        assert breaker.state == CLOSED
        breaker.record_failure(0.0, DeviceLostError("3"))
        assert breaker.state == OPEN
        assert not breaker.allow(0.5)
        assert breaker.times_opened == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0, DeviceLostError("1"))
        breaker.record_success(0.0)
        breaker.record_failure(0.0, DeviceLostError("2"))
        assert breaker.state == CLOSED

    def test_cooldown_transitions_to_half_open(self):
        breaker = tripped(BreakerPolicy(cooldown_ms=1.0))
        assert not breaker.allow(0.9)
        assert breaker.state == OPEN
        assert breaker.allow(1.0)  # cooldown elapsed: a probe goes through
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_budget_is_enforced(self):
        breaker = tripped(BreakerPolicy(cooldown_ms=1.0, half_open_probes=1))
        assert breaker.allow(2.0)
        # The single probe is in flight; nothing else gets through until
        # its outcome is recorded.
        assert not breaker.allow(2.0)
        assert breaker.probes == 1

    def test_probe_success_closes(self):
        breaker = tripped(BreakerPolicy(cooldown_ms=1.0))
        assert breaker.allow(2.0)
        breaker.record_success(2.1)
        assert breaker.state == CLOSED
        assert breaker.times_closed == 1
        assert breaker.allow(2.2)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = tripped(BreakerPolicy(cooldown_ms=1.0))
        assert breaker.allow(2.0)
        breaker.record_failure(2.1, DeviceLostError("still down"))
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow(2.5)
        assert breaker.allow(3.2)  # new cooldown measured from the re-open


class TestFaultTaxonomy:
    def test_non_retryable_errors_never_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure(0.0, InvalidParameterError("caller bug"))
        assert breaker.state == CLOSED

    def test_unclassified_failures_count(self):
        # error=None means the caller observed a device fault directly
        # (e.g. the batcher's fallback counters moved).
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure(0.0)
        assert breaker.state == OPEN


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_ms": 0.0},
            {"cooldown_ms": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            BreakerPolicy(**kwargs)


class TestObservability:
    def test_stats_reflect_the_lifecycle(self):
        breaker = tripped()
        assert breaker.allow(2.0)
        breaker.record_success(2.0)
        stats = breaker.stats()
        assert stats["state"] == CLOSED
        assert stats["times_opened"] == 1
        assert stats["times_closed"] == 1
        assert stats["probes"] == 1

    def test_metrics_published_on_transitions(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1), name="gpu0", metrics=metrics
        )
        breaker.record_failure(0.0)
        assert (
            metrics.value("resilience.breaker.opened", breaker="gpu0") == 1
        )
        assert metrics.value("resilience.breaker.state", breaker="gpu0") == 1
        assert breaker.allow(5.0)
        breaker.record_success(5.0)
        assert (
            metrics.value("resilience.breaker.closed", breaker="gpu0") == 1
        )
        assert metrics.value("resilience.breaker.state", breaker="gpu0") == 0
