"""The typed plan IR: fingerprints, traversal, rendering, binding."""

import numpy as np
import pytest

from repro.algorithms.registry import create_for_node
from repro.approx.config import ApproxConfig
from repro.core.planner import TopKPlanner
from repro.errors import InvalidParameterError
from repro.plan import (
    CPU_FALLBACK,
    ApproxTopK,
    Batch,
    Fallback,
    Filter,
    PlanNode,
    Scan,
    TopK,
    TopKPlan,
    bind_plan,
    build_fallback,
    network_k,
    request_fingerprint,
)


def scan_topk(algorithm="bitonic", k=8, n=1024, seconds=1e-3):
    return TopK(
        child=Scan(source="vector", rows=n),
        k=k,
        n=n,
        algorithm=algorithm,
        predicted_seconds=seconds,
    )


class TestFingerprint:
    def test_stable_across_identical_trees(self):
        assert scan_topk().fingerprint() == scan_topk().fingerprint()

    def test_identity_fields_change_it(self):
        base = scan_topk()
        assert base.fingerprint() != scan_topk(k=9).fingerprint()
        assert base.fingerprint() != scan_topk(algorithm="sort").fingerprint()
        assert base.fingerprint() != scan_topk(n=2048).fingerprint()

    def test_cost_annotations_do_not(self):
        assert scan_topk(seconds=1e-3).fingerprint() == scan_topk(
            seconds=9.0
        ).fingerprint()

    def test_children_are_part_of_identity(self):
        plain = scan_topk()
        filtered = TopK(
            child=Filter(child=Scan(rows=1024), predicate="(lang < 3)"),
            k=8,
            n=1024,
        )
        assert plain.fingerprint() != filtered.fingerprint()

    def test_expected_recall_is_an_annotation(self):
        a = ApproxTopK(k=8, n=1024, buckets=16, expected_recall=0.99)
        b = ApproxTopK(k=8, n=1024, buckets=16, expected_recall=0.42)
        c = ApproxTopK(k=8, n=1024, buckets=32, expected_recall=0.99)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_request_fingerprint_covers_every_input(self):
        base = request_fingerprint(1024, 8, "float32", "uniform-float", "gpu")
        assert base == request_fingerprint(
            1024, 8, "float32", "uniform-float", "gpu"
        )
        for other in [
            request_fingerprint(2048, 8, "float32", "uniform-float", "gpu"),
            request_fingerprint(1024, 9, "float32", "uniform-float", "gpu"),
            request_fingerprint(1024, 8, "uint32", "uniform-float", "gpu"),
            request_fingerprint(1024, 8, "float32", "uniform-uint", "gpu"),
            request_fingerprint(1024, 8, "float32", "uniform-float", "cpu"),
            request_fingerprint(
                1024, 8, "float32", "uniform-float", "gpu", recall_target=0.9
            ),
        ]:
            assert other != base


class TestTraversal:
    def test_walk_is_preorder(self):
        tree = build_fallback(
            [("bitonic", 1e-3), ("sort", 2e-3)], n=1024, k=8, terminal_cpu=True
        )
        kinds = [node.kind for node in tree.walk()]
        assert kinds == ["Fallback", "TopK", "Scan", "TopK", "Scan", "TopK", "Scan"]

    def test_find(self):
        tree = build_fallback([("approx-bucket", 1e-3)], n=1024, k=8)
        assert isinstance(tree.find(ApproxTopK), ApproxTopK)
        assert tree.find(Batch) is None

    def test_children_collects_tuples(self):
        tree = Fallback(alternatives=(scan_topk(), scan_topk(k=4)))
        assert len(tree.children) == 2


class TestFallback:
    def test_chain_names_in_order(self):
        tree = build_fallback(
            [("bitonic", 1e-3), ("radix-select", 2e-3)],
            n=1024,
            k=8,
            terminal_cpu=True,
        )
        assert tree.chain() == ["bitonic", "radix-select", CPU_FALLBACK]

    def test_terminal_cpu_not_duplicated(self):
        tree = build_fallback(
            [("bitonic", 1e-3), (CPU_FALLBACK, None)],
            n=1024,
            k=8,
            terminal_cpu=True,
        )
        assert tree.chain() == ["bitonic", CPU_FALLBACK]

    def test_approx_candidate_carries_its_config(self):
        config = ApproxConfig(buckets=16, oversample=2, delegate_group=4)
        tree = build_fallback(
            [("approx-bucket", 1e-3), ("bitonic", 2e-3)],
            n=1 << 20,
            k=64,
            recall_target=0.9,
            approx_config=config,
            expected_recall=0.95,
        )
        node = tree.alternatives[0]
        assert isinstance(node, ApproxTopK)
        assert node.config() == config
        assert node.expected_recall == 0.95
        # The exact alternative is a plain TopK, untouched by the config.
        assert isinstance(tree.alternatives[1], TopK)


class TestRendering:
    def test_render_shows_every_node_and_costs(self):
        tree = build_fallback(
            [("bitonic", 1.5e-3)], n=1024, k=8, terminal_cpu=True
        )
        text = tree.render()
        assert "Fallback" in text
        assert "algorithm=bitonic" in text
        assert "algorithm=cpu-heap" in text
        assert "[1.50 ms]" in text
        assert "└─" in text and "├─" in text

    def test_to_dict_round_trips_the_identity(self):
        tree = build_fallback([("bitonic", 1e-3)], n=1024, k=8)
        payload = tree.to_dict()
        assert payload["kind"] == "Fallback"
        assert payload["fingerprint"] == tree.fingerprint()
        child = payload["children"][0]
        assert child["kind"] == "TopK"
        assert child["algorithm"] == "bitonic"
        assert child["predicted_seconds"] == 1e-3
        assert child["children"][0]["kind"] == "Scan"


class TestTopKPlan:
    def test_legacy_constructor_synthesizes_the_tree(self):
        plan = TopKPlan(
            algorithm="bitonic",
            predicted_seconds=1e-3,
            candidates=(("bitonic", 1e-3), ("sort", 2e-3)),
        )
        assert isinstance(plan.root, Fallback)
        assert plan.root.chain() == ["bitonic", "sort"]
        assert plan.winner().algorithm == "bitonic"
        assert plan.fallback_chain() == ["bitonic", "sort"]

    def test_batch_node_uses_padded_width_not_literal_k(self):
        plan = TopKPlan(
            algorithm="bitonic",
            predicted_seconds=1e-3,
            candidates=(("bitonic", 1e-3),),
            n=512,
            k=9,
        )
        nine = plan.batch_node(n=512, k=9)
        twelve = plan.batch_node(n=512, k=12)
        eight = plan.batch_node(n=512, k=8)
        assert nine.network_k == 16
        assert nine.fingerprint() == twelve.fingerprint()
        assert nine.fingerprint() != eight.fingerprint()

    def test_planner_plan_fingerprints_only_on_identity(self, device):
        planner = TopKPlanner(device)
        first = planner.choose(1 << 16, 32, np.dtype(np.float32))
        second = planner.choose(1 << 16, 32, np.dtype(np.float32))
        assert first.fingerprint() == second.fingerprint()
        other = planner.choose(1 << 16, 33, np.dtype(np.float32))
        assert first.fingerprint() != other.fingerprint()


class TestBinding:
    def test_bound_plan_runs_the_winner(self, device, rng):
        planner = TopKPlanner(device)
        plan = planner.choose(4096, 16, np.dtype(np.float32))
        bound = bind_plan(plan, device)
        data = rng.random(4096).astype(np.float32)
        result = bound.run(data)
        reference = np.sort(data)[::-1][:16]
        np.testing.assert_array_equal(result.values, reference)
        assert bound.fingerprint() == plan.fingerprint()

    def test_create_for_node_dispatches_on_node_type(self, device):
        exact = create_for_node(scan_topk(), device)
        assert type(exact).__name__ == "BitonicTopK"
        cpu = create_for_node(scan_topk(algorithm=CPU_FALLBACK), device)
        assert type(cpu).__name__ == "HandPqTopK"
        approx = create_for_node(ApproxTopK(k=8, n=1024, buckets=16), device)
        assert type(approx).__name__ == "ApproxBucketTopK"
        assert approx.config.buckets == 16

    def test_create_for_node_rejects_non_operator_nodes(self, device):
        with pytest.raises(InvalidParameterError):
            create_for_node(Scan(rows=16), device)


class TestNetworkK:
    def test_padded_width(self):
        assert [network_k(k) for k in (1, 2, 3, 8, 9, 1024)] == [
            1, 2, 4, 8, 16, 1024,
        ]
