"""Golden-plan parity: the IR planner must decide exactly like the
pre-refactor planner.

The goldens under ``goldens/`` were captured from the string-labelled
``PlanChoice`` planner *before* the typed-IR refactor:

* ``planner_decisions.json`` — the chosen algorithm, full fallback order,
  infeasible set, expected recall, and approximate configuration for a
  grid of (n, k, dtype, recall_target, device);
* ``result_parity.json`` — bit-exact result digests for ``topk()`` and
  the SQL engine across strategies, plus each query's simulated cost.

Any diff here means the refactor changed a *decision* or an *answer*,
not just plumbing.  Regenerate the goldens only with a deliberate
planner change, never to make this test pass.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.planner import TopKPlanner
from repro.core.topk import topk
from repro.engine import Session, generate_tweets
from repro.errors import ReproError
from repro.gpu.device import get_device

GOLDENS = Path(__file__).parent / "goldens"


def _load(name):
    with open(GOLDENS / name) as handle:
        return json.load(handle)


def _digest(*arrays):
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


class TestPlannerDecisions:
    def test_golden_grid_decides_identically(self):
        golden = _load("planner_decisions.json")
        assert golden["format"] == "repro-golden-plans"
        planners = {}
        mismatches = []
        for entry in golden["entries"]:
            planner = planners.setdefault(
                entry["device"], TopKPlanner(get_device(entry["device"]))
            )
            try:
                choice = planner.choose(
                    entry["n"],
                    entry["k"],
                    np.dtype(entry["dtype"]),
                    recall_target=entry["recall_target"],
                )
            except ReproError as error:
                actual = {"error": type(error).__name__}
            else:
                actual = {
                    "algorithm": choice.algorithm,
                    "fallback_chain": choice.fallback_chain(),
                    "infeasible": sorted(choice.infeasible),
                    "expected_recall": round(choice.expected_recall, 12),
                    "approx_config": (
                        list(choice.approx_config.key())
                        if choice.approx_config is not None
                        else None
                    ),
                }
                # The plan tree must agree with the flat decision record:
                # same winner, same degradation order.
                assert choice.winner() is choice.root.alternatives[0]
                assert choice.root.chain() == choice.fallback_chain()
            expected = {
                key: value
                for key, value in entry.items()
                if key not in ("device", "n", "k", "dtype", "recall_target")
            }
            if actual != expected:
                mismatches.append((entry, actual))
        assert mismatches == [], (
            f"{len(mismatches)} of {len(golden['entries'])} planner "
            f"decisions diverged; first: {mismatches[0]}"
        )


class TestResultParity:
    def test_topk_answers_are_bit_identical(self):
        golden = _load("result_parity.json")
        rng = np.random.default_rng(7)
        replayed = 0
        for n in [1 << 10, 1 << 14]:
            for k in [1, 8, 100, 256]:
                for dtype in ["float32", "uint32"]:
                    data = (rng.random(n) * 1e6).astype(dtype)
                    for recall in [1.0, 0.9]:
                        entry = golden["topk"][replayed]
                        assert (entry["n"], entry["k"]) == (n, k)
                        assert entry["dtype"] == dtype
                        assert entry["recall_target"] == recall
                        result = topk(data, k, recall_target=recall)
                        assert result.algorithm == entry["algorithm"], entry
                        assert (
                            _digest(result.values, result.indices)
                            == entry["digest"]
                        ), entry
                        replayed += 1
        assert replayed == len(golden["topk"])

    def test_sql_answers_and_costs_are_bit_identical(self):
        golden = _load("result_parity.json")
        session = Session()
        session.register(generate_tweets(1 << 12, seed=3))
        for entry in golden["sql"]:
            result = session.sql(
                entry["sql"],
                strategy=entry["strategy"],
                model_rows=250_000_000,
            )
            digest = _digest(
                *[result.columns[name] for name in sorted(result.columns)]
            )
            assert digest == entry["digest"], entry
            assert round(result.simulated_ms(), 9) == entry["simulated_ms"], (
                entry
            )
            assert result.trace.num_launches == entry["launches"], entry
