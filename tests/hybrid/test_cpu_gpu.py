"""Tests for the hybrid CPU + GPU top-k."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.errors import InvalidParameterError
from repro.hybrid.cpu_gpu import HybridTopK


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(10, 2), (1000, 32), (50000, 300)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = HybridTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    def test_winners_on_the_cpu_side_survive(self, rng):
        """The global top-k landing entirely in the CPU's slice must
        surface through the reduction."""
        data = rng.random(10000).astype(np.float32)
        data[-50:] += 5.0  # the tail belongs to the CPU share
        result = HybridTopK().run(data, 50)
        assert (result.indices >= 9950).all()


class TestSplitPlanning:
    def test_split_balances_finish_times(self, device):
        split = HybridTopK(device).plan_split(1 << 29, 64, np.dtype(np.float32))
        assert 0.0 < split.gpu_fraction < 1.0
        assert split.gpu_seconds == pytest.approx(split.cpu_seconds, rel=0.05)

    def test_gpu_gets_the_larger_share(self, device):
        """The GPU's per-element throughput dominates the CPU's, so it
        should take well over half the data."""
        split = HybridTopK(device).plan_split(1 << 29, 64, np.dtype(np.float32))
        assert split.gpu_fraction > 0.6

    def test_hybrid_beats_either_device_alone(self, device, rng):
        """The whole point: the makespan is below both single-device times."""
        from repro.bitonic.topk import BitonicTopK
        from repro.cpu.pq_topk import HandPqTopK

        data = rng.random(1 << 16).astype(np.float32)
        hybrid = HybridTopK(device).run(data, 64, model_n=1 << 29)
        gpu_only = BitonicTopK(device).run(data, 64, model_n=1 << 29)
        cpu_only = HandPqTopK(device).run(data, 64, model_n=1 << 29)
        hybrid_time = hybrid.simulated_time(device).total
        assert hybrid_time < gpu_only.simulated_time(device).total
        assert hybrid_time < cpu_only.simulated_time(device).total

    def test_invalid_arguments(self, device):
        with pytest.raises(InvalidParameterError):
            HybridTopK(device).plan_split(0, 4, np.dtype(np.float32))

    def test_trace_records_the_split(self, rng):
        result = HybridTopK().run(
            rng.random(10000).astype(np.float32), 16, model_n=1 << 29
        )
        assert 0.0 < result.trace.notes["gpu_fraction"] < 1.0
        assert result.trace.notes["gpu_seconds"] > 0
        assert result.trace.notes["cpu_seconds"] > 0
