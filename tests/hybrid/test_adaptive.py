"""Tests for the sample-based adaptive selector."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.data.distributions import (
    bucket_killer,
    decreasing,
    increasing,
    uniform_floats,
    uniform_uints,
)
from repro.errors import InvalidParameterError
from repro.hybrid.adaptive import AdaptiveTopK, measure_sample

PAPER_N = 1 << 29


class TestSampleStatistics:
    def test_sortedness_detection(self):
        sorted_stats = measure_sample(increasing(4096))
        random_stats = measure_sample(uniform_floats(4096))
        reverse_stats = measure_sample(decreasing(4096))
        assert sorted_stats.looks_sorted
        assert not random_stats.looks_sorted
        assert not reverse_stats.looks_sorted
        assert random_stats.sortedness == pytest.approx(0.5, abs=0.05)

    def test_radix_fraction_measurement(self):
        floats = measure_sample(uniform_floats(1 << 14))
        uints = measure_sample(uniform_uints(1 << 14))
        killer = measure_sample(bucket_killer(1 << 14))
        # U(0, 1) floats share the top exponent byte ~50% of the time.
        assert floats.radix_survivor_fractions[0] == pytest.approx(0.5, abs=0.05)
        # Uniform uints reduce maximally.
        assert uints.radix_survivor_fractions[0] < 0.05
        # The killer shows almost no reduction.
        assert killer.looks_adversarial_for_radix

    def test_tiny_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            measure_sample(np.zeros(1, dtype=np.float32))


class TestChoices:
    def test_avoids_radix_select_on_bucket_killer(self, device):
        """The static planner would send large-k uniform data to radix
        select; the adaptive one must notice the adversarial structure."""
        selector = AdaptiveTopK(device)
        choice = selector.choose(bucket_killer(1 << 16), 1024, model_n=PAPER_N)
        assert choice.algorithm != "radix-select"

    def test_picks_radix_select_on_large_k_uints(self, device):
        selector = AdaptiveTopK(device)
        choice = selector.choose(uniform_uints(1 << 16), 1024, model_n=PAPER_N)
        assert choice.algorithm == "radix-select"

    def test_avoids_per_thread_on_sorted_input(self, device):
        """Sorted data is the per-thread heap's worst case."""
        selector = AdaptiveTopK(device)
        choice = selector.choose(increasing(1 << 16), 32, model_n=PAPER_N)
        assert choice.algorithm != "per-thread"

    def test_sample_keeps_order_structure(self, device):
        """A contiguous slice keeps sortedness evidence visible."""
        selector = AdaptiveTopK(device, sample_size=512)
        sample = selector.sample(increasing(1 << 16))
        assert len(sample) == 512
        assert np.all(np.diff(sample) >= 0)


class TestRun:
    @pytest.mark.parametrize(
        "generator", [uniform_floats, increasing, bucket_killer]
    )
    def test_result_is_always_correct(self, generator, device):
        data = generator(8192, seed=3)
        result = AdaptiveTopK(device).run(data, 25)
        expected, _ = reference_topk(data, 25)
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_adaptive_never_much_worse_than_static(self, device):
        """Across all distributions, the adaptive pick's simulated time is
        within 2x of the best measured algorithm (robustness guarantee)."""
        from repro.algorithms.registry import EVALUATED_ALGORITHMS, create

        selector = AdaptiveTopK(device)
        for generator in (uniform_floats, increasing, bucket_killer):
            data = generator(1 << 16, seed=1)
            adaptive = selector.run(data, 64, model_n=PAPER_N)
            adaptive_time = adaptive.simulated_time(device).total
            best = min(
                create(name, device)
                .run(data, 64, model_n=PAPER_N)
                .simulated_time(device)
                .total
                for name in EVALUATED_ALGORITHMS
                if create(name, device).supports(PAPER_N, 64, data.dtype)
            )
            assert adaptive_time <= 2 * best, generator.__name__
