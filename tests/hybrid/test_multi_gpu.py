"""Tests for multi-GPU data-parallel top-k."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.errors import InvalidParameterError
from repro.gpu.device import get_device
from repro.hybrid.multi_gpu import MultiGpuTopK

N_MODEL = 1 << 29


class TestCorrectness:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_matches_reference(self, devices, rng):
        runner = MultiGpuTopK([get_device() for _ in range(devices)])
        data = rng.random(30000).astype(np.float32)
        result = runner.run(data, 64)
        expected, _ = reference_topk(data, 64)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    def test_winners_in_one_slice(self, rng):
        data = rng.random(10000).astype(np.float32)
        data[:30] += 10.0
        runner = MultiGpuTopK([get_device(), get_device()])
        result = runner.run(data, 30)
        assert (result.indices < 30).all()

    def test_empty_device_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiGpuTopK([])


class TestScaling:
    def test_homogeneous_split_is_even(self, rng):
        runner = MultiGpuTopK([get_device(), get_device()])
        shares = runner.plan_shares(N_MODEL, 64, np.dtype(np.float32))
        assert shares[0].fraction == pytest.approx(0.5)
        assert shares[0].seconds == pytest.approx(shares[1].seconds)

    def test_two_gpus_nearly_halve_the_time(self, rng):
        data = rng.random(1 << 16).astype(np.float32)
        single = MultiGpuTopK([get_device()]).run(data, 64, model_n=N_MODEL)
        double = MultiGpuTopK([get_device(), get_device()]).run(
            data, 64, model_n=N_MODEL
        )
        speedup = single.simulated_ms() / double.simulated_ms()
        assert 1.7 < speedup <= 2.05

    def test_heterogeneous_split_favors_the_faster_card(self, rng):
        titan = get_device("titan-x-maxwell")
        volta = get_device("v100")
        runner = MultiGpuTopK([titan, volta])
        shares = runner.plan_shares(N_MODEL, 64, np.dtype(np.float32))
        assert shares[1].fraction > shares[0].fraction
        # Finish times equalize.
        assert shares[0].seconds == pytest.approx(shares[1].seconds, rel=0.01)

    def test_adding_a_slow_card_still_helps(self, rng):
        """Throughput-proportional splitting means a slower card takes a
        small slice instead of stalling the fast one."""
        data = rng.random(1 << 16).astype(np.float32)
        volta_only = MultiGpuTopK([get_device("v100")]).run(
            data, 64, model_n=N_MODEL
        )
        mixed = MultiGpuTopK(
            [get_device("v100"), get_device("titan-x-maxwell")]
        ).run(data, 64, model_n=N_MODEL)
        assert mixed.simulated_ms() < volta_only.simulated_ms()

    def test_trace_records_shares(self, rng):
        runner = MultiGpuTopK([get_device(), get_device()])
        result = runner.run(
            rng.random(4096).astype(np.float32), 8, model_n=N_MODEL
        )
        assert result.trace.notes["devices"] == 2
        assert result.trace.notes["fraction_0"] == pytest.approx(0.5)
