"""TopKServer: futures, admission control, lifecycle, session queries."""

import threading

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu import faults
from repro.serving import TopKServer


class TestRoundTrip:
    def test_submit_returns_correct_topk(self, device, rng):
        with TopKServer(device=device) as server:
            data = rng.random(1000).astype(np.float32)
            outcome = server.submit(data, k=10).result(timeout=30)
        expected_values, _ = reference_topk(data, 10)
        assert np.array_equal(outcome.values, expected_values)
        assert np.array_equal(data[outcome.indices], outcome.values)
        assert outcome.k == 10 and outcome.n == 1000

    def test_query_is_synchronous(self, device, rng):
        with TopKServer(device=device) as server:
            data = rng.random(500).astype(np.float32)
            outcome = server.query(data, k=5)
        expected_values, _ = reference_topk(data, 5)
        assert np.array_equal(outcome.values, expected_values)

    def test_many_concurrent_queries_all_answered(self, device, rng):
        payloads = [rng.random(512).astype(np.float32) for _ in range(64)]
        with TopKServer(device=device) as server:
            futures = server.submit_many((data, 8) for data in payloads)
            outcomes = [future.result(timeout=30) for future in futures]
        for data, outcome in zip(payloads, outcomes):
            expected_values, _ = reference_topk(data, 8)
            assert np.array_equal(outcome.values, expected_values)

    def test_concurrent_load_forms_batches(self, device, rng):
        # Stall the dispatcher (auto_start=False) so the backlog
        # accumulates, then start it: the drain must fuse the queries.
        server = TopKServer(device=device, auto_start=False)
        futures = [
            server.submit(rng.random(512).astype(np.float32), k=8)
            for _ in range(20)
        ]
        server.start()
        for future in futures:
            future.result(timeout=30)
        server.close()
        assert server.batcher.batched_queries == 20
        assert server.batcher.batches <= 2
        assert server.plan_cache.hits >= 19

    def test_submissions_from_many_threads(self, device):
        errors = []

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                data = rng.random(400).astype(np.float32)
                outcome = server.query(data, k=4)
                expected_values, _ = reference_topk(data, 4)
                assert np.array_equal(outcome.values, expected_values)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        with TopKServer(device=device) as server:
            threads = [
                threading.Thread(target=worker, args=(seed,)) for seed in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, device, rng):
        server = TopKServer(device=device, max_pending=3, auto_start=False)
        for _ in range(3):
            server.submit(rng.random(64).astype(np.float32), k=2)
        with pytest.raises(ResourceExhaustedError):
            server.submit(rng.random(64).astype(np.float32), k=2)
        assert server.metrics.value("serving.rejected") == 1
        server.start()
        server.close()

    def test_shed_load_recovers_after_drain(self, device, rng):
        server = TopKServer(device=device, max_pending=2, auto_start=False)
        futures = [
            server.submit(rng.random(64).astype(np.float32), k=2)
            for _ in range(2)
        ]
        with pytest.raises(ResourceExhaustedError):
            server.submit(rng.random(64).astype(np.float32), k=2)
        server.start()
        for future in futures:
            future.result(timeout=30)
        server.flush()
        outcome = server.query(rng.random(64).astype(np.float32), k=2)
        assert outcome.values.shape == (2,)
        server.close()

    def test_max_pending_must_be_positive(self, device):
        with pytest.raises(InvalidParameterError):
            TopKServer(device=device, max_pending=0)


class TestValidation:
    def test_invalid_k_rejected_at_submit(self, device, rng):
        with TopKServer(device=device) as server:
            with pytest.raises(InvalidParameterError):
                server.submit(rng.random(16).astype(np.float32), k=0)
            with pytest.raises(InvalidParameterError):
                server.submit(rng.random(16).astype(np.float32), k=17)

    def test_data_and_table_are_mutually_exclusive(self, device, rng):
        with TopKServer(device=device) as server:
            with pytest.raises(InvalidParameterError):
                server.submit(
                    rng.random(16).astype(np.float32), k=2, table="tweets"
                )
            with pytest.raises(InvalidParameterError):
                server.submit(k=2)

    def test_table_query_requires_session(self, device):
        with TopKServer(device=device) as server:
            with pytest.raises(InvalidParameterError):
                server.submit(table="tweets", column="likes_count", k=5)

    def test_closed_server_rejects_submissions(self, device, rng):
        server = TopKServer(device=device)
        server.close()
        with pytest.raises(InvalidParameterError):
            server.submit(rng.random(16).astype(np.float32), k=2)

    def test_planning_failure_fails_only_that_future(self, device, rng):
        with TopKServer(device=device) as server:
            first = server.submit(rng.random(64).astype(np.float32), k=2)
            first.result(timeout=30)

            def exploding_choose(*args, **kwargs):
                raise InvalidParameterError("boom")

            server.plan_cache.choose = exploding_choose
            doomed = server.submit(rng.random(64).astype(np.float32), k=2)
            with pytest.raises(InvalidParameterError):
                doomed.result(timeout=30)
            # The dispatcher survives; later queries still get answers
            # (restore planning first).
            del server.plan_cache.choose
            after = server.submit(rng.random(64).astype(np.float32), k=2)
            assert after.result(timeout=30).values.shape == (2,)


class TestSessionIntegration:
    def test_table_column_queries_resolve_through_session(self, device):
        session = Session(device)
        session.register(generate_tweets(4096, seed=7))
        with session.serve() as server:
            outcome = server.query(table="tweets", column="likes_count", k=10)
        column = session.table("tweets").column("likes_count")
        expected_values, _ = reference_topk(column, 10)
        assert np.array_equal(outcome.values, expected_values)

    def test_session_serve_adopts_metrics_registry(self, device):
        session = Session(device, trace=True)
        session.register(generate_tweets(1024, seed=7))
        with session.serve() as server:
            server.query(table="tweets", column="likes_count", k=5)
        assert session.metrics.value("serving.submitted") == 1
        assert session.metrics.value("serving.completed") == 1


class TestFaultPropagation:
    def test_injector_captured_at_submit_crosses_the_thread(self, device, rng):
        data = rng.random(256).astype(np.float32)
        plan = faults.FaultPlan(
            site="kernel-launch", fault="device-lost", nth=1
        )
        with TopKServer(device=device) as server:
            with faults.inject(faults.FaultInjector(seed=0, plans=[plan])):
                future = server.submit(data, k=4)
            outcome = future.result(timeout=30)
        expected_values, _ = reference_topk(data, 4)
        assert np.array_equal(outcome.values, expected_values)
        assert outcome.fell_back


class TestStats:
    def test_stats_aggregates_all_layers(self, device, rng):
        with TopKServer(device=device) as server:
            for _ in range(5):
                server.query(rng.random(128).astype(np.float32), k=4)
            stats = server.stats()
        assert stats["submitted"] == 5
        assert stats["completed"] == 5
        assert stats["plan_cache"]["misses"] >= 1
        assert "batcher" in stats and "max_pending" in stats


class TestQueueWait:
    def test_queue_wait_recorded_on_outcome_and_metrics(self, device, rng):
        with TopKServer(device=device) as server:
            outcome = server.query(rng.random(256).astype(np.float32), k=4)
            wall = server.metrics.histogram("serving.queue_wait_wall_ms")
            sim = server.metrics.histogram("serving.queue_wait_sim_ms")
        assert outcome.queue_wait_wall_ms >= 0.0
        assert outcome.queue_wait_sim_ms >= 0.0
        assert wall.count == 1 and sim.count == 1

    def test_queue_wait_attribution_survives_batching(self, device, rng):
        data = rng.random(512).astype(np.float32)
        server = TopKServer(device=device, auto_start=False)
        try:
            # Queue both before the dispatcher exists: they drain (and
            # batch) together in the first dispatch cycle.
            futures = [server.submit(data, k=4) for _ in range(2)]
            server.start()
            outcomes = [future.result(timeout=30) for future in futures]
        finally:
            server.close()
        assert all(o.queue_wait_wall_ms >= 0.0 for o in outcomes)


class TestShutdownResolution:
    def test_close_fails_pending_futures_when_never_started(self, device, rng):
        from repro.errors import ShutdownError

        server = TopKServer(device=device, auto_start=False)
        futures = [
            server.submit(rng.random(64).astype(np.float32), k=2)
            for _ in range(3)
        ]
        server.close()
        for future in futures:
            with pytest.raises(ShutdownError):
                future.result(timeout=5)
        assert server.metrics.value("serving.abandoned") == 3
        assert server.metrics.value("serving.failed") == 3

    def test_running_server_drains_instead_of_abandoning(self, device, rng):
        server = TopKServer(device=device)
        future = server.submit(rng.random(64).astype(np.float32), k=2)
        server.close()
        assert future.result(timeout=5).values.shape == (2,)
        assert server.metrics.value("serving.abandoned") is None
