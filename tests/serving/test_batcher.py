"""Cross-query batcher: eligibility, grouping, fused execution, fallback."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.algorithms.registry import create
from repro.core.planner import PlanChoice
from repro.gpu import faults
from repro.serving import (
    BATCHABLE_ALGORITHM,
    CrossQueryBatcher,
    PlanCache,
    ServingRequest,
    network_k,
)


def make_requests(rng, count, n=512, k=8, dtype=np.float32):
    return [
        ServingRequest(data=rng.random(n).astype(dtype), k=k)
        for _ in range(count)
    ]


def force_plan(request, algorithm):
    request.plan = PlanChoice(
        algorithm=algorithm,
        predicted_seconds=1e-3,
        candidates=((algorithm, 1e-3),),
    )


class TestNetworkK:
    @pytest.mark.parametrize(
        "k,expected", [(1, 1), (2, 2), (3, 4), (8, 8), (9, 16), (100, 128)]
    )
    def test_padded_width(self, k, expected):
        assert network_k(k) == expected


class TestGrouping:
    def test_same_shape_queries_share_a_group(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        groups = batcher.group(make_requests(rng, 6))
        assert len(groups) == 1
        assert len(groups[0]) == 6

    def test_different_padded_k_share_when_network_matches(self, device, rng):
        # k = 9 and k = 12 both pad to a 16-wide network -> one batch.
        batcher = CrossQueryBatcher(device=device)
        a = ServingRequest(data=rng.random(512).astype(np.float32), k=9)
        b = ServingRequest(data=rng.random(512).astype(np.float32), k=12)
        c = ServingRequest(data=rng.random(512).astype(np.float32), k=8)
        groups = batcher.group([a, b, c])
        assert sorted(len(group) for group in groups) == [1, 2]

    def test_different_n_never_share(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        a = ServingRequest(data=rng.random(512).astype(np.float32), k=8)
        b = ServingRequest(data=rng.random(1024).astype(np.float32), k=8)
        groups = batcher.group([a, b])
        assert len(groups) == 2

    def test_non_bitonic_plans_run_alone(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 4)
        for request in requests:
            force_plan(request, "radix-select")
        groups = batcher.group(requests)
        assert all(len(group) == 1 for group in groups)

    def test_max_batch_chunks_large_backlogs(self, device, rng):
        batcher = CrossQueryBatcher(device=device, max_batch=4)
        requests = make_requests(rng, 10)
        for request in requests:
            force_plan(request, BATCHABLE_ALGORITHM)
        groups = batcher.group(requests)
        assert [len(group) for group in groups] == [4, 4, 2]

    def test_arrival_order_preserved_within_groups(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 5)
        for request in requests:
            force_plan(request, BATCHABLE_ALGORITHM)
        (group,) = batcher.group(requests)
        assert group == requests


class TestExecution:
    def test_batched_group_is_bit_equal_to_single_row(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 5, n=300, k=8)
        for request in requests:
            batcher.plan(request)
        assert all(request.batchable for request in requests)
        outcomes = batcher.execute(requests)
        single = create(BATCHABLE_ALGORITHM, device)
        for request, outcome in zip(requests, outcomes):
            expected = single.run(request.data, request.k)
            assert np.array_equal(outcome.values, expected.values)
            assert np.array_equal(outcome.indices, expected.indices)
            assert outcome.batched and outcome.batch_size == 5
        assert batcher.batches == 1 and batcher.batched_queries == 5

    def test_mixed_k_batch_answers_each_query_at_its_own_k(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        a = ServingRequest(data=rng.random(256).astype(np.float32), k=9)
        b = ServingRequest(data=rng.random(256).astype(np.float32), k=14)
        for request in (a, b):
            force_plan(request, BATCHABLE_ALGORITHM)
        first, second = batcher.execute([a, b])
        assert first.values.shape == (9,)
        assert second.values.shape == (14,)
        for request, outcome in ((a, first), (b, second)):
            expected_values, _ = reference_topk(request.data, request.k)
            assert np.array_equal(outcome.values, expected_values)

    def test_singleton_group_runs_the_planned_algorithm(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        request = make_requests(rng, 1, n=400, k=6)[0]
        force_plan(request, "radix-select")
        (outcome,) = batcher.execute([request])
        assert not outcome.batched
        expected_values, _ = reference_topk(request.data, request.k)
        assert np.array_equal(outcome.values, expected_values)
        assert batcher.single_queries == 1

    def test_simulated_share_divides_the_fused_launch(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 4)
        for request in requests:
            batcher.plan(request)
        outcomes = batcher.execute(requests)
        total = outcomes[0].simulated_ms
        assert total > 0
        for outcome in outcomes:
            assert outcome.simulated_ms == total
            assert outcome.simulated_share_ms == pytest.approx(total / 4)


class TestFaultFallback:
    def test_faulted_batch_falls_back_per_query(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 3, n=256, k=4)
        for request in requests:
            batcher.plan(request)
        injector = faults.FaultInjector(
            seed=0,
            plans=[faults.FaultPlan(site="kernel-launch", fault="device-lost", nth=1)],
        )
        requests[0].injector = injector
        outcomes = batcher.execute(requests)
        assert batcher.batch_fallbacks == 1
        assert batcher.fallback_queries == 3
        for request, outcome in zip(requests, outcomes):
            assert outcome.fell_back
            expected_values, _ = reference_topk(request.data, request.k)
            assert np.array_equal(outcome.values, expected_values)

    def test_unfaulted_batch_does_not_fall_back(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 3)
        for request in requests:
            batcher.plan(request)
        outcomes = batcher.execute(requests)
        assert batcher.batch_fallbacks == 0
        assert all(not outcome.fell_back for outcome in outcomes)


class TestPlanCacheIntegration:
    def test_batcher_reuses_the_shared_cache(self, device, rng):
        cache = PlanCache(device=device)
        batcher = CrossQueryBatcher(plan_cache=cache, device=device)
        for request in make_requests(rng, 5):
            batcher.plan(request)
        assert cache.misses == 1 and cache.hits == 4

    def test_empty_shared_cache_is_not_replaced(self, device):
        # PlanCache defines __len__, so an empty cache is falsy; the
        # batcher must test identity, not truthiness.
        cache = PlanCache(device=device)
        batcher = CrossQueryBatcher(plan_cache=cache, device=device)
        assert batcher.plan_cache is cache


class TestRadixBatching:
    """Radix-planned queries batch among themselves: the Batch node's
    kernel family keeps them out of bitonic groups, and a fused group is
    dispatched through batched_radik_topk."""

    def test_radik_plans_share_a_group(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 5)
        for request in requests:
            force_plan(request, "radik")
        groups = batcher.group(requests)
        assert len(groups) == 1
        assert len(groups[0]) == 5

    def test_radik_and_bitonic_plans_never_mix(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 6)
        for index, request in enumerate(requests):
            force_plan(
                request, "radik" if index % 2 else BATCHABLE_ALGORITHM
            )
        groups = batcher.group(requests)
        assert sorted(len(group) for group in groups) == [3, 3]
        for group in groups:
            algorithms = {request.plan.algorithm for request in group}
            assert len(algorithms) == 1

    def test_batch_nodes_fingerprint_differently_per_kernel(self, device, rng):
        a, b = make_requests(rng, 2)
        force_plan(a, "radik")
        force_plan(b, BATCHABLE_ALGORITHM)
        assert a.key.fingerprint() != b.key.fingerprint()

    def test_fused_radik_group_is_bit_equal_to_single_row(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        requests = make_requests(rng, 4, n=400, k=8)
        for request in requests:
            force_plan(request, "radik")
        outcomes = batcher.execute(requests)
        single = create("radik", device)
        for request, outcome in zip(requests, outcomes):
            expected = single.run(request.data, request.k)
            assert np.array_equal(outcome.values, expected.values)
            assert np.array_equal(outcome.indices, expected.indices)
            assert outcome.batched and outcome.batch_size == 4
            assert outcome.algorithm == "batched-radik"
        assert batcher.batches == 1 and batcher.batched_queries == 4

    def test_mixed_k_radik_batch_answers_each_at_its_own_k(self, device, rng):
        batcher = CrossQueryBatcher(device=device)
        a = ServingRequest(data=rng.random(256).astype(np.float32), k=9)
        b = ServingRequest(data=rng.random(256).astype(np.float32), k=14)
        for request in (a, b):
            force_plan(request, "radik")
        first, second = batcher.execute([a, b])
        assert first.values.shape == (9,)
        assert second.values.shape == (14,)
        for request, outcome in ((a, first), (b, second)):
            expected_values, expected_indices = reference_topk(
                request.data, request.k
            )
            assert np.array_equal(outcome.values, expected_values)
            assert np.array_equal(outcome.indices, expected_indices)

    def test_radik_is_declared_batchable(self):
        from repro.serving import BATCHABLE_ALGORITHMS

        assert "radik" in BATCHABLE_ALGORITHMS
        assert BATCHABLE_ALGORITHM in BATCHABLE_ALGORITHMS
        assert "radix-select" not in BATCHABLE_ALGORITHMS
