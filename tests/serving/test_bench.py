"""Serve-bench: identity guarantee, cache effectiveness, baseline gating."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.serving import Workload, check_baseline, run_serving_benchmark


@pytest.fixture(scope="module")
def report():
    return run_serving_benchmark(
        Workload(queries=120, shapes=3, n=256, k=4, seed=11)
    )


class TestWorkload:
    def test_generation_is_deterministic(self):
        workload = Workload(queries=10, shapes=2, n=64, k=4, seed=3)
        first = workload.generate()
        second = workload.generate()
        for (a, ka), (b, kb) in zip(first, second):
            assert ka == kb and np.array_equal(a, b)

    def test_shapes_cycle_through_the_stream(self):
        stream = Workload(queries=6, shapes=3, n=64, k=4, seed=0).generate()
        assert [k for _, k in stream] == [4, 5, 6, 4, 5, 6]

    def test_invalid_workloads_rejected(self):
        with pytest.raises(InvalidParameterError):
            Workload(queries=0)
        with pytest.raises(InvalidParameterError):
            Workload(shapes=0)
        with pytest.raises(InvalidParameterError):
            Workload(n=0)


class TestReport:
    def test_served_results_bit_equal_sequential(self, report):
        assert report.identical

    def test_repeated_shapes_hit_the_plan_cache(self, report):
        # 120 queries over 3 shapes -> 3 misses, 117 hits.
        assert report.cache["misses"] == 3
        assert report.hit_rate > 0.95

    def test_queries_ride_fused_launches(self, report):
        assert report.batcher["batches"] >= 1
        # The first dispatcher drain may catch a straggler alone; everything
        # else must ride a fused launch.
        served = report.batcher["batched_queries"] + report.batcher["single_queries"]
        assert served == 120
        assert report.batcher["batched_queries"] >= 100

    def test_simulated_time_improves(self, report):
        assert report.served.simulated_ms < report.sequential.simulated_ms

    def test_to_dict_round_trips_the_numbers(self, report):
        payload = report.to_dict()
        assert payload["format"] == "repro-serving-bench"
        assert payload["identical"] is True
        assert payload["workload"]["queries"] == 120
        assert payload["served"]["simulated_ms"] == pytest.approx(
            report.served.simulated_ms
        )
        assert payload["plan_cache"]["hit_rate"] == pytest.approx(
            report.hit_rate
        )

    def test_render_mentions_the_verdict(self, report):
        text = report.render()
        assert "bit-equal" in text
        assert "hit rate" in text


class TestAblations:
    def test_no_cache_replans_every_query(self):
        report = run_serving_benchmark(
            Workload(queries=30, shapes=2, n=128, k=4, seed=5), cache=False
        )
        assert report.cache["misses"] == 30
        assert report.hit_rate == 0.0
        assert report.identical

    def test_no_batching_serves_per_query(self):
        report = run_serving_benchmark(
            Workload(queries=30, shapes=2, n=128, k=4, seed=5), batching=False
        )
        assert report.batcher["batches"] == 0
        assert report.batcher["single_queries"] == 30
        assert report.identical


class TestBaselineGate:
    def test_fresh_report_passes_its_own_baseline(self, report):
        assert check_baseline(report, report.to_dict()) == []

    def test_simulated_regression_detected(self, report):
        baseline = report.to_dict()
        baseline["served"]["simulated_ms"] /= 2.0
        problems = check_baseline(report, baseline)
        assert problems and "served" in problems[0]

    def test_hit_rate_regression_detected(self, report):
        baseline = report.to_dict()
        baseline["plan_cache"]["hit_rate"] = 1.0
        # current hit rate is 117/120 = 0.975 -> within the 5-point margin
        assert check_baseline(report, baseline) == []
        baseline["plan_cache"]["hit_rate"] = 1.5
        assert check_baseline(report, baseline)

    def test_workload_mismatch_is_flagged(self, report):
        baseline = report.to_dict()
        baseline["workload"]["queries"] = 999
        problems = check_baseline(report, baseline)
        assert problems and "workload" in problems[0]

    def test_wrong_document_type_is_flagged(self, report):
        assert check_baseline(report, {"format": "something-else"})
