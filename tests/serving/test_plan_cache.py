"""Plan cache: memoization, LRU eviction, counters, disable switch."""

import numpy as np
import pytest

from repro import observability as obs
from repro.costmodel.base import get_profile
from repro.errors import InvalidParameterError
from repro.serving import PlanCache


class TestMemoization:
    def test_first_lookup_misses_then_hits(self, device):
        cache = PlanCache(device=device)
        first = cache.choose(4096, 16)
        second = cache.choose(4096, 16)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_cached_plan_matches_fresh_planner(self, device):
        cache = PlanCache(device=device)
        cache.choose(1 << 16, 32)
        cached = cache.choose(1 << 16, 32)
        fresh = cache.planner.choose(1 << 16, 32, np.dtype(np.float32))
        assert cached.algorithm == fresh.algorithm

    def test_key_covers_every_decision_input(self, device):
        cache = PlanCache(device=device)
        cache.choose(4096, 16)
        cache.choose(4096, 32)
        cache.choose(8192, 16)
        cache.choose(4096, 16, np.dtype(np.uint32))
        cache.choose(4096, 16, profile=get_profile("uniform-uint"))
        assert cache.misses == 5 and cache.hits == 0
        assert len(cache) == 5

    def test_dtype_spelling_normalized(self, device):
        cache = PlanCache(device=device)
        cache.choose(4096, 16, np.float32)
        cache.choose(4096, 16, np.dtype(np.float32))
        cache.choose(4096, 16, np.dtype("float32"))
        assert cache.misses == 1 and cache.hits == 2


class TestEviction:
    def test_lru_evicts_the_coldest_shape(self, device):
        cache = PlanCache(device=device, capacity=2)
        cache.choose(1024, 8)
        cache.choose(2048, 8)
        cache.choose(1024, 8)  # refresh 1024 -> 2048 is now coldest
        cache.choose(4096, 8)  # evicts 2048
        assert cache.evictions == 1
        assert cache.key(1024, 8, np.dtype(np.float32)) in cache
        assert cache.key(2048, 8, np.dtype(np.float32)) not in cache
        cache.choose(2048, 8)
        assert cache.misses == 4

    def test_capacity_must_be_positive(self, device):
        with pytest.raises(InvalidParameterError):
            PlanCache(device=device, capacity=0)


class TestDisabled:
    def test_disabled_cache_always_replans(self, device):
        cache = PlanCache(device=device, enabled=False)
        cache.choose(4096, 16)
        cache.choose(4096, 16)
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 0


class TestMetrics:
    def test_counters_published_to_explicit_registry(self, device):
        registry = obs.MetricsRegistry()
        cache = PlanCache(device=device, capacity=1, metrics=registry)
        cache.choose(1024, 8)
        cache.choose(1024, 8)
        cache.choose(2048, 8)
        assert registry.value("serving.plan_cache.hits") == 1
        assert registry.value("serving.plan_cache.misses") == 2
        assert registry.value("serving.plan_cache.evictions") == 1
        assert registry.value("serving.plan_cache.size") == 1

    def test_counters_fall_back_to_active_registry(self, device):
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        cache = PlanCache(device=device)
        with observation.activate():
            cache.choose(1024, 8)
            cache.choose(1024, 8)
        assert observation.metrics.value("serving.plan_cache.hits") == 1
        assert observation.metrics.value("serving.plan_cache.misses") == 1
