"""Property tests: expression evaluation agrees with numpy semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expressions import BinaryOp, Column, Literal, Not
from repro.engine.table import make_table

_ARITHMETIC = ["+", "-", "*"]
_COMPARISON = ["<", "<=", ">", ">=", "=", "!="]

_NUMPY_COMPARE = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}


def _table_from(a, b):
    return make_table("t", {"a": np.asarray(a), "b": np.asarray(b)})


@st.composite
def columns_pair(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    elements = st.integers(min_value=-1000, max_value=1000)
    a = draw(st.lists(elements, min_size=n, max_size=n))
    b = draw(st.lists(elements, min_size=n, max_size=n))
    return np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)


class TestArithmeticSemantics:
    @given(data=columns_pair(), op=st.sampled_from(_ARITHMETIC))
    @settings(max_examples=60, deadline=None)
    def test_column_column_matches_numpy(self, data, op):
        a, b = data
        table = _table_from(a, b)
        expression = BinaryOp(op, Column("a"), Column("b"))
        expected = {"+": a + b, "-": a - b, "*": a * b}[op]
        assert np.array_equal(expression.evaluate(table), expected)

    @given(data=columns_pair(), literal=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_literal_operand_broadcasts(self, data, literal):
        a, b = data
        table = _table_from(a, b)
        expression = BinaryOp("+", Column("a"), Literal(literal))
        assert np.array_equal(expression.evaluate(table), a + literal)


class TestComparisonSemantics:
    @given(data=columns_pair(), op=st.sampled_from(_COMPARISON))
    @settings(max_examples=60, deadline=None)
    def test_column_column(self, data, op):
        a, b = data
        table = _table_from(a, b)
        expression = BinaryOp(op, Column("a"), Column("b"))
        assert np.array_equal(
            expression.evaluate(table), _NUMPY_COMPARE[op](a, b)
        )

    @given(data=columns_pair(), op=st.sampled_from(_COMPARISON),
           literal=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_literal_on_either_side(self, data, op, literal):
        a, b = data
        table = _table_from(a, b)
        right_literal = BinaryOp(op, Column("a"), Literal(literal))
        left_literal = BinaryOp(op, Literal(literal), Column("a"))
        assert np.array_equal(
            right_literal.evaluate(table), _NUMPY_COMPARE[op](a, literal)
        )
        assert np.array_equal(
            left_literal.evaluate(table), _NUMPY_COMPARE[op](literal, a)
        )


class TestBooleanAlgebra:
    @given(data=columns_pair(), threshold=st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_de_morgan(self, data, threshold):
        a, b = data
        table = _table_from(a, b)
        p = BinaryOp("<", Column("a"), Literal(threshold))
        q = BinaryOp(">", Column("b"), Literal(threshold))
        not_and = Not(BinaryOp("and", p, q)).evaluate(table)
        or_nots = BinaryOp("or", Not(p), Not(q)).evaluate(table)
        assert np.array_equal(not_and, or_nots)

    @given(data=columns_pair(), threshold=st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, data, threshold):
        a, b = data
        table = _table_from(a, b)
        p = BinaryOp(">=", Column("a"), Literal(threshold))
        assert np.array_equal(
            Not(Not(p)).evaluate(table), p.evaluate(table).astype(bool)
        )
