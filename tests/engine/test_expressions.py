"""Tests for the expression AST and its vectorized evaluator."""

import numpy as np
import pytest

from repro.engine.expressions import (
    BinaryOp,
    Column,
    Literal,
    Not,
    column_width,
)
from repro.engine.table import make_table
from repro.errors import UnsupportedQueryError


@pytest.fixture
def table():
    return make_table(
        "t",
        {
            "a": np.array([1, 2, 3, 4], dtype=np.int32),
            "b": np.array([10.0, 20.0, 30.0, 40.0], dtype=np.float32),
            "lang": ["en", "es", "en", "ja"],
        },
    )


class TestArithmetic:
    def test_column_plus_literal(self, table):
        expression = BinaryOp("+", Column("a"), Literal(10))
        assert expression.evaluate(table).tolist() == [11, 12, 13, 14]

    def test_ranking_function_shape(self, table):
        """The paper's Q2 ranking: retweet_count + 0.5 * likes_count."""
        expression = BinaryOp(
            "+", Column("a"), BinaryOp("*", Literal(0.5), Column("b"))
        )
        assert expression.evaluate(table).tolist() == [6.0, 12.0, 18.0, 24.0]

    def test_division(self, table):
        expression = BinaryOp("/", Column("b"), Literal(10))
        assert expression.evaluate(table).tolist() == [1.0, 2.0, 3.0, 4.0]


class TestComparison:
    def test_less_than(self, table):
        expression = BinaryOp("<", Column("a"), Literal(3))
        assert expression.evaluate(table).tolist() == [True, True, False, False]

    def test_literal_on_the_left_flips(self, table):
        expression = BinaryOp("<", Literal(3), Column("a"))
        assert expression.evaluate(table).tolist() == [False, False, False, True]

    def test_column_to_column(self, table):
        expression = BinaryOp(">=", Column("b"), Column("a"))
        assert expression.evaluate(table).all()


class TestStrings:
    def test_string_equality_via_dictionary(self, table):
        expression = BinaryOp("=", Column("lang"), Literal("en"))
        assert expression.evaluate(table).tolist() == [True, False, True, False]

    def test_string_inequality(self, table):
        expression = BinaryOp("!=", Column("lang"), Literal("en"))
        assert expression.evaluate(table).tolist() == [False, True, False, True]

    def test_missing_string_matches_nothing(self, table):
        expression = BinaryOp("=", Column("lang"), Literal("zz"))
        assert not expression.evaluate(table).any()

    def test_string_range_predicate_rejected(self, table):
        expression = BinaryOp("<", Column("lang"), Literal("en"))
        with pytest.raises(UnsupportedQueryError):
            expression.evaluate(table)


class TestBoolean:
    def test_or(self, table):
        expression = BinaryOp(
            "or",
            BinaryOp("=", Column("lang"), Literal("en")),
            BinaryOp("=", Column("lang"), Literal("es")),
        )
        assert expression.evaluate(table).tolist() == [True, True, True, False]

    def test_and(self, table):
        expression = BinaryOp(
            "and",
            BinaryOp(">", Column("a"), Literal(1)),
            BinaryOp("<", Column("b"), Literal(40)),
        )
        assert expression.evaluate(table).tolist() == [False, True, True, False]

    def test_not(self, table):
        expression = Not(BinaryOp(">", Column("a"), Literal(2)))
        assert expression.evaluate(table).tolist() == [True, True, False, False]


class TestMetadata:
    def test_referenced_columns(self, table):
        expression = BinaryOp(
            "+", Column("a"), BinaryOp("*", Literal(0.5), Column("b"))
        )
        assert expression.referenced_columns() == {"a", "b"}

    def test_column_width_sums_input_bytes(self, table):
        expression = BinaryOp("+", Column("a"), Column("b"))
        assert column_width(expression, table) == 8  # int32 + float32

    def test_str_rendering(self):
        expression = BinaryOp("<", Column("x"), Literal(5))
        assert str(expression) == "(x < 5)"
        assert str(Literal("en")) == "'en'"

    def test_bare_literal_cannot_evaluate(self, table):
        with pytest.raises(UnsupportedQueryError):
            Literal(1).evaluate(table)
