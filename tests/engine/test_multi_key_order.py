"""Tests for multi-column ORDER BY (the engine's KKV path)."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.sql import parse
from repro.engine.table import make_table


@pytest.fixture
def table():
    return make_table(
        "scores",
        {
            "id": np.arange(8, dtype=np.int32),
            "a": np.array([2, 1, 2, 1, 2, 1, 2, 1], dtype=np.int32),
            "b": np.array([5, 9, 7, 3, 5, 1, 6, 8], dtype=np.int32),
        },
    )


class TestParsing:
    def test_multiple_keys_with_directions(self):
        query = parse("SELECT id FROM t ORDER BY a DESC, b ASC, c LIMIT 3")
        assert len(query.order_by_keys) == 3
        directions = [descending for _, descending in query.order_by_keys]
        assert directions == [True, False, False]
        # Mirrors in the single-key fields.
        assert query.order_desc is True
        assert str(query.order_by) == "a"


class TestExecution:
    def test_lexicographic_order(self, table, device):
        executor = QueryExecutor(table, device)
        result = executor.sql(
            "SELECT id, a, b FROM scores ORDER BY a DESC, b DESC LIMIT 4"
        )
        # a = 2 rows first, then within them b descending: 7, 6, 5, 5.
        assert result.column("a").tolist() == [2, 2, 2, 2]
        assert result.column("b").tolist() == [7, 6, 5, 5]

    def test_mixed_directions(self, table, device):
        executor = QueryExecutor(table, device)
        result = executor.sql(
            "SELECT id, a, b FROM scores ORDER BY a DESC, b ASC LIMIT 3"
        )
        assert result.column("a").tolist() == [2, 2, 2]
        assert result.column("b").tolist() == [5, 5, 6]

    def test_with_filter(self, table, device):
        executor = QueryExecutor(table, device)
        result = executor.sql(
            "SELECT id, b FROM scores WHERE a = 1 ORDER BY a ASC, b DESC LIMIT 2"
        )
        assert result.column("b").tolist() == [9, 8]

    def test_trace_widens_with_key_count(self, table, device):
        """Figure 14: the kernels move wider rows for KKV than KV."""
        executor = QueryExecutor(table, device)
        single = executor.sql(
            "SELECT id FROM scores ORDER BY a DESC LIMIT 2",
            strategy="topk",
            model_rows=1 << 24,
        )
        double = executor.sql(
            "SELECT id FROM scores ORDER BY a DESC, b DESC LIMIT 2",
            strategy="topk",
            model_rows=1 << 24,
        )
        assert double.trace.global_bytes > single.trace.global_bytes
