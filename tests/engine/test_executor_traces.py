"""Detailed tests of the executor's trace accounting."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.table import make_table
from repro.engine.twitter import generate_tweets, time_threshold_for_selectivity

MODEL = 250_000_000


@pytest.fixture(scope="module")
def tweets():
    return generate_tweets(1 << 13, seed=11)


@pytest.fixture
def executor(tweets, device):
    return QueryExecutor(tweets, device)


class TestScanWidth:
    def test_fused_scan_reads_only_referenced_columns(self, executor, device):
        """Q1 touches tweet_time (4 B), retweet_count (4 B) and id (4 B):
        the fused kernel's read is 12 B per modeled row."""
        threshold = time_threshold_for_selectivity(0.5)
        result = executor.sql(
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50",
            strategy="fused",
            model_rows=MODEL,
        )
        first = result.trace.kernels[0]
        assert first.name == "FusedSortReducer"
        assert first.global_bytes_read == pytest.approx(MODEL * 12)

    def test_projection_only_query_reads_two_columns(self, executor):
        result = executor.sql(
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 50",
            strategy="fused",
            model_rows=MODEL,
        )
        assert result.trace.kernels[0].global_bytes_read == pytest.approx(
            MODEL * 8
        )


class TestMaterializationTraffic:
    def test_sort_strategy_scales_with_selectivity(self, executor):
        def candidate_bytes(selectivity):
            threshold = time_threshold_for_selectivity(selectivity)
            result = executor.sql(
                f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
                "ORDER BY retweet_count DESC LIMIT 50",
                strategy="sort",
                model_rows=MODEL,
            )
            materialize = result.trace.kernels[0]
            return materialize.global_bytes_written

        assert candidate_bytes(0.8) == pytest.approx(4 * candidate_bytes(0.2),
                                                     rel=0.1)

    def test_fused_records_selectivity_note(self, executor):
        threshold = time_threshold_for_selectivity(0.3)
        result = executor.sql(
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50",
            strategy="fused",
            model_rows=MODEL,
        )
        assert result.trace.notes["selectivity"] == pytest.approx(0.3, abs=0.02)


class TestGroupByTrace:
    def test_aggregation_kernel_reads_the_group_column(self, executor, tweets):
        result = executor.sql(
            "SELECT uid, COUNT() AS n FROM tweets GROUP BY uid "
            "ORDER BY n DESC LIMIT 50",
            strategy="topk",
            model_rows=MODEL,
        )
        aggregate = result.trace.kernels[0]
        assert aggregate.name == "hash-aggregate"
        expected = MODEL * tweets.column("uid").dtype.itemsize
        assert aggregate.global_bytes_read == pytest.approx(expected)
        assert aggregate.atomic_ops == pytest.approx(MODEL)


class TestScanTrace:
    def test_plain_filter_writes_selected_rows(self, device):
        table = make_table(
            "small",
            {"a": np.arange(100, dtype=np.int32),
             "b": np.arange(100, dtype=np.int32)},
        )
        executor = QueryExecutor(table, device)
        result = executor.sql("SELECT a, b FROM small WHERE a < 50",
                              model_rows=1 << 20)
        scan = result.trace.kernels[0]
        # Half the rows survive; each full row is 8 bytes.
        assert scan.global_bytes_written == pytest.approx((1 << 20) * 0.5 * 8)
