"""The incremental operator contract and the one-shot degenerate stream."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.engine.operators import (
    IncrementalOperator,
    SelectionOperator,
    TickInterpreter,
    run_once,
)
from repro.errors import InvalidParameterError
from repro.plan import build_fallback


class RecordingOperator(IncrementalOperator):
    """Logs the verbs it is driven through; emits the chunk count."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def open(self):
        super().open()
        self.calls.append("open")
        self.chunks = 0

    def advance(self, chunk):
        self._require_open("advance")
        self.calls.append("advance")
        self.chunks += 1

    def emit(self, k, model_n=None):
        self._require_open("emit")
        self.calls.append("emit")
        return self.chunks

    def close(self):
        super().close()
        self.calls.append("close")


class TestProtocol:
    def test_verbs_require_open(self):
        operator = RecordingOperator()
        with pytest.raises(InvalidParameterError):
            operator.advance(np.zeros(1))
        with pytest.raises(InvalidParameterError):
            operator.emit(1)

    def test_close_revokes_open(self):
        operator = RecordingOperator()
        operator.open()
        operator.close()
        with pytest.raises(InvalidParameterError):
            operator.emit(1)

    def test_run_once_is_the_degenerate_stream(self):
        operator = RecordingOperator()
        assert run_once(operator, np.zeros(4), 2) == 1
        assert operator.calls == ["open", "advance", "emit", "close"]

    def test_interpreter_ticks_repeatedly(self):
        operator = RecordingOperator()
        with TickInterpreter(operator) as interpreter:
            for expected in (1, 2, 3):
                assert interpreter.tick(np.zeros(4), 2) == expected
            assert interpreter.ticks == 3
        assert operator.calls[-1] == "close"

    def test_interpreter_tick_outside_context_raises(self):
        interpreter = TickInterpreter(RecordingOperator())
        with pytest.raises(InvalidParameterError):
            interpreter.tick(np.zeros(4), 2)

    def test_interpreter_closes_on_error(self):
        operator = RecordingOperator()
        with pytest.raises(RuntimeError):
            with TickInterpreter(operator):
                raise RuntimeError("boom")
        assert operator.calls[-1] == "close"


class TestSelectionOperator:
    def plan(self, n, k):
        return build_fallback(
            [("bitonic", 1e-3)], n=n, k=k, terminal_cpu=True
        )

    def test_one_shot_matches_reference(self, rng):
        ranks = rng.standard_normal(4096).astype(np.float32)
        indices, trace = run_once(
            SelectionOperator(self.plan(4096, 32)), ranks, 32
        )
        _, expected = reference_topk(ranks, 32)
        assert np.array_equal(indices, expected)
        assert trace is None  # bitonic accounts via the query-level trace

    def test_single_chunk_passes_through_unbuffered(self, rng):
        # The bit-identity keystone: a one-chunk stream must hand emit()
        # the caller's exact array, not a copy or a concatenation.
        ranks = rng.standard_normal(256).astype(np.float32)
        operator = SelectionOperator(self.plan(256, 4))
        operator.open()
        operator.advance(ranks)
        assert operator._buffered() is ranks
        operator.close()

    def test_multi_chunk_equals_concatenated_one_shot(self, rng):
        parts = [
            rng.standard_normal(512).astype(np.float32) for _ in range(4)
        ]
        whole = np.concatenate(parts)
        operator = SelectionOperator(self.plan(2048, 16))
        operator.open()
        for part in parts:
            operator.advance(part)
        chunked, _ = operator.emit(16)
        operator.close()
        one_shot, _ = run_once(
            SelectionOperator(self.plan(2048, 16)), whole, 16
        )
        assert np.array_equal(chunked, one_shot)

    def test_open_resets_buffered_chunks(self, rng):
        operator = SelectionOperator(self.plan(64, 4))
        operator.open()
        operator.advance(rng.standard_normal(64).astype(np.float32))
        operator.close()
        operator.open()
        assert operator._chunks == []
        operator.close()
