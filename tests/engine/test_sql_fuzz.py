"""Fuzz tests for the SQL parser.

Two properties:

1. **No surprise exceptions** — arbitrary text must either parse or raise
   :class:`SqlSyntaxError`; any other exception is a parser bug.
2. **Round-trip** — queries *generated from the grammar* must parse, and
   re-rendering their expressions must be stable (parse(render(ast)) has
   the same structure).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import QueryExecutor
from repro.engine.sql import parse
from repro.engine.table import make_table
from repro.errors import SqlSyntaxError

_COLUMNS = ("a", "b", "c")

_number = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0, max_value=100, allow_nan=False).map(
        lambda value: round(value, 3)
    ),
)


def _atoms():
    return st.one_of(
        st.sampled_from(_COLUMNS),
        _number.map(str),
    )


@st.composite
def arithmetic(draw, depth=2):
    if depth == 0:
        return draw(_atoms())
    left = draw(arithmetic(depth=depth - 1))
    right = draw(arithmetic(depth=depth - 1))
    operator = draw(st.sampled_from(["+", "-", "*"]))
    if draw(st.booleans()):
        return f"({left} {operator} {right})"
    return f"{left} {operator} {right}"


@st.composite
def predicate(draw):
    left = draw(arithmetic(depth=1))
    operator = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    right = draw(_number.map(str))
    return f"{left} {operator} {right}"


@st.composite
def where_clause(draw):
    terms = draw(st.lists(predicate(), min_size=1, max_size=3))
    connectors = draw(
        st.lists(st.sampled_from(["AND", "OR"]), min_size=len(terms) - 1,
                 max_size=len(terms) - 1)
    )
    clause = terms[0]
    for connector, term in zip(connectors, terms[1:]):
        clause = f"{clause} {connector} {term}"
    return clause


@st.composite
def grammar_query(draw):
    select = ", ".join(
        draw(st.lists(st.sampled_from(_COLUMNS), min_size=1, max_size=3,
                      unique=True))
    )
    sql = f"SELECT {select} FROM t"
    if draw(st.booleans()):
        sql += f" WHERE {draw(where_clause())}"
    if draw(st.booleans()):
        direction = draw(st.sampled_from(["", " ASC", " DESC"]))
        sql += f" ORDER BY {draw(arithmetic(depth=1))}{direction}"
        sql += f" LIMIT {draw(st.integers(min_value=1, max_value=50))}"
    return sql


class TestFuzzArbitraryText:
    @given(text=st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_never_raises_anything_but_syntax_errors(self, text):
        try:
            parse(text)
        except SqlSyntaxError:
            pass

    @given(
        text=st.text(
            alphabet="SELECT FROM WHERE ORDER BY LIMIT abc012<>=()'*+-,",
            max_size=120,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_sql_shaped_garbage(self, text):
        try:
            parse(text)
        except SqlSyntaxError:
            pass


class TestGrammarQueries:
    @given(sql=grammar_query())
    @settings(max_examples=150, deadline=None)
    def test_generated_queries_parse(self, sql):
        query = parse(sql)
        assert query.table == "t"
        assert query.select

    @given(sql=grammar_query())
    @settings(max_examples=60, deadline=None)
    def test_generated_queries_execute(self, sql):
        """Parsed grammar queries must execute without crashing and return
        columns of equal length."""
        table = make_table(
            "t",
            {
                "a": np.arange(32, dtype=np.int32),
                "b": np.arange(32, dtype=np.int32)[::-1].copy(),
                "c": np.ones(32, dtype=np.float32),
            },
        )
        executor = QueryExecutor(table)
        result = executor.sql(sql)
        lengths = {len(column) for column in result.columns.values()}
        assert len(lengths) <= 1

    @given(sql=grammar_query())
    @settings(max_examples=60, deadline=None)
    def test_expression_rendering_is_reparseable(self, sql):
        query = parse(sql)
        if query.where is None:
            return
        reparsed = parse(f"SELECT a FROM t WHERE {query.where}")
        assert str(reparsed.where) == str(query.where)
