"""Engine test package."""
