"""Tests for columnar tables and dictionary encoding."""

import numpy as np
import pytest

from repro.engine.table import Table, make_table
from repro.errors import InvalidParameterError


class TestMakeTable:
    def test_numeric_columns_preserved(self):
        table = make_table("t", {"a": np.arange(4), "b": np.ones(4, np.float32)})
        assert table.num_rows == 4
        assert table.column("a").dtype == np.int64
        assert not table.is_string_column("a")

    def test_string_columns_dictionary_encoded(self):
        table = make_table("t", {"lang": ["en", "es", "en", "ja"]})
        codes = table.column("lang")
        assert codes.dtype == np.int32
        assert table.is_string_column("lang")
        assert table.decode_strings("lang", codes) == ["en", "es", "en", "ja"]

    def test_encode_string_roundtrip(self):
        table = make_table("t", {"lang": ["en", "es"]})
        assert table.encode_string("lang", "es") == table.column("lang")[1]

    def test_encode_missing_string_is_minus_one(self):
        table = make_table("t", {"lang": ["en"]})
        assert table.encode_string("lang", "xx") == -1

    def test_encode_string_on_numeric_column_rejected(self):
        table = make_table("t", {"a": np.arange(3)})
        with pytest.raises(InvalidParameterError):
            table.encode_string("a", "en")


class TestValidation:
    def test_unequal_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_tables_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table("t", {})

    def test_missing_column_lists_alternatives(self):
        table = make_table("t", {"alpha": np.arange(2)})
        with pytest.raises(InvalidParameterError, match="alpha"):
            table.column("beta")


class TestSizes:
    def test_column_bytes(self):
        table = make_table("t", {"a": np.arange(10, dtype=np.int32)})
        assert table.column_bytes("a") == 40

    def test_row_bytes_all_columns(self):
        table = make_table(
            "t",
            {"a": np.arange(5, dtype=np.int32), "b": np.ones(5, dtype=np.float64)},
        )
        assert table.row_bytes() == 12
        assert table.row_bytes(["a"]) == 4
