"""Tests for the SQL subset parser."""

import pytest

from repro.engine.expressions import BinaryOp, Literal
from repro.engine.sql import parse
from repro.errors import SqlSyntaxError


class TestPaperQueries:
    """All four Section 6.8 queries must parse."""

    def test_query_1(self):
        query = parse(
            "SELECT id FROM tweets WHERE tweet_time < 100 "
            "ORDER BY retweet_count DESC LIMIT 50"
        )
        assert query.table == "tweets"
        assert query.select[0].alias == "id"
        assert str(query.where) == "(tweet_time < 100)"
        assert query.order_desc
        assert query.limit == 50

    def test_query_2(self):
        query = parse(
            "SELECT id FROM tweets "
            "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 10"
        )
        assert str(query.order_by) == "(retweet_count + (0.5 * likes_count))"

    def test_query_3(self):
        query = parse(
            "SELECT id FROM tweets WHERE lang='en' OR lang='es' "
            "ORDER BY retweet_count DESC LIMIT 5"
        )
        assert isinstance(query.where, BinaryOp)
        assert query.where.op == "or"

    def test_query_4(self):
        query = parse(
            "SELECT uid, COUNT() AS num_tweets FROM tweets GROUP BY uid "
            "ORDER BY num_tweets DESC LIMIT 50"
        )
        assert query.group_by == ["uid"]
        assert query.select[1].is_count
        assert query.select[1].alias == "num_tweets"


class TestGrammar:
    def test_keywords_case_insensitive(self):
        query = parse("select a from t where a > 1 order by a limit 3")
        assert query.limit == 3
        assert not query.order_desc

    def test_ascending_default_and_explicit(self):
        assert not parse("SELECT a FROM t ORDER BY a").order_desc
        assert not parse("SELECT a FROM t ORDER BY a ASC").order_desc
        assert parse("SELECT a FROM t ORDER BY a DESC").order_desc

    def test_multiplication_binds_tighter_than_addition(self):
        query = parse("SELECT a FROM t ORDER BY a + b * c")
        assert str(query.order_by) == "(a + (b * c))"

    def test_parentheses_override_precedence(self):
        query = parse("SELECT a FROM t ORDER BY (a + b) * c")
        assert str(query.order_by) == "((a + b) * c)"

    def test_and_binds_tighter_than_or(self):
        query = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert query.where.op == "or"
        assert query.where.right.op == "and"

    def test_boolean_grouping(self):
        query = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert query.where.op == "and"
        assert query.where.left.op == "or"

    def test_not_predicate(self):
        query = parse("SELECT a FROM t WHERE NOT a = 1")
        assert str(query.where) == "(not (a = 1))"

    def test_not_equal_spellings(self):
        assert parse("SELECT a FROM t WHERE a != 1").where.op == "!="
        assert parse("SELECT a FROM t WHERE a <> 1").where.op == "!="

    def test_select_alias(self):
        query = parse("SELECT a + b AS total FROM t")
        assert query.select[0].alias == "total"

    def test_trailing_semicolon_allowed(self):
        assert parse("SELECT a FROM t;").table == "t"

    def test_string_literal(self):
        query = parse("SELECT a FROM t WHERE lang = 'en'")
        assert isinstance(query.where.right, Literal)
        assert query.where.right.value == "en"

    def test_count_star(self):
        query = parse("SELECT uid, COUNT(*) AS n FROM t GROUP BY uid")
        assert query.select[1].is_count

    def test_float_literals(self):
        query = parse("SELECT a FROM t WHERE a < 0.5")
        assert query.where.right.value == 0.5


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a WHERE a > 1")

    def test_garbage_token(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t WHERE a @ 1")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t ORDER BY (a + b")

    def test_truncated_query(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t WHERE")

    def test_keyword_in_expression(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t ORDER BY select")
