"""Tests for the synthetic twitter dataset generator."""

import numpy as np
import pytest

from repro.engine.twitter import (
    LANGUAGES,
    MAY_2017_END,
    MAY_2017_START,
    generate_tweets,
    time_threshold_for_selectivity,
)
from repro.errors import InvalidParameterError


class TestSchema:
    def test_columns(self):
        table = generate_tweets(1000)
        assert set(table.column_names) == {
            "id",
            "uid",
            "tweet_time",
            "retweet_count",
            "likes_count",
            "lang",
        }
        assert table.num_rows == 1000
        assert table.is_string_column("lang")

    def test_deterministic_by_seed(self):
        first = generate_tweets(500, seed=3)
        second = generate_tweets(500, seed=3)
        assert np.array_equal(first.column("uid"), second.column("uid"))
        different = generate_tweets(500, seed=4)
        assert not np.array_equal(first.column("uid"), different.column("uid"))

    def test_invalid_size(self):
        with pytest.raises(InvalidParameterError):
            generate_tweets(0)


class TestDistributions:
    def test_user_count_ratio(self):
        """~57M distinct users per 250M tweets, scaled down."""
        table = generate_tweets(1 << 16)
        distinct = len(np.unique(table.column("uid")))
        assert distinct < (1 << 16) * 0.35

    def test_user_skew_has_heavy_hitters(self):
        table = generate_tweets(1 << 16)
        _, counts = np.unique(table.column("uid"), return_counts=True)
        assert counts.max() > 20 * np.median(counts)

    def test_times_span_may_2017(self):
        table = generate_tweets(1 << 14)
        times = table.column("tweet_time")
        assert times.min() >= MAY_2017_START
        assert times.max() < MAY_2017_END

    def test_language_mix(self):
        table = generate_tweets(1 << 16)
        langs = np.array(table.decode_strings("lang", table.column("lang")))
        assert set(np.unique(langs)) <= set(LANGUAGES)
        en_es = np.isin(langs, ["en", "es"]).mean()
        assert en_es == pytest.approx(0.8, abs=0.03)

    def test_popularity_correlation(self):
        """Retweets and likes are positively correlated."""
        table = generate_tweets(1 << 16)
        correlation = np.corrcoef(
            table.column("retweet_count"), table.column("likes_count")
        )[0, 1]
        assert correlation > 0.3


class TestSelectivityThreshold:
    @pytest.mark.parametrize("selectivity", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_threshold_hits_requested_selectivity(self, selectivity):
        table = generate_tweets(1 << 16)
        threshold = time_threshold_for_selectivity(selectivity)
        actual = (table.column("tweet_time") < threshold).mean()
        assert actual == pytest.approx(selectivity, abs=0.02)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            time_threshold_for_selectivity(1.5)
