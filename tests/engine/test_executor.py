"""Tests for query execution: correctness across strategies and traces."""

import numpy as np
import pytest

from repro.engine.executor import STRATEGIES, QueryExecutor
from repro.engine.session import Session
from repro.engine.table import make_table
from repro.engine.twitter import generate_tweets, time_threshold_for_selectivity
from repro.errors import UnsupportedQueryError

MODEL_ROWS = 250_000_000


@pytest.fixture(scope="module")
def tweets():
    return generate_tweets(1 << 14, seed=7)


@pytest.fixture
def session(tweets, device):
    session = Session(device)
    session.register(tweets)
    return session


class TestQuery1:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_time_filter_topk(self, session, tweets, strategy):
        threshold = time_threshold_for_selectivity(0.5)
        result = session.sql(
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50",
            strategy=strategy,
        )
        mask = tweets.column("tweet_time") < threshold
        expected = np.sort(tweets.column("retweet_count")[mask])[::-1][:50]
        got = np.sort(tweets.column("retweet_count")[result.column("id")])[::-1]
        assert np.array_equal(got, expected)

    def test_empty_selectivity(self, session):
        threshold = time_threshold_for_selectivity(0.0)
        result = session.sql(
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50"
        )
        assert result.num_result_rows == 0


class TestQuery2:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_ranking_function(self, session, tweets, strategy):
        result = session.sql(
            "SELECT id FROM tweets "
            "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 64",
            strategy=strategy,
        )
        rank = (
            tweets.column("retweet_count") + 0.5 * tweets.column("likes_count")
        )
        expected = np.sort(rank)[::-1][:64]
        got = np.sort(rank[result.column("id")])[::-1]
        assert np.allclose(got, expected)


class TestQuery3:
    def test_language_filter(self, session, tweets):
        result = session.sql(
            "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'es' "
            "ORDER BY retweet_count DESC LIMIT 32"
        )
        langs = np.array(
            tweets.decode_strings("lang", tweets.column("lang"))
        )
        mask = np.isin(langs, ["en", "es"])
        expected = np.sort(tweets.column("retweet_count")[mask])[::-1][:32]
        got = np.sort(tweets.column("retweet_count")[result.column("id")])[::-1]
        assert np.array_equal(got, expected)

    def test_selectivity_is_about_80_percent(self, tweets):
        langs = np.array(tweets.decode_strings("lang", tweets.column("lang")))
        assert np.isin(langs, ["en", "es"]).mean() == pytest.approx(0.8, abs=0.03)


class TestQuery4:
    @pytest.mark.parametrize("strategy", ["sort", "topk"])
    def test_group_by_count(self, session, tweets, strategy):
        result = session.sql(
            "SELECT uid, COUNT() AS num_tweets FROM tweets GROUP BY uid "
            "ORDER BY num_tweets DESC LIMIT 50",
            strategy=strategy,
        )
        _, counts = np.unique(tweets.column("uid"), return_counts=True)
        expected = np.sort(counts)[::-1][:50]
        assert np.array_equal(np.sort(result.column("num_tweets"))[::-1], expected)

    def test_group_by_requires_count(self, session):
        with pytest.raises(UnsupportedQueryError):
            session.sql("SELECT uid FROM tweets GROUP BY uid LIMIT 5")


class TestStrategyCosts:
    def test_fusion_ordering(self, session):
        """Figure 16: fused < separate top-k < sort, at high selectivity."""
        threshold = time_threshold_for_selectivity(1.0)
        sql = (
            f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
            "ORDER BY retweet_count DESC LIMIT 50"
        )
        times = {
            strategy: session.sql(
                sql, strategy=strategy, model_rows=MODEL_ROWS
            ).simulated_ms()
            for strategy in STRATEGIES
        }
        assert times["fused"] < times["topk"] < times["sort"]

    def test_sort_cost_grows_with_selectivity(self, session):
        low = session.sql(
            f"SELECT id FROM tweets WHERE tweet_time < "
            f"{time_threshold_for_selectivity(0.1)} "
            "ORDER BY retweet_count DESC LIMIT 50",
            strategy="sort",
            model_rows=MODEL_ROWS,
        ).simulated_ms()
        high = session.sql(
            f"SELECT id FROM tweets WHERE tweet_time < "
            f"{time_threshold_for_selectivity(0.9)} "
            "ORDER BY retweet_count DESC LIMIT 50",
            strategy="sort",
            model_rows=MODEL_ROWS,
        ).simulated_ms()
        assert high > 2 * low

    def test_fused_cost_nearly_selectivity_independent(self, session):
        """The fused kernel always scans the base columns once."""
        times = []
        for selectivity in (0.1, 0.9):
            threshold = time_threshold_for_selectivity(selectivity)
            times.append(
                session.sql(
                    f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
                    "ORDER BY retweet_count DESC LIMIT 50",
                    strategy="fused",
                    model_rows=MODEL_ROWS,
                ).simulated_ms()
            )
        assert times[1] < times[0] * 1.5

    def test_group_by_topk_beats_sort(self, session):
        sql = (
            "SELECT uid, COUNT() AS num_tweets FROM tweets GROUP BY uid "
            "ORDER BY num_tweets DESC LIMIT 50"
        )
        sort_time = session.sql(
            sql, strategy="sort", model_rows=MODEL_ROWS
        ).simulated_ms()
        topk_time = session.sql(
            sql, strategy="topk", model_rows=MODEL_ROWS
        ).simulated_ms()
        assert topk_time < sort_time


class TestPlainScans:
    def test_filter_only_query(self, device):
        table = make_table(
            "small", {"a": np.arange(10, dtype=np.int32), "b": np.arange(10) * 2}
        )
        executor = QueryExecutor(table, device)
        result = executor.sql("SELECT a, b FROM small WHERE a >= 7")
        assert result.column("a").tolist() == [7, 8, 9]
        assert result.column("b").tolist() == [14, 16, 18]

    def test_limit_without_order(self, device):
        table = make_table("small", {"a": np.arange(10, dtype=np.int32)})
        executor = QueryExecutor(table, device)
        result = executor.sql("SELECT a FROM small LIMIT 3")
        assert result.column("a").tolist() == [0, 1, 2]


class TestErrors:
    def test_unknown_strategy(self, session):
        with pytest.raises(UnsupportedQueryError):
            session.sql("SELECT id FROM tweets LIMIT 1", strategy="magic")

    def test_unknown_table(self, session):
        with pytest.raises(UnsupportedQueryError):
            session.sql("SELECT id FROM toots LIMIT 1")

    def test_executor_rejects_foreign_table(self, tweets, device):
        executor = QueryExecutor(tweets, device)
        with pytest.raises(UnsupportedQueryError):
            executor.sql("SELECT a FROM other LIMIT 1")
