"""Tests for GROUP BY aggregates (SUM / MIN / MAX / AVG / COUNT)."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.table import make_table
from repro.errors import UnsupportedQueryError


@pytest.fixture
def table():
    return make_table(
        "sales",
        {
            "region": np.array([0, 1, 0, 1, 2, 0], dtype=np.int32),
            "amount": np.array([10.0, 20.0, 30.0, 5.0, 7.0, 2.0], dtype=np.float64),
        },
    )


@pytest.fixture
def executor(table, device):
    return QueryExecutor(table, device)


class TestAggregates:
    def test_sum(self, executor):
        result = executor.sql(
            "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
            "ORDER BY total DESC LIMIT 3"
        )
        assert result.column("region").tolist() == [0, 1, 2]
        assert result.column("total").tolist() == [42.0, 25.0, 7.0]

    def test_max_and_min(self, executor):
        result = executor.sql(
            "SELECT region, MAX(amount) AS biggest, MIN(amount) AS smallest "
            "FROM sales GROUP BY region ORDER BY biggest DESC LIMIT 3"
        )
        assert result.column("biggest").tolist() == [30.0, 20.0, 7.0]
        assert result.column("smallest").tolist() == [2.0, 5.0, 7.0]

    def test_avg(self, executor):
        result = executor.sql(
            "SELECT region, AVG(amount) AS mean FROM sales GROUP BY region "
            "ORDER BY mean DESC LIMIT 3"
        )
        assert result.column("mean").tolist() == [14.0, 12.5, 7.0]

    def test_count_alongside_sum(self, executor):
        result = executor.sql(
            "SELECT region, COUNT() AS n, SUM(amount) AS total FROM sales "
            "GROUP BY region ORDER BY n DESC LIMIT 1"
        )
        assert result.column("n").tolist() == [3]
        assert result.column("total").tolist() == [42.0]

    def test_aggregate_of_expression(self, executor):
        result = executor.sql(
            "SELECT region, SUM(amount * 2) AS doubled FROM sales "
            "GROUP BY region ORDER BY doubled DESC LIMIT 1"
        )
        assert result.column("doubled").tolist() == [84.0]

    def test_order_by_group_column(self, executor):
        result = executor.sql(
            "SELECT region, COUNT() AS n FROM sales GROUP BY region "
            "ORDER BY region ASC LIMIT 3"
        )
        assert result.column("region").tolist() == [0, 1, 2]

    def test_with_filter(self, executor):
        result = executor.sql(
            "SELECT region, SUM(amount) AS total FROM sales "
            "WHERE amount > 6 GROUP BY region ORDER BY total DESC LIMIT 3"
        )
        assert result.column("total").tolist() == [40.0, 20.0, 7.0]

    def test_order_by_unknown_alias_rejected(self, executor):
        with pytest.raises(UnsupportedQueryError):
            executor.sql(
                "SELECT region, COUNT() AS n FROM sales GROUP BY region "
                "ORDER BY amount DESC LIMIT 3"
            )

    def test_group_by_without_aggregate_rejected(self, executor):
        with pytest.raises(UnsupportedQueryError):
            executor.sql("SELECT region FROM sales GROUP BY region LIMIT 1")
