"""Tests for table ingestion."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.loader import from_csv, from_csv_text, from_rows
from repro.errors import InvalidParameterError

CSV = """id,score,lang
0,1.5,en
1,3.25,es
2,0.5,en
3,9.75,ja
"""


class TestFromCsv:
    def test_types_inferred(self):
        table = from_csv_text("t", CSV)
        assert table.column("id").dtype == np.int64
        assert table.column("score").dtype == np.float64
        assert table.is_string_column("lang")
        assert table.num_rows == 4

    def test_queryable_end_to_end(self):
        table = from_csv_text("t", CSV)
        result = QueryExecutor(table).sql(
            "SELECT id FROM t WHERE lang = 'en' ORDER BY score DESC LIMIT 2"
        )
        assert result.column("id").tolist() == [0, 2]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(CSV)
        table = from_csv("t", path)
        assert table.num_rows == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            from_csv("t", tmp_path / "nope.csv")

    def test_empty_input(self):
        with pytest.raises(InvalidParameterError):
            from_csv_text("t", "")

    def test_header_only(self):
        with pytest.raises(InvalidParameterError):
            from_csv_text("t", "a,b\n")

    def test_ragged_rows(self):
        with pytest.raises(InvalidParameterError):
            from_csv_text("t", "a,b\n1,2\n3\n")

    def test_duplicate_columns(self):
        with pytest.raises(InvalidParameterError):
            from_csv_text("t", "a,a\n1,2\n")

    def test_alternate_delimiter(self):
        table = from_csv_text("t", "a;b\n1;2\n3;4\n", delimiter=";")
        assert table.column("b").tolist() == [2, 4]


class TestFromRows:
    def test_dictionaries(self):
        table = from_rows(
            "t",
            [
                {"name": "alpha", "score": 3},
                {"name": "beta", "score": 5},
            ],
        )
        assert table.is_string_column("name")
        assert table.column("score").tolist() == [3, 5]

    def test_empty(self):
        with pytest.raises(InvalidParameterError):
            from_rows("t", [])

    def test_mismatched_keys(self):
        with pytest.raises(InvalidParameterError):
            from_rows("t", [{"a": 1}, {"b": 2}])
