"""Tests for EXPLAIN."""

import pytest

from repro.engine.session import Session
from repro.engine.twitter import generate_tweets


@pytest.fixture(scope="module")
def session():
    session = Session()
    session.register(generate_tweets(1 << 13, seed=5))
    return session


class TestExplain:
    def test_recommends_fused_for_filtered_topk(self, session):
        plan = session.explain(
            "SELECT id FROM tweets WHERE lang = 'en' "
            "ORDER BY retweet_count DESC LIMIT 50",
            model_rows=250_000_000,
        )
        assert plan.recommended == "fused"
        assert len(plan.strategies) == 3
        costs = [strategy.simulated_ms for strategy in plan.strategies]
        assert costs == sorted(costs)

    def test_group_by_offers_two_strategies(self, session):
        plan = session.explain(
            "SELECT uid, COUNT() AS n FROM tweets GROUP BY uid "
            "ORDER BY n DESC LIMIT 10"
        )
        assert {strategy.strategy for strategy in plan.strategies} == {
            "sort",
            "topk",
        }
        assert plan.recommended == "topk"

    def test_render_contains_pipeline_stages(self, session):
        plan = session.explain(
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
            model_rows=1_000_000,
        )
        text = plan.render()
        assert "EXPLAIN" in text
        assert "FusedSortReducer" in text
        assert "radix sort" in text
        assert "->" in text

    def test_model_rows_scale_the_costs(self, session):
        small = session.explain(
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
            model_rows=1_000_000,
        )
        large = session.explain(
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 5",
            model_rows=250_000_000,
        )
        assert large.strategies[0].simulated_ms > small.strategies[0].simulated_ms
