"""Tests for device profiles and their validation."""

import pytest

from repro.errors import InvalidParameterError
from repro.gpu.device import (
    GTX_1080,
    TITAN_X_MAXWELL,
    V100,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)


class TestRegistry:
    def test_default_device_is_the_papers_gpu(self):
        assert get_device().name == "titan-x-maxwell"

    def test_lookup_by_name(self):
        assert get_device("gtx-1080") is GTX_1080
        assert get_device("v100") is V100

    def test_unknown_device_lists_alternatives(self):
        with pytest.raises(InvalidParameterError, match="titan-x-maxwell"):
            get_device("rtx-9090")

    def test_list_devices_contains_all_profiles(self):
        names = list_devices()
        assert {"titan-x-maxwell", "gtx-1080", "v100"} <= set(names)

    def test_register_custom_device(self):
        custom = DeviceSpec(
            name="test-gpu",
            global_bandwidth=100e9,
            shared_bandwidth=1e12,
            num_sms=10,
            cores_per_sm=64,
        )
        register_device(custom)
        assert get_device("test-gpu") is custom


class TestPaperConstants:
    """The Section 6.1 / Section 7 hardware constants."""

    def test_titan_x_global_bandwidth(self):
        assert TITAN_X_MAXWELL.global_bandwidth == pytest.approx(251e9)

    def test_titan_x_shared_bandwidth(self):
        assert TITAN_X_MAXWELL.shared_bandwidth == pytest.approx(2.9e12)

    def test_shared_memory_per_block_is_48_kib(self):
        assert TITAN_X_MAXWELL.shared_memory_per_block == 48 * 1024

    def test_warp_size(self):
        assert TITAN_X_MAXWELL.warp_size == 32

    def test_shared_memory_banks(self):
        assert TITAN_X_MAXWELL.shared_memory_banks == 32

    def test_total_cores(self):
        assert TITAN_X_MAXWELL.total_cores == 24 * 128


class TestHelpers:
    def test_global_read_time_scales_linearly(self):
        time_1gb = TITAN_X_MAXWELL.global_read_time(1e9)
        time_2gb = TITAN_X_MAXWELL.global_read_time(2e9)
        assert time_2gb == pytest.approx(2 * time_1gb)

    def test_reading_the_paper_dataset_takes_about_nine_ms(self):
        # 2^29 floats at 251 GB/s — the Figure 11 bandwidth lower bound.
        seconds = TITAN_X_MAXWELL.global_read_time((1 << 29) * 4)
        assert 0.008 < seconds < 0.009

    def test_shared_faster_than_global(self):
        assert TITAN_X_MAXWELL.shared_access_time(1e9) < (
            TITAN_X_MAXWELL.global_read_time(1e9)
        )

    def test_pcie_transfer_time(self):
        assert TITAN_X_MAXWELL.pcie_transfer_time(12e9) == pytest.approx(1.0)


class TestValidation:
    def test_negative_bandwidth_rejected(self):
        with pytest.raises(InvalidParameterError):
            DeviceSpec(
                name="bad",
                global_bandwidth=-1,
                shared_bandwidth=1e12,
                num_sms=1,
                cores_per_sm=1,
            )

    def test_non_power_of_two_warp_rejected(self):
        with pytest.raises(InvalidParameterError):
            DeviceSpec(
                name="bad",
                global_bandwidth=1e9,
                shared_bandwidth=1e12,
                num_sms=1,
                cores_per_sm=1,
                warp_size=31,
            )

    def test_zero_banks_rejected(self):
        with pytest.raises(InvalidParameterError):
            DeviceSpec(
                name="bad",
                global_bandwidth=1e9,
                shared_bandwidth=1e12,
                num_sms=1,
                cores_per_sm=1,
                shared_memory_banks=0,
            )
