"""Tests for the counters -> simulated time conversion."""

import pytest

from repro.gpu.counters import ExecutionTrace, KernelCounters
from repro.gpu.timing import (
    kernel_time,
    memory_bandwidth_bound,
    trace_time,
)


class TestKernelTime:
    def test_global_bound_kernel(self, device):
        counters = KernelCounters(name="scan")
        counters.add_global_read(device.global_bandwidth * device.global_efficiency)
        time = kernel_time(counters, device)
        assert time.global_time == pytest.approx(1.0)
        assert time.bound_by == "global"

    def test_shared_bound_kernel(self, device):
        counters = KernelCounters()
        counters.add_global_read(1.0)
        counters.add_shared(device.shared_bandwidth, conflict_factor=1.0)
        time = kernel_time(counters, device)
        assert time.bound_by == "shared"

    def test_max_composition_not_sum(self, device):
        """Section 7.2: the GPU hides the cheaper resource behind the bound."""
        counters = KernelCounters()
        counters.add_global_read(251e9 * 0.878)  # one second of global
        counters.add_shared(2.9e12 * 0.862 / 2)  # half a second of shared
        total = kernel_time(counters, device).total
        assert total == pytest.approx(1.0, rel=0.01)

    def test_conflicts_inflate_shared_time(self, device):
        free = KernelCounters()
        free.add_shared(1e12, conflict_factor=1.0)
        conflicted = KernelCounters()
        conflicted.add_shared(1e12, conflict_factor=2.0)
        assert (
            kernel_time(conflicted, device).shared_time
            == pytest.approx(2 * kernel_time(free, device).shared_time)
        )

    def test_low_occupancy_derates_global_bandwidth(self, device):
        full = KernelCounters()
        full.add_global_read(1e9)
        starved = KernelCounters(occupancy=0.125)
        starved.add_global_read(1e9)
        assert (
            kernel_time(starved, device).global_time
            == pytest.approx(2 * kernel_time(full, device).global_time)
        )

    def test_atomics_add_on_top(self, device):
        counters = KernelCounters(atomic_ops=1e6)
        time = kernel_time(counters, device)
        assert time.atomic_time > 0
        assert time.total >= time.atomic_time

    def test_fixed_seconds_dominate(self, device):
        counters = KernelCounters(fixed_seconds=0.5)
        time = kernel_time(counters, device)
        assert time.total == pytest.approx(0.5)


class TestTraceTime:
    def test_kernels_sum_with_launch_overheads(self, device):
        trace = ExecutionTrace()
        trace.launch("a")
        trace.launch("b")
        total = trace_time(trace, device).total
        assert total == pytest.approx(2 * device.kernel_launch_overhead)

    def test_by_kernel_aggregation(self, device):
        trace = ExecutionTrace()
        trace.launch("merge").add_global_read(1e9)
        trace.launch("merge").add_global_read(1e9)
        trace.launch("sort").add_global_read(1e9)
        by_kernel = trace_time(trace, device).by_kernel()
        assert set(by_kernel) == {"merge", "sort"}
        assert by_kernel["merge"] == pytest.approx(2 * by_kernel["sort"], rel=0.01)

    def test_total_ms_conversion(self, device):
        trace = ExecutionTrace()
        counters = trace.launch("fixed")
        counters.fixed_seconds = 0.123
        assert trace_time(trace, device).total_ms == pytest.approx(123.0)


class TestBandwidthBound:
    def test_paper_lower_bound(self, device):
        """Reading 2^29 floats takes ~8.6 ms at 251 GB/s (Figure 11)."""
        bound = memory_bandwidth_bound((1 << 29) * 4, device)
        assert bound * 1e3 == pytest.approx(8.56, rel=0.01)

    def test_every_algorithm_respects_the_bound(self, device, rng):
        import numpy as np

        from repro.algorithms.registry import EVALUATED_ALGORITHMS, create

        data = rng.random(1 << 14, dtype=np.float32)
        bound = memory_bandwidth_bound((1 << 26) * 4, device)
        for name in EVALUATED_ALGORITHMS:
            algorithm = create(name, device)
            if not algorithm.supports(1 << 26, 64, data.dtype):
                continue
            result = algorithm.run(data, 64, model_n=1 << 26)
            assert result.simulated_time(device).total >= bound * 0.99, name
