"""Tests for the occupancy model."""

import pytest

from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.occupancy import (
    BlockResources,
    bandwidth_derating,
    blocks_per_sm,
    occupancy,
    register_spill_fraction,
)


class TestBlocksPerSm:
    def test_small_block_limited_by_thread_count(self, device):
        resources = BlockResources(threads=256, shared_memory_bytes=0)
        assert blocks_per_sm(device, resources) == 8  # 2048 / 256

    def test_shared_memory_limits_residency(self, device):
        resources = BlockResources(threads=128, shared_memory_bytes=32 * 1024)
        assert blocks_per_sm(device, resources) == 3  # 96 KiB / 32 KiB

    def test_register_pressure_limits_residency(self, device):
        resources = BlockResources(
            threads=256, shared_memory_bytes=0, registers_per_thread=128
        )
        assert blocks_per_sm(device, resources) == 2  # 65536 / (128 * 256)

    def test_block_exceeding_shared_limit_fails(self, device):
        # The paper's per-thread heap failure: k = 512 floats with a
        # 32-thread block needs 64 KiB > 48 KiB.
        resources = BlockResources(threads=32, shared_memory_bytes=64 * 1024)
        with pytest.raises(ResourceExhaustedError):
            blocks_per_sm(device, resources)

    def test_block_exceeding_thread_limit_fails(self, device):
        with pytest.raises(ResourceExhaustedError):
            blocks_per_sm(device, BlockResources(threads=2048))


class TestOccupancy:
    def test_full_occupancy(self, device):
        assert occupancy(device, BlockResources(threads=256)) == 1.0

    def test_shared_memory_cuts_occupancy(self, device):
        heavy = occupancy(
            device, BlockResources(threads=256, shared_memory_bytes=32 * 1024)
        )
        assert heavy < 0.5

    def test_occupancy_never_exceeds_one(self, device):
        assert occupancy(device, BlockResources(threads=32)) <= 1.0


class TestDerating:
    def test_saturated_occupancy_reaches_peak(self):
        assert bandwidth_derating(1.0) == 1.0
        assert bandwidth_derating(0.25) == 1.0

    def test_low_occupancy_linear_falloff(self):
        assert bandwidth_derating(0.125) == pytest.approx(0.5)

    def test_invalid_occupancy(self):
        with pytest.raises(InvalidParameterError):
            bandwidth_derating(0.0)
        with pytest.raises(InvalidParameterError):
            bandwidth_derating(1.5)


class TestRegisterSpill:
    def test_no_spill_when_fitting(self):
        assert register_spill_fraction(64, 255) == 0.0

    def test_spill_fraction_grows(self):
        small = register_spill_fraction(300, 255)
        large = register_spill_fraction(600, 255)
        assert 0.0 < small < large < 1.0

    def test_invalid_usage(self):
        with pytest.raises(InvalidParameterError):
            register_spill_fraction(0)


class TestBlockResourcesValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(InvalidParameterError):
            BlockResources(threads=0)

    def test_negative_shared_rejected(self):
        with pytest.raises(InvalidParameterError):
            BlockResources(threads=32, shared_memory_bytes=-1)
