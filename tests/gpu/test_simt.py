"""Tests for the micro SIMT executor, including the model cross-validation.

The last test class runs a real (tiny) bitonic local sort as a simulated
kernel and checks both its functional output against numpy and its measured
bank-conflict factors against the analytical model in
:mod:`repro.gpu.banks` — the evidence that the analytical deltas feeding
the cost model describe the access patterns the kernels actually perform.
"""

import numpy as np
import pytest

from repro.bitonic.network import local_sort_steps
from repro.errors import SimulationError
from repro.gpu.banks import single_step_conflict_factor
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.simt import ThreadBlock, run_grid


class TestSharedMemory:
    def test_read_returns_written_value(self):
        shared = SharedMemory(8)
        shared.write(0, 3, 42.0)
        shared.flush_epoch()
        assert shared.read(0, 3) == 42.0

    def test_out_of_bounds_raises(self):
        shared = SharedMemory(4)
        with pytest.raises(SimulationError):
            shared.read(0, 4)
        with pytest.raises(SimulationError):
            shared.write(0, -1, 0.0)

    def test_conflict_free_warp_access(self):
        shared = SharedMemory(32)
        for thread in range(32):
            shared.read(thread, thread)
        shared.flush_epoch()
        assert shared.stats.average_conflict_factor == 1.0

    def test_stride_two_conflicts(self):
        shared = SharedMemory(64)
        for thread in range(32):
            shared.read(thread, thread * 2)
        shared.flush_epoch()
        assert shared.stats.average_conflict_factor == 2.0

    def test_slot_alignment_separates_instructions(self):
        # Two sequential accesses per thread are two warp instructions,
        # each conflict-free, even though addresses overlap across slots.
        shared = SharedMemory(64)
        for thread in range(32):
            shared.read(thread, thread)
            shared.read(thread, thread + 32)
        shared.flush_epoch()
        assert shared.stats.access_slots == 2
        assert shared.stats.conflict_cycles == 0


class TestGlobalMemory:
    def test_snapshot_roundtrip(self):
        memory = GlobalMemory([1.0, 2.0, 3.0])
        memory.write(0, 1, 9.0)
        memory.flush_epoch()
        assert memory.snapshot() == [1.0, 9.0, 3.0]

    def test_coalesced_transactions_counted(self):
        memory = GlobalMemory([0.0] * 64)
        for thread in range(32):
            memory.read(thread, thread)
        memory.flush_epoch()
        assert memory.stats.transactions == 4  # 128 bytes / 32-byte segments

    def test_scattered_transactions_counted(self):
        memory = GlobalMemory([0.0] * 1024)
        for thread in range(32):
            memory.read(thread, thread * 32)
        memory.flush_epoch()
        assert memory.stats.transactions == 32


class TestThreadBlock:
    def test_lockstep_reverse_kernel(self):
        block = ThreadBlock(8, shared_words=8)
        for thread in range(8):
            block.shared._data[thread] = float(thread)

        def reverse(ctx):
            value = ctx.shared_read(ctx.thread_id)
            yield
            ctx.shared_write(7 - ctx.thread_id, value)
            yield

        block.run(reverse)
        assert block.shared._data == [7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]
        assert block.barriers_executed == 2

    def test_barrier_divergence_detected(self):
        def diverging(ctx):
            if ctx.thread_id == 0:
                yield

        block = ThreadBlock(4)
        with pytest.raises(SimulationError, match="barrier divergence"):
            block.run(diverging)

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            ThreadBlock(0)

    def test_grid_runs_blocks_independently(self):
        memory = GlobalMemory([0.0] * 8)

        def make_kernel(block_id):
            def kernel(ctx):
                ctx.global_write(block_id * 4 + ctx.thread_id, float(block_id))
                yield

            return kernel

        blocks = run_grid(make_kernel, num_blocks=2, threads_per_block=4,
                          global_memory=memory)
        assert len(blocks) == 2
        assert memory.snapshot() == [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]


def _local_sort_kernel(k, n):
    """A step-per-barrier bitonic local sort over shared memory."""

    steps = local_sort_steps(k)

    def kernel(ctx):
        for step in steps:
            thread = ctx.thread_id
            if thread < n // 2:
                low = thread & (step.inc - 1)
                i = (thread << 1) - low
                partner = i + step.inc
                left = ctx.shared_read(i)
                right = ctx.shared_read(partner)
                reverse = (i & step.direction_period) == 0
                if reverse ^ (left < right):
                    left, right = right, left
                ctx.shared_write(i, left)
                ctx.shared_write(partner, right)
            yield

    return kernel


class TestModelCrossValidation:
    """Run real kernels and compare against the analytical models."""

    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_simulated_local_sort_produces_alternating_runs(self, k, rng):
        n = 64
        block = ThreadBlock(n // 2, shared_words=n)
        data = rng.random(n)
        block.shared._data = list(data)
        block.run(_local_sort_kernel(k, n))
        result = np.array(block.shared._data).reshape(-1, k)
        for index, run in enumerate(result):
            ascending = np.all(np.diff(run) >= 0)
            descending = np.all(np.diff(run) <= 0)
            assert ascending or descending
        # The multiset of values is preserved.
        assert np.allclose(np.sort(np.ravel(result)), np.sort(data))

    def test_measured_conflicts_match_single_step_model(self, rng):
        """The per-step conflict factors measured in simulation equal the
        analytical ``single_step_conflict_factor`` predictions."""
        n = 128
        k = 8
        for step_index, step in enumerate(local_sort_steps(k)):
            block = ThreadBlock(n // 2, shared_words=n)
            block.shared._data = list(rng.random(n))

            def one_step(ctx, step=step):
                thread = ctx.thread_id
                low = thread & (step.inc - 1)
                i = (thread << 1) - low
                left = ctx.shared_read(i)
                right = ctx.shared_read(i + step.inc)
                reverse = (i & step.direction_period) == 0
                if reverse ^ (left < right):
                    left, right = right, left
                ctx.shared_write(i, left)
                ctx.shared_write(i + step.inc, right)
                yield

            block.run(one_step)
            measured = block.shared.stats.average_conflict_factor
            predicted = single_step_conflict_factor(step.inc)
            assert measured == pytest.approx(predicted), (
                f"step {step_index} (distance {step.inc})"
            )
