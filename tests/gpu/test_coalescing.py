"""Tests for global-memory coalescing analysis."""

import pytest

from repro.errors import InvalidParameterError
from repro.gpu.coalescing import (
    coalescing_efficiency,
    strided_loop_efficiency,
    warp_transactions,
)


class TestWarpTransactions:
    def test_consecutive_words_coalesce(self):
        # 32 consecutive 4-byte words = 128 bytes = 4 segments of 32 bytes.
        addresses = [thread * 4 for thread in range(32)]
        assert warp_transactions(addresses) == 4

    def test_scattered_accesses_blow_up(self):
        addresses = [thread * 4096 for thread in range(32)]
        assert warp_transactions(addresses) == 32

    def test_same_segment_single_transaction(self):
        assert warp_transactions([0, 4, 8, 12]) == 1

    def test_empty_access_counts_one(self):
        assert warp_transactions([]) == 1

    def test_invalid_transaction_size(self):
        with pytest.raises(InvalidParameterError):
            warp_transactions([0], transaction_bytes=0)


class TestEfficiency:
    def test_perfectly_coalesced(self):
        addresses = [thread * 4 for thread in range(32)]
        assert coalescing_efficiency(addresses) == 1.0

    def test_fully_scattered(self):
        addresses = [thread * 4096 for thread in range(32)]
        assert coalescing_efficiency(addresses) == pytest.approx(4 / 32)

    def test_empty_is_neutral(self):
        assert coalescing_efficiency([]) == 1.0


class TestLoopOrders:
    """Why Algorithm 1 iterates with a stride of num_threads."""

    def test_paper_loop_order_is_coalesced(self):
        assert strided_loop_efficiency(16384, 1024) == 1.0

    def test_contiguous_partitions_scatter(self):
        efficiency = strided_loop_efficiency(
            16384, 1024, contiguous_per_thread=True
        )
        assert efficiency < 0.2
