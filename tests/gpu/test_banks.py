"""Tests for the shared-memory bank-conflict model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.gpu.banks import (
    ChunkShape,
    chunk_conflict_factor,
    pad_address,
    single_step_conflict_factor,
    strided_access_conflict_factor,
    warp_conflict_factor,
)


class TestWarpConflictFactor:
    def test_distinct_banks_are_conflict_free(self):
        assert warp_conflict_factor(range(32)) == 1

    def test_same_word_broadcasts(self):
        assert warp_conflict_factor([7] * 32) == 1

    def test_distinct_words_same_bank_serialize(self):
        assert warp_conflict_factor([0, 32], num_banks=32) == 2
        assert warp_conflict_factor([0, 32, 64, 96], num_banks=32) == 4

    def test_mixed_broadcast_and_conflict(self):
        # Two distinct words in bank 0, plus broadcasts of each.
        assert warp_conflict_factor([0, 0, 32, 32], num_banks=32) == 2

    def test_empty_access_is_free(self):
        assert warp_conflict_factor([]) == 1

    def test_invalid_banks(self):
        with pytest.raises(InvalidParameterError):
            warp_conflict_factor([0], num_banks=0)


class TestPadAddress:
    def test_first_row_unchanged(self):
        for address in range(32):
            assert pad_address(address, 32) == address

    def test_row_shift_breaks_column_alignment(self):
        # Words 0 and 32 share bank 0 unpadded but not padded.
        assert pad_address(32, 32) % 32 == 1

    def test_figure_7_example(self):
        # With 8 banks, threads reading 4 contiguous words each stop
        # conflicting after padding (the paper's Figure 7).
        unpadded = [thread * 4 for thread in range(8)]
        padded = [pad_address(address, 8) for address in unpadded]
        assert warp_conflict_factor(unpadded, num_banks=8) > 1
        assert warp_conflict_factor(padded, num_banks=8) == 1


class TestChunkShape:
    def test_contiguous_detection(self):
        assert ChunkShape((0, 1, 2, 3)).is_contiguous
        assert not ChunkShape((0, 1, 2, 4)).is_contiguous

    def test_elements_per_thread(self):
        assert ChunkShape((0, 1, 2, 3)).elements_per_thread == 16

    def test_covers_distance(self):
        shape = ChunkShape((0, 1, 4))
        assert shape.covers_distance(1)
        assert shape.covers_distance(16)
        assert not shape.covers_distance(8)

    def test_owned_indices_contiguous(self):
        shape = ChunkShape((0, 1))
        assert shape.owned_indices(0) == [0, 1, 2, 3]
        assert shape.owned_indices(1) == [4, 5, 6, 7]

    def test_owned_indices_strided(self):
        # Free bits {0, 2}: pairs at distance 4 (the Figure 10 shape).
        shape = ChunkShape((0, 2))
        assert shape.owned_indices(0) == [0, 1, 4, 5]

    def test_owned_sets_are_disjoint(self):
        shape = ChunkShape((0, 1, 3))
        seen = set()
        for thread in range(16):
            owned = set(shape.owned_indices(thread))
            assert not owned & seen
            seen |= owned

    def test_bits_deduplicated_and_sorted(self):
        assert ChunkShape((3, 0, 3)).free_bits == (0, 3)

    def test_invalid_bits_rejected(self):
        with pytest.raises(InvalidParameterError):
            ChunkShape(())
        with pytest.raises(InvalidParameterError):
            ChunkShape((-1,))


class TestCombinedStepFactors:
    """The paper's three optimization regimes."""

    def test_unpadded_contiguous_chunks_conflict_b_way(self):
        for bits in (2, 3, 4):
            shape = ChunkShape(tuple(range(bits)))
            factor = chunk_conflict_factor(shape, padding=False)
            assert factor == shape.elements_per_thread

    def test_padding_fixes_contiguous_chunks(self):
        for bits in (2, 3, 4, 5):
            shape = ChunkShape(tuple(range(bits)))
            assert chunk_conflict_factor(shape, padding=True) == 1.0

    def test_padding_leaves_strided_chunks_conflicted(self):
        # Figure 10a: distance above the chunk keeps 2-way conflicts.
        shape = ChunkShape((0, 1, 2, 4))
        assert chunk_conflict_factor(shape, padding=True) > 1.0

    def test_chunk_permutation_removes_remaining_conflicts(self):
        # Figure 10b / Section 4.3: conflict-free for every shape arising
        # in the kernels at k <= 256.
        for high_bit in range(3, 9):
            shape = ChunkShape((0, 1, 2, high_bit))
            factor = chunk_conflict_factor(
                shape, padding=True, chunk_permutation=True
            )
            assert factor == 1.0

    def test_permutation_never_worse_than_padding_alone(self):
        for bits in [(0, 1, 2, 3), (0, 1, 2, 5), (1, 2, 3, 4), (2, 3, 4, 5)]:
            shape = ChunkShape(bits)
            padded = chunk_conflict_factor(shape, padding=True)
            permuted = chunk_conflict_factor(
                shape, padding=True, chunk_permutation=True
            )
            assert permuted <= padded

    @given(
        bits=st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4)
    )
    @settings(max_examples=30, deadline=None)
    def test_factor_is_at_least_one(self, bits):
        shape = ChunkShape(tuple(bits))
        for padding in (False, True):
            assert chunk_conflict_factor(shape, padding=padding) >= 1.0


class TestSingleStepFactor:
    def test_small_distances_conflict_two_way(self):
        # Below the warp-spanning distance the two pair halves land on the
        # same 16 banks twice.
        for distance in (1, 2, 4, 8, 16):
            assert single_step_conflict_factor(distance) == 2.0

    def test_warp_spanning_distances_are_free(self):
        for distance in (32, 64, 1024):
            assert single_step_conflict_factor(distance) == 1.0

    def test_distance_must_be_power_of_two(self):
        with pytest.raises(InvalidParameterError):
            single_step_conflict_factor(3)
        with pytest.raises(InvalidParameterError):
            single_step_conflict_factor(0)


class TestStridedAccess:
    def test_unit_stride_is_free(self):
        assert strided_access_conflict_factor(1) == 1

    @given(exponent=st.integers(min_value=0, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_power_of_two_stride_matches_gcd_rule(self, exponent):
        stride = 1 << exponent
        expected = min(math.gcd(stride, 32) * 1, 32)
        assert strided_access_conflict_factor(stride) == min(expected, 32)


class TestOwnedIndexAlgebra:
    def test_each_thread_owns_exactly_b_elements(self):
        shape = ChunkShape((0, 2, 5))
        for thread in range(8):
            assert len(shape.owned_indices(thread)) == 8

    def test_owned_sets_cover_a_dense_prefix(self):
        shape = ChunkShape((0, 1, 2))
        covered = set()
        for thread in range(8):
            covered |= set(shape.owned_indices(thread))
        assert covered == set(range(64))
