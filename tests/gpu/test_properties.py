"""Property-based tests over the GPU substrate models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.banks import ChunkShape, chunk_conflict_factor, warp_conflict_factor
from repro.gpu.coalescing import coalescing_efficiency, warp_transactions
from repro.gpu.counters import ExecutionTrace, KernelCounters
from repro.gpu.device import get_device
from repro.gpu.timing import trace_time


class TestBankProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=4096),
                              max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_factor_bounded_by_access_count(self, addresses):
        factor = warp_conflict_factor(addresses)
        assert 1 <= factor <= max(1, len(addresses))

    @given(addresses=st.lists(st.integers(min_value=0, max_value=4096),
                              min_size=1, max_size=32),
           shift=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_factor_invariant_under_uniform_shift_by_banks(self, addresses, shift):
        """Adding a multiple of the bank count to every address cannot
        change the conflict structure."""
        shifted = [address + 32 * shift for address in addresses]
        assert warp_conflict_factor(addresses) == warp_conflict_factor(shifted)

    @given(bits=st.sets(st.integers(min_value=0, max_value=8), min_size=1,
                        max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_permutation_never_hurts(self, bits):
        shape = ChunkShape(tuple(bits))
        for padding in (False, True):
            plain = chunk_conflict_factor(shape, padding=padding)
            staggered = chunk_conflict_factor(
                shape, padding=padding, chunk_permutation=True
            )
            assert staggered <= plain + 1e-9


class TestCoalescingProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                              min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_transactions_bounded(self, addresses):
        transactions = warp_transactions([a * 4 for a in addresses])
        assert 1 <= transactions <= len(addresses)

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                              min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_transactions_invariant_under_permutation(self, addresses):
        byte_addresses = [a * 4 for a in addresses]
        shuffled = list(reversed(byte_addresses))
        assert warp_transactions(byte_addresses) == warp_transactions(shuffled)

    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                              min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_efficiency_in_unit_interval(self, addresses):
        efficiency = coalescing_efficiency([a * 4 for a in addresses])
        assert 0.0 < efficiency <= 1.0


class TestTimingProperties:
    @given(
        reads=st.floats(min_value=0, max_value=1e12),
        writes=st.floats(min_value=0, max_value=1e12),
        shared=st.floats(min_value=0, max_value=1e12),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_traffic_never_faster(self, reads, writes, shared):
        device = get_device()
        base = ExecutionTrace()
        counters = base.launch("kernel")
        counters.add_global_read(reads)
        counters.add_global_write(writes)
        counters.add_shared(shared)
        bigger = base.scaled(2.0)
        assert (
            trace_time(bigger, device).total
            >= trace_time(base, device).total - 1e-12
        )

    @given(factor=st.floats(min_value=1.0, max_value=32.0))
    @settings(max_examples=50, deadline=None)
    def test_conflicts_scale_shared_time_linearly(self, factor):
        device = get_device()
        free = KernelCounters()
        free.add_shared(1e10, 1.0)
        conflicted = KernelCounters()
        conflicted.add_shared(1e10, factor)
        from repro.gpu.timing import kernel_time

        ratio = (
            kernel_time(conflicted, device).shared_time
            / kernel_time(free, device).shared_time
        )
        assert ratio == pytest.approx(factor, rel=1e-9)


class TestTraceRender:
    def test_render_mentions_every_kernel(self, device):
        trace = ExecutionTrace()
        trace.launch("alpha").add_global_read(1e9)
        trace.launch("beta").add_shared(1e12)
        text = trace_time(trace, device).render()
        assert "alpha" in text and "beta" in text
        assert "global" in text and "shared" in text
        assert "total" in text

    def test_empty_trace(self, device):
        assert "(empty trace)" in trace_time(ExecutionTrace(), device).render()
