"""Tests for kernel counters and execution traces."""

import pytest

from repro.gpu.counters import ExecutionTrace, KernelCounters


class TestKernelCounters:
    def test_global_traffic_sums_reads_and_writes(self):
        counters = KernelCounters()
        counters.add_global_read(100.0)
        counters.add_global_write(50.0)
        assert counters.global_bytes == 150.0

    def test_shared_conflict_weighting(self):
        counters = KernelCounters()
        counters.add_shared(100.0, conflict_factor=2.0)
        assert counters.shared_bytes == 100.0
        assert counters.shared_bytes_weighted == 200.0

    def test_conflict_factor_below_one_rejected(self):
        counters = KernelCounters()
        with pytest.raises(ValueError):
            counters.add_shared(10.0, conflict_factor=0.5)

    def test_merge_accumulates_everything(self):
        first = KernelCounters(global_bytes_read=10.0, atomic_ops=5.0)
        second = KernelCounters(
            global_bytes_written=20.0, divergent_iterations=3.0, fixed_seconds=0.1
        )
        first.merge(second)
        assert first.global_bytes == 30.0
        assert first.atomic_ops == 5.0
        assert first.divergent_iterations == 3.0
        assert first.fixed_seconds == 0.1

    def test_scaled_multiplies_traffic(self):
        counters = KernelCounters(
            global_bytes_read=10.0,
            shared_bytes=4.0,
            shared_bytes_weighted=8.0,
            occupancy=0.5,
        )
        scaled = counters.scaled(3.0, name="bigger")
        assert scaled.global_bytes_read == 30.0
        assert scaled.shared_bytes_weighted == 24.0
        assert scaled.name == "bigger"
        assert scaled.occupancy == 0.5  # occupancy is not traffic

    def test_scaled_preserves_original(self):
        counters = KernelCounters(global_bytes_read=10.0)
        counters.scaled(2.0)
        assert counters.global_bytes_read == 10.0


class TestExecutionTrace:
    def test_launch_appends_kernels_in_order(self):
        trace = ExecutionTrace()
        trace.launch("first")
        trace.launch("second")
        assert [kernel.name for kernel in trace.kernels] == ["first", "second"]
        assert trace.num_launches == 2

    def test_aggregates_over_kernels(self):
        trace = ExecutionTrace()
        trace.launch("a").add_global_read(10.0)
        trace.launch("b").add_global_write(5.0)
        trace.kernels[0].add_shared(4.0, 2.0)
        assert trace.global_bytes == 15.0
        assert trace.shared_bytes == 4.0
        assert trace.shared_bytes_weighted == 8.0

    def test_extend_merges_notes(self):
        first = ExecutionTrace()
        first.launch("a")
        first.notes["x"] = 1.0
        second = ExecutionTrace()
        second.launch("b")
        second.notes["y"] = 2.0
        first.extend(second)
        assert first.num_launches == 2
        assert first.notes == {"x": 1.0, "y": 2.0}

    def test_scaled_trace(self):
        trace = ExecutionTrace()
        trace.launch("a").add_global_read(8.0)
        trace.notes["passes"] = 4
        scaled = trace.scaled(2.0)
        assert scaled.global_bytes == 16.0
        assert scaled.notes == {"passes": 4}
        assert trace.global_bytes == 8.0
