"""Grid-level SIMT validation: the multi-block reduction pipeline.

The production kernels rely on blocks being independent within a launch
(the property that lets the SortReducer grid scale).  This test runs the
micro block kernel over several blocks of one global array — each block
reducing its own tile — followed by a second single-block launch over the
gathered candidates, i.e. the two-launch structure of a real reduction.
"""

import numpy as np
import pytest

from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import ThreadBlock


def _two_stage_grid_topk(data: np.ndarray, k: int, num_blocks: int):
    """Stage 1: each block reduces its tile to k candidates in place after
    the data region; stage 2: one block reduces the candidates."""
    n = len(data)
    tile = n // num_blocks
    memory = GlobalMemory(list(data) + [0.0] * (num_blocks * k + k))
    blocks = []
    for block_id in range(num_blocks):
        base = block_id * tile

        def kernel(ctx, base=base):
            # View the tile as a standalone problem: load, reduce, store
            # candidates after the data region.
            thread = ctx.thread_id
            for position in range(thread, tile, ctx.block_size):
                ctx.shared_write(position, ctx.global_read(base + position))
            yield
            from repro.bitonic.network import local_sort_steps, rebuild_steps
            from repro.bitonic.simt_kernels import _compare_exchange, _merge_compact

            for step in local_sort_steps(k):
                yield from _compare_exchange(ctx, step, tile)
            live = tile
            while live > k:
                yield from _merge_compact(ctx, k, live)
                live //= 2
                if live > k:
                    for step in rebuild_steps(k):
                        yield from _compare_exchange(ctx, step, live)
            for step in rebuild_steps(k):
                yield from _compare_exchange(ctx, step, k)
            for position in range(thread, k, ctx.block_size):
                ctx.global_write(
                    n + base // tile * k + position, ctx.shared_read(position)
                )
            yield

        block = ThreadBlock(tile // 2, shared_words=tile, global_memory=memory)
        block.run(kernel)
        blocks.append(block)

    # Stage 2: reduce the num_blocks * k candidates with one block.
    candidate_count = num_blocks * k
    stage_two = ThreadBlock(
        candidate_count // 2, shared_words=candidate_count, global_memory=memory
    )

    def final_kernel(ctx):
        thread = ctx.thread_id
        for position in range(thread, candidate_count, ctx.block_size):
            ctx.shared_write(position, ctx.global_read(n + position))
        yield
        from repro.bitonic.network import local_sort_steps, rebuild_steps
        from repro.bitonic.simt_kernels import _compare_exchange, _merge_compact

        for step in local_sort_steps(k):
            yield from _compare_exchange(ctx, step, candidate_count)
        live = candidate_count
        while live > k:
            yield from _merge_compact(ctx, k, live)
            live //= 2
            if live > k:
                for step in rebuild_steps(k):
                    yield from _compare_exchange(ctx, step, live)
        for step in rebuild_steps(k):
            yield from _compare_exchange(ctx, step, k)
        for position in range(thread, k, ctx.block_size):
            ctx.global_write(
                n + candidate_count + position, ctx.shared_read(position)
            )
        yield

    stage_two.run(final_kernel)
    snapshot = memory.snapshot()
    return np.array(snapshot[n + candidate_count :]), blocks


class TestGridPipeline:
    @pytest.mark.parametrize("num_blocks,k", [(2, 4), (4, 8)])
    def test_two_stage_reduction_matches_oracle(self, num_blocks, k, rng):
        data = rng.random(256 * num_blocks)
        result, _ = _two_stage_grid_topk(data, k, num_blocks)
        expected = np.sort(data)[::-1][:k]
        assert np.allclose(np.sort(result)[::-1], expected)

    def test_blocks_audit_independently(self, rng):
        data = rng.random(512)
        _, blocks = _two_stage_grid_topk(data, 4, 2)
        for block in blocks:
            assert block.shared.stats.reads > 0
            assert block.shared.stats.average_conflict_factor >= 1.0
