"""Partitioning rule and merge semantics: tiling, balance, validation,
source-range round trips, sharded plan shape, and tie-breaking."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.plan.nodes import Merge, Scan, TopK
from repro.sharding import (
    build_sharded_plan,
    merge_topk,
    parse_shard_range,
    partition_ranges,
    shard_source,
)


class TestPartitionRanges:
    @pytest.mark.parametrize("n", [1, 7, 64, 1000, 1 << 16])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_ranges_tile_the_input_exactly(self, n, shards):
        if shards > n:
            pytest.skip("shards > n is a validation case")
        ranges = partition_ranges(n, shards)
        assert len(ranges) == shards
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_ranges_are_balanced_to_within_one_row(self):
        sizes = [stop - start for start, stop in partition_ranges(1000, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert all(size >= 1 for size in sizes)

    def test_extra_rows_go_to_the_first_ranges(self):
        sizes = [stop - start for start, stop in partition_ranges(10, 3)]
        assert sizes == [4, 3, 3]

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "2", None])
    def test_invalid_shard_counts_raise_typed_errors(self, bad):
        with pytest.raises(InvalidParameterError):
            partition_ranges(100, bad)

    def test_more_shards_than_rows_raises(self):
        with pytest.raises(InvalidParameterError, match="at least one row"):
            partition_ranges(3, 4)

    def test_empty_input_raises(self):
        with pytest.raises(InvalidParameterError, match="cannot partition"):
            partition_ranges(0, 1)


class TestShardSource:
    def test_round_trip(self):
        source = shard_source("tweets", 128, 256)
        assert source == "tweets[128:256)"
        assert parse_shard_range(source) == (128, 256)

    def test_unpartitioned_source_parses_to_none(self):
        assert parse_shard_range("tweets") is None
        assert parse_shard_range("vector") is None


class TestBuildShardedPlan:
    def test_tree_shape_and_ranges(self):
        merge = build_sharded_plan(1000, 50, shards=4, source="tweets")
        assert isinstance(merge, Merge)
        assert merge.algorithm == "sharded"
        assert merge.k == 50
        assert len(merge.inputs) == 4
        starts = []
        for node in merge.inputs:
            assert isinstance(node, TopK)
            assert isinstance(node.child, Scan)
            start, stop = parse_shard_range(node.child.source)
            assert stop - start == node.n == node.child.rows
            starts.append(start)
        assert starts == sorted(starts)
        assert merge.shard_ranges() == [
            f"[{start}:{stop})" for start, stop in partition_ranges(1000, 4)
        ]

    def test_label_renders_shard_ranges(self):
        merge = build_sharded_plan(100, 10, shards=2)
        label = merge.label()
        assert "shards=2" in label
        assert "[0:50)" in label and "[50:100)" in label

    def test_local_k_is_clamped_to_shard_rows(self):
        merge = build_sharded_plan(8, 6, shards=4)
        assert [node.k for node in merge.inputs] == [2, 2, 2, 2]


class TestMergeTopK:
    def test_ties_resolve_to_the_lower_global_row(self):
        values = np.array([5.0, 5.0, 5.0, 1.0], dtype=np.float32)
        indices = np.array([900, 3, 40, 1], dtype=np.int64)
        merged_values, merged_rows = merge_topk(values, indices, 3)
        assert merged_rows.tolist() == [3, 40, 900]
        assert merged_values.tolist() == [5.0, 5.0, 5.0]

    def test_nan_orders_last(self):
        values = np.array([np.nan, 2.0, np.nan, 3.0], dtype=np.float32)
        indices = np.array([0, 1, 2, 3], dtype=np.int64)
        merged_values, merged_rows = merge_topk(values, indices, 3)
        assert merged_rows.tolist() == [3, 1, 0]
        assert np.isnan(merged_values[-1])

    def test_uint64_does_not_wrap(self):
        top = np.iinfo(np.uint64).max
        values = np.array([0, top, 1], dtype=np.uint64)
        indices = np.array([0, 1, 2], dtype=np.int64)
        merged_values, _ = merge_topk(values, indices, 2)
        assert merged_values.tolist() == [top, 1]
