"""Engine and serving integration: a sharded Session answers bit-equal
to the default one, EXPLAIN renders the Merge tree, and the serving
layer keys its cache on the shard budget."""

import numpy as np
import pytest

from repro.engine import Session, generate_tweets
from repro.errors import InvalidParameterError
from repro.serving import TopKServer
from repro.serving.plan_cache import PlanCache

ROWS = 1 << 12
SQL = "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 50"


def make_session(shards=1, **kwargs):
    session = Session(shards=shards, **kwargs)
    session.register(generate_tweets(ROWS, seed=7))
    return session


class TestSessionParity:
    @pytest.mark.parametrize("strategy", ["sort", "topk", "fused"])
    def test_sharded_results_match_the_default_session(self, strategy):
        base = make_session().sql(SQL, strategy=strategy)
        sharded = make_session(shards=4).sql(SQL, strategy=strategy)
        np.testing.assert_array_equal(
            base.column("id"), sharded.column("id")
        )

    def test_filtered_query_parity(self):
        sql = (
            "SELECT id, likes_count FROM tweets WHERE tweet_time < 0.5 "
            "ORDER BY likes_count DESC LIMIT 25"
        )
        base = make_session().sql(sql)
        sharded = make_session(shards=4).sql(sql)
        np.testing.assert_array_equal(base.column("id"), sharded.column("id"))
        np.testing.assert_array_equal(
            base.column("likes_count"), sharded.column("likes_count")
        )

    def test_sharded_kernel_sequence(self):
        result = make_session(shards=4).sql(SQL, strategy="topk")
        names = [kernel.name for kernel in result.trace.kernels]
        assert "shard-topk-concurrent" in names
        assert "shard-gather" in names
        assert "shard-merge" in names

    def test_sort_strategy_never_shards(self):
        result = make_session(shards=4).sql(SQL, strategy="sort")
        names = [kernel.name for kernel in result.trace.kernels]
        assert "shard-topk-concurrent" not in names

    @pytest.mark.parametrize("bad", [0, -3, True, 2.5])
    def test_invalid_shard_counts_raise_at_query_time(self, bad):
        with pytest.raises(InvalidParameterError):
            make_session(shards=bad).sql(SQL)


class TestExplain:
    def test_explain_renders_the_merge_tree(self):
        plan = make_session(shards=4).explain(SQL)
        rendered = plan.render()
        assert "Merge(" in rendered
        assert "shards=4" in rendered
        assert "tweets[" in rendered

    def test_default_session_explain_has_no_merge(self):
        rendered = make_session().explain(SQL).render()
        assert "Merge(" not in rendered


class TestServing:
    def test_cache_keys_differ_by_shard_budget(self, device):
        single = PlanCache(device=device, max_shards=1)
        sharded = PlanCache(device=device, max_shards=8)
        key_args = (1 << 26, 256, np.dtype(np.float32))
        assert single.key(*key_args) != sharded.key(*key_args)

    def test_sharded_cache_serves_exact_answers(self, rng, device):
        from repro.algorithms.base import reference_topk

        cache = PlanCache(device=device, max_shards=8)
        data = rng.random(1 << 14).astype(np.float32)
        bound = cache.bound(len(data), 32)
        result = bound.run(data, 32)
        values, indices = reference_topk(data, 32)
        np.testing.assert_array_equal(result.values, values)
        np.testing.assert_array_equal(result.indices, indices)

    def test_server_with_a_shard_budget_answers_exactly(self, rng):
        from repro.algorithms.base import reference_topk

        data = rng.random(1 << 12).astype(np.float32)
        with TopKServer(max_shards=8) as server:
            outcome = server.query(data, 16)
        values, indices = reference_topk(data, 16)
        np.testing.assert_array_equal(outcome.values, values)
        np.testing.assert_array_equal(outcome.indices, indices)
