"""The scatter-gather executor: bit-equality to the single-device
reference across the property matrix, trace accounting, scaling, and
observability."""

import numpy as np
import pytest

from repro import observability as obs
from repro.algorithms.base import reference_topk
from repro.errors import InvalidParameterError
from repro.gpu.timing import trace_time
from repro.sharding import ShardedTopK, partition_ranges
from repro.sharding.executor import (
    CONCURRENT_KERNEL,
    GATHER_KERNEL,
    MERGE_KERNEL,
    REDISTRIBUTE_KERNEL,
)


def assert_exact(data, k, shards, device, model_n=None):
    result = ShardedTopK(device, shards=shards).run(data, k, model_n=model_n)
    values, indices = reference_topk(data, k)
    np.testing.assert_array_equal(result.values, values)
    np.testing.assert_array_equal(result.indices, indices)
    return result


class TestBitEquality:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint64]
    )
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_dtype_matrix(self, rng, device, dtype, shards):
        if np.dtype(dtype).kind == "f":
            data = rng.random(4096).astype(dtype)
        else:
            data = rng.integers(0, 1 << 30, size=4096).astype(dtype)
        assert_exact(data, 64, shards, device)

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_duplicate_heavy_input(self, rng, device, shards):
        # Only 5 distinct values over 4096 rows: ties everywhere, so the
        # answer is decided almost entirely by index tie-breaking.
        data = rng.integers(0, 5, size=4096).astype(np.int32)
        assert_exact(data, 128, shards, device)

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_nan_and_inf_payload(self, rng, device, shards):
        data = rng.random(4096).astype(np.float32)
        data[::7] = np.nan
        data[::11] = np.inf
        data[::13] = -np.inf
        assert_exact(data, 96, shards, device)

    @pytest.mark.parametrize("k", [4095, 4096])
    def test_k_near_n(self, rng, device, k):
        data = rng.random(4096).astype(np.float32)
        assert_exact(data, k, 4, device)

    def test_k_larger_than_per_shard_rows(self, rng, device):
        # k = 90 against 100/8 = 12-or-13-row shards: every shard must
        # surrender its entire slice as candidates.
        data = rng.random(100).astype(np.float32)
        assert_exact(data, 90, 8, device)

    def test_more_shards_than_rows_degrades_gracefully(self, rng, device):
        data = rng.random(5).astype(np.float32)
        result = assert_exact(data, 3, 8, device)
        assert result.trace.notes["sharding.shards"] == 5.0

    def test_matches_the_unsharded_executor(self, rng, device):
        data = rng.random(8192).astype(np.float32)
        single = ShardedTopK(device, shards=1).run(data, 32)
        sharded = ShardedTopK(device, shards=4).run(data, 32)
        np.testing.assert_array_equal(single.values, sharded.values)
        np.testing.assert_array_equal(single.indices, sharded.indices)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -2, True, 2.5])
    def test_bad_shard_counts_raise(self, device, bad):
        with pytest.raises(InvalidParameterError):
            ShardedTopK(device, shards=bad)


class TestTraceAccounting:
    def test_fault_free_kernel_sequence(self, rng, device):
        result = ShardedTopK(device, shards=4).run(
            rng.random(4096).astype(np.float32), 32
        )
        names = [kernel.name for kernel in result.trace.kernels]
        assert names == [CONCURRENT_KERNEL, GATHER_KERNEL, MERGE_KERNEL]
        assert REDISTRIBUTE_KERNEL not in names
        assert result.trace.notes["sharding.shards"] == 4.0
        assert result.trace.notes["sharding.shards_lost"] == 0.0
        assert result.trace.notes["sharding.redistributed"] == 0.0
        assert result.trace.notes["sharding.max_shard_ms"] > 0.0

    def test_simulated_time_improves_with_shards(self, rng, device):
        # The headline property: at modeled scale the concurrent phase is
        # bounded by the slowest shard, so more shards -> less time.
        data = rng.random(1 << 16).astype(np.float32)
        times = [
            trace_time(
                ShardedTopK(device, shards=shards)
                .run(data, 256, model_n=1 << 26)
                .trace,
                device,
            ).total
            for shards in (1, 2, 4)
        ]
        assert times[0] > times[1] > times[2]

    def test_gather_bytes_scale_with_candidates(self, rng, device):
        data = rng.random(4096).astype(np.float32)
        result = ShardedTopK(device, shards=4).run(data, 64)
        gather = result.trace.kernels[1]
        # 4 shards x 64 candidates x (4 value bytes + 4 row-id bytes).
        assert gather.fixed_seconds == pytest.approx(
            4 * 64 * 8 / device.pcie_bandwidth
        )


class TestObservability:
    def test_per_shard_spans_and_metrics(self, rng, device):
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            ShardedTopK(device, shards=4).run(
                rng.random(4096).astype(np.float32), 32
            )
        shard_spans = observation.tracer.spans("shard")
        assert [span.name for span in shard_spans] == [
            "shard:0", "shard:1", "shard:2", "shard:3"
        ]
        assert sum(span.attributes["rows"] for span in shard_spans) == 4096
        assert observation.metrics.value("sharding.shards") == 4.0
        assert observation.metrics.value("sharding.shards_executed") == 4.0

    def test_shard_spans_nest_under_the_algorithm_span(self, rng, device):
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            ShardedTopK(device, shards=2).run(
                rng.random(1024).astype(np.float32), 16
            )
        algorithm = [
            span
            for span in observation.tracer.spans("algorithm")
            if span.name == "algorithm:sharded"
        ]
        assert len(algorithm) == 1


class TestInnerResolution:
    def test_pinned_inner_that_cannot_support_is_replanned(self, rng, device):
        # bitonic caps k at 2048; a pinned-bitonic instance with a larger
        # local k must silently route to a feasible kernel instead.
        data = rng.random(8192).astype(np.float32)
        assert_exact(data, 5000, 2, device)

    def test_partition_ranges_match_the_trace_shards(self, rng, device):
        data = rng.random(1000).astype(np.float32)
        result = ShardedTopK(device, shards=3).run(data, 10)
        assert result.trace.notes["sharding.shards"] == float(
            len(partition_ranges(1000, 3))
        )
