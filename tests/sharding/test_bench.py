"""The sharding benchmark: workload validation, the exactness and
monotonicity gates, baseline comparison, and CLI exit codes."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.sharding import ShardWorkload, check_baseline, run_sharding_benchmark
from repro.sharding.bench import GATE_MAX_SHARDS


@pytest.fixture(scope="module")
def report():
    # A small modeled size keeps the sweep fast; the scaling property is
    # scale-free because the concurrent phase divides the modeled rows.
    return run_sharding_benchmark(
        ShardWorkload(model_n=1 << 23, k=64, functional_cap=1 << 16)
    )


class TestWorkloadValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model_n": 0},
            {"k": 0},
            {"k": 1 << 30},
            {"shard_counts": ()},
            {"shard_counts": (1, 4, 2)},
            {"shard_counts": (1, 1, 2)},
            {"shard_counts": (0, 2)},
            {"functional_cap": 4},
        ],
    )
    def test_bad_workloads_raise(self, kwargs):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ShardWorkload(**kwargs)

    def test_data_is_deterministic(self):
        workload = ShardWorkload(model_n=1 << 20, functional_cap=1 << 14)
        np.testing.assert_array_equal(workload.data(), workload.data())


class TestReport:
    def test_all_points_are_exact(self, report):
        assert report.identical
        assert all(point.identical for point in report.points)

    def test_scaling_is_monotonic_through_the_gate(self, report):
        assert report.monotonic
        assert report.passed
        gated = report.gated_points()
        assert [point.shards for point in gated] == [
            shards
            for shards in report.workload.shard_counts
            if shards <= GATE_MAX_SHARDS
        ]
        times = [point.simulated_ms for point in gated]
        assert times == sorted(times, reverse=True)

    def test_speedup_improves_one_through_four_shards(self, report):
        by_shards = {point.shards: point for point in report.points}
        assert report.speedup(by_shards[4]) > report.speedup(by_shards[2]) > 1.0

    def test_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["format"] == "repro-sharding-bench"
        assert payload["passed"] is True
        assert check_baseline(report, payload) == []

    def test_render_mentions_the_gate(self, report):
        rendered = report.render()
        assert "PASS" in rendered
        assert "shards" in rendered


class TestBaseline:
    def test_regression_is_reported(self, report):
        baseline = report.to_dict()
        baseline["points"][1]["simulated_ms"] /= 2.0
        problems = check_baseline(report, baseline)
        assert problems and "simulated_ms" in problems[0]

    def test_workload_mismatch_is_reported(self, report):
        baseline = report.to_dict()
        baseline["workload"]["k"] += 1
        assert check_baseline(report, baseline)

    def test_foreign_format_is_rejected(self, report):
        assert check_baseline(report, {"format": "other"}) == [
            "baseline is not a repro-sharding-bench document"
        ]


class TestCli:
    ARGS = [
        "shard-bench",
        "--n", str(1 << 23),
        "--k", "64",
        "--functional-cap", str(1 << 16),
    ]

    def test_passing_run_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        status = main([*self.ARGS, "--json", "--out", str(out)])
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert json.loads(capsys.readouterr().out) == payload

    def test_baseline_gate_round_trips(self, capsys, tmp_path):
        out = tmp_path / "baseline.json"
        assert main([*self.ARGS, "--json", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main([*self.ARGS, "--baseline", str(out)]) == 0

    def test_baseline_regression_exits_one(self, capsys, tmp_path):
        out = tmp_path / "baseline.json"
        assert main([*self.ARGS, "--json", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        doc["points"][0]["simulated_ms"] /= 10.0
        out.write_text(json.dumps(doc))
        capsys.readouterr()
        status = main([*self.ARGS, "--baseline", str(out)])
        captured = capsys.readouterr()
        assert status == 1
        assert "baseline regression" in captured.err

    def test_invalid_shard_counts_exit_three(self, capsys):
        status = main(
            ["shard-bench", "--shards", "4", "--shards", "2"]
        )
        captured = capsys.readouterr()
        assert status == 3
        assert "InvalidParameterError" in captured.err

    def test_invalid_k_exits_three(self, capsys):
        status = main(["shard-bench", "--k", "0"])
        assert status == 3
        assert "InvalidParameterError" in capsys.readouterr().err
