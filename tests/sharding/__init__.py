"""Sharded partition-parallel execution tests."""
