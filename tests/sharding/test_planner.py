"""Planner integration: the shard budget gates sharded plans, the
default budget preserves every existing decision bit for bit, and the
cost model's shard choice is feasible and beneficial."""

import numpy as np
import pytest

from repro.algorithms.registry import create, create_for_node
from repro.core.planner import TopKPlanner
from repro.costmodel import SHARD_MIN_ROWS, choose_shards
from repro.costmodel.base import UNIFORM_FLOAT
from repro.errors import InvalidParameterError
from repro.plan.nodes import Merge
from repro.plan.plan import request_fingerprint
from repro.sharding.executor import ShardedTopK

LARGE_N = 1 << 26


class TestDefaultParity:
    @pytest.mark.parametrize(
        "n,k", [(1 << 16, 32), (1 << 22, 256), (LARGE_N, 64)]
    )
    def test_default_budget_matches_the_unsharded_planner(self, device, n, k):
        planner = TopKPlanner(device)
        baseline = planner.choose(n, k, np.dtype(np.float32))
        explicit = planner.choose(n, k, np.dtype(np.float32), max_shards=1)
        assert explicit.algorithm == baseline.algorithm
        assert explicit.candidates == baseline.candidates
        assert explicit.shards == baseline.shards == 1
        assert explicit.fallback_chain() == baseline.fallback_chain()
        assert explicit.root.chain() == baseline.root.chain()


class TestShardedChoice:
    def test_large_inputs_plan_a_merge(self, device):
        plan = TopKPlanner(device).choose(
            LARGE_N, 256, np.dtype(np.float32), max_shards=8
        )
        assert plan.algorithm == "sharded"
        assert plan.shards > 1
        winner = plan.winner()
        assert isinstance(winner, Merge)
        assert len(winner.inputs) == plan.shards
        chain = plan.root.chain()
        assert chain[0] == "sharded"
        # The chain keeps single-device alternatives for fault fallback.
        assert len(chain) > 1

    def test_sharding_beats_the_single_device_prediction(self, device):
        planner = TopKPlanner(device)
        single = planner.choose(LARGE_N, 256, np.dtype(np.float32))
        sharded = planner.choose(
            LARGE_N, 256, np.dtype(np.float32), max_shards=8
        )
        assert sharded.predicted_seconds < single.predicted_seconds

    def test_small_inputs_stay_single_device(self, device):
        plan = TopKPlanner(device).choose(
            1 << 20, 64, np.dtype(np.float32), max_shards=8
        )
        assert plan.algorithm != "sharded"
        assert plan.shards == 1

    def test_approximate_queries_are_never_sharded(self, device):
        plan = TopKPlanner(device).choose(
            LARGE_N, 256, np.dtype(np.float32),
            recall_target=0.9, max_shards=8,
        )
        assert plan.algorithm != "sharded"

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "4"])
    def test_invalid_budgets_raise(self, device, bad):
        with pytest.raises(InvalidParameterError):
            TopKPlanner(device).choose(
                1 << 20, 64, np.dtype(np.float32), max_shards=bad
            )


class TestCostModel:
    def test_choice_is_a_power_of_two_within_the_budget(self, device):
        choice = choose_shards(
            LARGE_N, 256, np.dtype(np.float32), UNIFORM_FLOAT, device, 8
        )
        assert choice is not None
        assert choice.shards in (2, 4, 8)
        assert choice.seconds > 0.0
        assert choice.inner

    def test_budget_of_one_never_shards(self, device):
        choice = choose_shards(
            LARGE_N, 256, np.dtype(np.float32), UNIFORM_FLOAT, device, 1
        )
        assert choice is None or choice.shards == 1

    def test_planner_respects_the_row_floor(self, device):
        # Below the per-device threshold sharding would still predict
        # faster, but the planner's floor keeps the plan single-device.
        plan = TopKPlanner(device).choose(
            SHARD_MIN_ROWS - 1, 64, np.dtype(np.float32), max_shards=8
        )
        assert plan.algorithm != "sharded"
        assert plan.shards == 1


class TestRegistryDispatch:
    def test_merge_nodes_bind_to_the_scatter_gather_executor(self, device):
        plan = TopKPlanner(device).choose(
            LARGE_N, 256, np.dtype(np.float32), max_shards=4
        )
        algorithm = create_for_node(plan.winner(), device)
        assert isinstance(algorithm, ShardedTopK)
        assert algorithm.shards == plan.shards
        assert algorithm.inner == plan.winner().inputs[0].algorithm

    def test_sharded_is_a_registered_algorithm(self, device):
        assert isinstance(create("sharded", device), ShardedTopK)


class TestFingerprints:
    def test_budget_is_part_of_the_request_fingerprint(self, device):
        base = request_fingerprint(
            LARGE_N, 256, "float32", "uniform-float", device.name, 1.0
        )
        sharded = request_fingerprint(
            LARGE_N, 256, "float32", "uniform-float", device.name, 1.0,
            max_shards=8,
        )
        assert base != sharded

    def test_plan_to_dict_records_the_shard_count(self, device):
        plan = TopKPlanner(device).choose(
            LARGE_N, 256, np.dtype(np.float32), max_shards=4
        )
        assert plan.to_dict()["shards"] == plan.shards
