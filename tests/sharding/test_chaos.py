"""Shard-loss chaos: redistribution keeps the answer exact, cascading
losses degrade gracefully, and total loss surfaces the typed error that
composes with the Fallback chain."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.errors import DeviceLostError
from repro.gpu import faults
from repro.sharding import ShardedTopK
from repro.sharding.executor import REDISTRIBUTE_KERNEL


def lose(detail_match, nth=1, max_injections=1):
    return faults.FaultPlan(
        site="device-launch",
        fault="device-lost",
        nth=nth,
        max_injections=max_injections,
        match=detail_match,
    )


class TestSingleShardLoss:
    def test_result_stays_exact(self, rng, device):
        data = rng.random(4096).astype(np.float32)
        injector = faults.FaultInjector(seed=0, plans=[lose("shard#1")])
        with faults.inject(injector):
            result = ShardedTopK(device, shards=4).run(data, 64)
        values, indices = reference_topk(data, 64)
        np.testing.assert_array_equal(result.values, values)
        np.testing.assert_array_equal(result.indices, indices)

    def test_trace_accounts_the_recovery(self, rng, device):
        data = rng.random(4096).astype(np.float32)
        injector = faults.FaultInjector(seed=0, plans=[lose("shard#2")])
        with faults.inject(injector):
            result = ShardedTopK(device, shards=4).run(data, 32)
        names = [kernel.name for kernel in result.trace.kernels]
        assert REDISTRIBUTE_KERNEL in names
        assert result.trace.notes["sharding.shards_lost"] == 1.0
        # One lost range split across the three survivors.
        assert result.trace.notes["sharding.redistributed"] == 3.0

    def test_recovery_costs_simulated_time(self, rng, device):
        from repro.gpu.timing import trace_time

        data = rng.random(4096).astype(np.float32)
        clean = ShardedTopK(device, shards=4).run(data, 32)
        injector = faults.FaultInjector(seed=0, plans=[lose("shard#0")])
        with faults.inject(injector):
            faulty = ShardedTopK(device, shards=4).run(data, 32)
        assert (
            trace_time(faulty.trace, device).total
            > trace_time(clean.trace, device).total
        )


class TestCascadingLoss:
    def test_redistribute_target_loss_requeues_the_piece(self, rng, device):
        data = rng.random(4096).astype(np.float32)
        plans = [lose("shard#1"), lose("shard#0:redistribute")]
        with faults.inject(faults.FaultInjector(seed=0, plans=plans)):
            result = ShardedTopK(device, shards=4).run(data, 64)
        values, indices = reference_topk(data, 64)
        np.testing.assert_array_equal(result.values, values)
        np.testing.assert_array_equal(result.indices, indices)
        assert result.trace.notes["sharding.shards_lost"] == 1.0

    def test_all_launches_lost_raises_the_typed_error(self, rng, device):
        data = rng.random(1024).astype(np.float32)
        plans = [
            faults.FaultPlan(
                site="device-launch",
                fault="device-lost",
                probability=1.0,
                max_injections=None,
                match="shard#",
            )
        ]
        with faults.inject(faults.FaultInjector(seed=0, plans=plans)):
            with pytest.raises(DeviceLostError, match="all 4 shards lost"):
                ShardedTopK(device, shards=4).run(data, 16)


class TestFallbackComposition:
    def test_resilient_executor_survives_total_shard_loss(self, rng, device):
        # The sharded stage dies at launch; the chain's next alternative
        # answers, so the query never fails.
        from repro.resilience.executor import ResilientExecutor
        from repro.resilience.retry import NO_RETRY

        data = rng.random(2048).astype(np.float32)
        plans = [
            faults.FaultPlan(
                site="device-launch",
                fault="device-lost",
                probability=1.0,
                max_injections=None,
                match="shard#",
            )
        ]
        executor = ResilientExecutor(device=device, retry=NO_RETRY)
        with faults.inject(faults.FaultInjector(seed=0, plans=plans)):
            result = executor.run(data, 32, algorithm="sharded")
        assert result.algorithm != "sharded"
        values, indices = reference_topk(data, 32)
        np.testing.assert_array_equal(result.values, values)
        np.testing.assert_array_equal(result.indices, indices)
