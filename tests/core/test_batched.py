"""Tests for batched (per-row) top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import batched_reduce_topk, batched_topk
from repro.errors import InvalidParameterError


def _oracle(matrix, k):
    return np.sort(matrix, axis=1)[:, ::-1][:, :k]


class TestBatchedReduce:
    @pytest.mark.parametrize("rows,n,k", [(1, 64, 8), (16, 256, 16), (5, 32, 32)])
    def test_matches_per_row_sort(self, rows, n, k, rng):
        matrix = rng.random((rows, n)).astype(np.float32)
        values, _ = batched_reduce_topk(matrix.copy(), k)
        assert np.array_equal(values[:, :k], _oracle(matrix, k))

    def test_k_one(self, rng):
        matrix = rng.random((8, 128)).astype(np.float32)
        values, _ = batched_reduce_topk(matrix.copy(), 1)
        assert np.array_equal(values[:, 0], matrix.max(axis=1))

    @given(
        rows=st.integers(min_value=1, max_value=10),
        n_exp=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_property(self, rows, n_exp, seed):
        generator = np.random.default_rng(seed)
        n = 1 << n_exp
        k = 1 << int(generator.integers(0, n_exp + 1))
        matrix = generator.random((rows, n)).astype(np.float32)
        values, _ = batched_reduce_topk(matrix.copy(), k)
        assert np.array_equal(values[:, :k], _oracle(matrix, k))


class TestBatchedTopK:
    def test_values_and_indices(self, rng):
        matrix = rng.random((9, 777)).astype(np.float32)
        result = batched_topk(matrix, 13)
        assert result.values.shape == (9, 13)
        assert result.indices.shape == (9, 13)
        assert np.array_equal(result.values, _oracle(matrix, 13))
        for row in range(9):
            assert np.array_equal(
                matrix[row][result.indices[row]], result.values[row]
            )

    def test_non_power_of_two_rows(self, rng):
        matrix = rng.random((3, 100)).astype(np.float32)
        result = batched_topk(matrix, 7)
        assert np.array_equal(result.values, _oracle(matrix, 7))

    def test_integer_rows(self, rng):
        matrix = rng.integers(0, 1000, (4, 500)).astype(np.int32)
        result = batched_topk(matrix, 5)
        assert np.array_equal(result.values, _oracle(matrix, 5))

    def test_launch_count_independent_of_batch(self, rng, device):
        """The point of batching: one fused launch pipeline for all rows."""
        small = batched_topk(rng.random((2, 512)).astype(np.float32), 8)
        large = batched_topk(rng.random((64, 512)).astype(np.float32), 8)
        assert small.trace.num_launches == large.trace.num_launches
        # Traffic scales with the batch.
        assert large.trace.global_bytes == pytest.approx(
            32 * small.trace.global_bytes
        )

    def test_batched_cheaper_than_row_at_a_time(self, rng, device):
        """Launch amortization: per-row simulated cost of the batch is
        below running single-row top-k repeatedly."""
        from repro.bitonic.topk import BitonicTopK

        rows = 256
        matrix = rng.random((rows, 1024)).astype(np.float32)
        batch = batched_topk(matrix, 8, device=device)
        single = BitonicTopK(device).run(matrix[0], 8)
        batch_total = batch.simulated_time(device).total
        singles_total = rows * single.simulated_time(device).total
        assert batch_total < singles_total

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            batched_topk(rng.random(10).astype(np.float32), 2)
        with pytest.raises(InvalidParameterError):
            batched_topk(rng.random((2, 8)).astype(np.float32), 0)
        with pytest.raises(InvalidParameterError):
            batched_topk(rng.random((2, 8)).astype(np.float32), 9)
