"""Tests for out-of-core chunked top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.core.chunked import ChunkedTopK, chunked_topk

SMALL_BUDGET = 64 * 1024  # force many chunks at test sizes


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(100, 5), (10000, 64), (50000, 500)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = chunked_topk(data, k, memory_budget_bytes=SMALL_BUDGET)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(result.values, expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    def test_single_chunk_when_data_fits(self, rng):
        data = rng.random(1000).astype(np.float32)
        result = chunked_topk(data, 10)
        assert result.trace.notes["chunks"] == 1

    def test_topk_spanning_many_chunks(self, rng):
        """The global top-k concentrated in one chunk must still surface."""
        data = rng.random(20000).astype(np.float32)
        data[15000:15100] += 10.0  # all winners in one late chunk
        result = chunked_topk(data, 50, memory_budget_bytes=SMALL_BUDGET)
        assert (result.indices >= 15000).all()
        assert (result.indices < 15100).all()

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_random(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(10, 5000))
        k = int(generator.integers(1, min(n, 200) + 1))
        data = generator.random(n).astype(np.float32)
        result = chunked_topk(data, k, memory_budget_bytes=SMALL_BUDGET)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(result.values, expected)

    def test_works_with_other_algorithms(self, rng):
        data = rng.random(20000).astype(np.float32)
        result = chunked_topk(
            data, 16, algorithm="radix-select", memory_budget_bytes=SMALL_BUDGET
        )
        expected, _ = reference_topk(data, 16)
        assert np.array_equal(result.values, expected)
        assert result.algorithm == "chunked-radix-select"


class TestPipelineTiming:
    def test_plan_for_oversized_input(self, device):
        """2^32 floats (17 GiB) do not fit the 12 GiB card: multiple chunks."""
        runner = ChunkedTopK(device)
        plan = runner.plan(1 << 32, 64, np.dtype(np.float32))
        assert plan.num_chunks >= 2
        assert plan.chunk_elements * 4 <= device.global_memory_size

    def test_overlap_beats_serial(self, rng, device):
        data = rng.random(10000).astype(np.float32)
        overlapped = chunked_topk(
            data, 32, device=device, memory_budget_bytes=SMALL_BUDGET,
            model_n=1 << 32,
        )
        serial = chunked_topk(
            data, 32, device=device, overlap=False,
            memory_budget_bytes=SMALL_BUDGET, model_n=1 << 32,
        )
        assert overlapped.simulated_ms(device) < serial.simulated_ms(device)

    def test_overlap_hides_the_cheaper_stage(self, device):
        """With many chunks, pipeline time approaches
        chunks * max(transfer, compute)."""
        runner = ChunkedTopK(device)
        plan = runner.plan(1 << 33, 64, np.dtype(np.float32))
        assert plan.num_chunks > 2
        ideal = plan.num_chunks * max(
            plan.transfer_seconds_per_chunk, plan.compute_seconds_per_chunk
        )
        assert plan.pipeline_seconds <= ideal * 1.2
        assert plan.overlap_efficiency > 0.8

    def test_transfer_bound_at_pcie_speeds(self, device):
        """PCIe at 12 GB/s is far below the 251 GB/s global bandwidth, so
        the pipeline is transfer-bound and the total approaches
        total_bytes / pcie_bandwidth."""
        runner = ChunkedTopK(device)
        plan = runner.plan(1 << 33, 64, np.dtype(np.float32))
        total_bytes = (1 << 33) * 4
        lower_bound = total_bytes / device.pcie_bandwidth
        assert plan.pipeline_seconds >= lower_bound * 0.99
        assert plan.pipeline_seconds <= lower_bound * 1.3


class TestPlanEdgeCases:
    def test_chunk_never_smaller_than_k(self, device):
        """A chunk must hold at least k elements or the per-chunk top-k is
        ill-defined; tiny budgets clamp up to k."""
        runner = ChunkedTopK(device, memory_budget_bytes=64)
        plan = runner.plan(10000, 100, np.dtype(np.float32))
        assert plan.chunk_elements >= 100

    def test_single_element_chunks_still_correct(self, rng):
        data = rng.random(500).astype(np.float32)
        result = chunked_topk(data, 1, memory_budget_bytes=8)
        assert result.values[0] == data.max()

    def test_double_buffering_halves_the_budget(self, device):
        runner = ChunkedTopK(device, memory_budget_bytes=1 << 20)
        plan = runner.plan(1 << 22, 16, np.dtype(np.float32))
        assert plan.chunk_elements <= (1 << 20) // 2 // 4
