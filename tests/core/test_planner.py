"""Tests for the cost-model-driven planner."""

import numpy as np
import pytest

from repro.core.planner import TopKPlanner
from repro.costmodel.base import BUCKET_KILLER, UNIFORM_UINT
from repro.errors import InvalidParameterError

N = 1 << 29


class TestChoice:
    def test_ranking_is_sorted_ascending_by_cost(self, device):
        choice = TopKPlanner(device).choose(N, 64)
        costs = [cost for _, cost in choice.candidates]
        assert costs == sorted(costs)
        assert choice.algorithm == choice.candidates[0][0]
        assert choice.predicted_ms == pytest.approx(costs[0] * 1e3)

    def test_infeasible_algorithms_excluded(self, device):
        choice = TopKPlanner(device).choose(N, 512)
        names = [name for name, _ in choice.candidates]
        assert "per-thread" not in names

    def test_bitonic_chosen_in_the_mid_range(self, device):
        """The headline regime: k in the hundreds."""
        choice = TopKPlanner(device).choose(N, 256)
        assert choice.algorithm == "bitonic"

    def test_bucket_select_fast_at_k1(self, device):
        """Section 6.2: bucket select terminates after min/max at k = 1."""
        choice = TopKPlanner(device).choose(N, 1)
        assert "bucket-select" in [name for name, _ in choice.candidates[:2]]

    def test_invalid_configuration(self, device):
        planner = TopKPlanner(device)
        with pytest.raises(InvalidParameterError):
            planner.choose(0, 1)
        with pytest.raises(InvalidParameterError):
            planner.choose(10, 20)


class TestCrossover:
    def test_float_crossover_in_the_hundreds_to_2048(self, device):
        """Bitonic wins small k; radix select overtakes at large k.  The
        paper measures the flip at 256; our simulated kernels put it within
        a factor of four of that (see EXPERIMENTS.md)."""
        crossover = TopKPlanner(device).crossover_k(N)
        assert crossover is None or 256 <= crossover <= 2048

    def test_uint_crossover_earlier_than_floats(self, device):
        """Figure 11b: radix select is stronger on uniform uints, so the
        crossover moves to smaller k."""
        planner = TopKPlanner(device)
        uint_crossover = planner.crossover_k(N, np.dtype(np.uint32), UNIFORM_UINT)
        float_crossover = planner.crossover_k(N) or 4096
        assert uint_crossover is not None
        assert uint_crossover <= float_crossover
        assert 64 <= uint_crossover <= 512

    def test_no_crossover_on_bucket_killer(self, device):
        """Figure 12b: against the adversarial input, radix select never
        beats bitonic at any k."""
        crossover = TopKPlanner(device).crossover_k(
            N, np.dtype(np.float32), BUCKET_KILLER
        )
        assert crossover is None


class TestCrossoverRegressions:
    """Pre-fix ``crossover_k`` costed bitonic before checking support (so an
    unsupported configuration could raise) and returned the raw doubling
    ``k`` even though ``effective_k = min(k, n)`` was what it compared."""

    def test_unsupported_bitonic_is_the_crossover_not_an_error(
        self, device, monkeypatch
    ):
        """Support must be consulted *before* predict_seconds: a model whose
        prediction raises on unsupported configurations (here: past k = 64)
        must yield a crossover, not an error."""
        from repro.costmodel.bitonic_model import BitonicModel
        from repro.errors import ResourceExhaustedError

        def supports(self, n, k, dtype):
            return k <= 64

        original = BitonicModel.predict_seconds

        def predict(self, n, k, dtype=np.dtype(np.float32), profile=None):
            if k > 64:
                raise ResourceExhaustedError(
                    f"bitonic cannot cost unsupported k = {k}"
                )
            return original(self, n, k, dtype)

        monkeypatch.setattr(BitonicModel, "supports", supports)
        monkeypatch.setattr(BitonicModel, "predict_seconds", predict)
        crossover = TopKPlanner(device).crossover_k(N)
        # Bitonic wins the supported range on floats, so the first
        # unsupported k (128) is the crossover.
        assert crossover == 128

    def test_crossover_never_exceeds_n(self, device, monkeypatch):
        """With n = 3 the doubling sequence reaches the win condition at
        k = 4 but compares effective_k = 3; the *effective* value must be
        returned, never a k that exceeds n."""
        from repro.costmodel.bitonic_model import BitonicModel
        from repro.costmodel.radik_model import RadiKModel
        from repro.costmodel.radix_model import RadixSelectModel

        monkeypatch.setattr(
            BitonicModel, "predict_seconds", lambda self, n, k, *a, **kw: 1.0
        )
        # Both radix-family models must be stubbed: crossover_k takes the
        # family minimum, so an unpatched member would decide the outcome.
        for model in (RadixSelectModel, RadiKModel):
            monkeypatch.setattr(
                model,
                "predict_seconds",
                lambda self, n, k, *a, **kw: 0.0 if k >= 3 else 10.0,
            )
        crossover = TopKPlanner(device).crossover_k(3)
        assert crossover == 3  # pre-fix: returned 4 > n

    def test_crossover_on_tiny_inputs_is_valid(self, device):
        """Whatever the models decide at tiny n, the returned k must be a
        legal top-k parameter for that n."""
        for n in (1, 2, 3, 5, 7):
            crossover = TopKPlanner(device).crossover_k(n)
            assert crossover is None or 1 <= crossover <= n
