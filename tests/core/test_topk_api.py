"""Tests for the public topk / bottomk API."""

import numpy as np
import pytest

from repro import bottomk, topk
from repro.algorithms.base import reference_topk
from repro.algorithms.registry import EVALUATED_ALGORITHMS
from repro.errors import InvalidParameterError


class TestTopK:
    def test_auto_matches_reference(self, rng):
        data = rng.random(10000).astype(np.float32)
        result = topk(data, 32)
        expected, _ = reference_topk(data, 32)
        assert np.array_equal(result.values, expected)
        assert result.algorithm in EVALUATED_ALGORITHMS

    @pytest.mark.parametrize("algorithm", EVALUATED_ALGORITHMS)
    def test_every_algorithm_by_name(self, algorithm, rng):
        data = rng.random(5000).astype(np.float32)
        result = topk(data, 16, algorithm=algorithm)
        expected, _ = reference_topk(data, 16)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert result.algorithm == algorithm

    def test_accepts_lists(self):
        result = topk(np.array([3.0, 1.0, 4.0, 1.0, 5.0], dtype=np.float32), 2)
        assert result.values.tolist() == [5.0, 4.0]

    def test_unknown_algorithm(self, rng):
        with pytest.raises(InvalidParameterError):
            topk(rng.random(16).astype(np.float32), 2, algorithm="bogus")

    def test_invalid_k(self, rng):
        with pytest.raises(InvalidParameterError):
            topk(rng.random(16).astype(np.float32), 0)

    def test_model_n_flows_into_result(self, rng):
        data = rng.random(1024).astype(np.float32)
        result = topk(data, 8, algorithm="bitonic", model_n=1 << 26)
        assert result.model_n == 1 << 26


class TestBottomK:
    def test_floats(self, rng):
        data = rng.random(5000).astype(np.float32)
        result = bottomk(data, 10)
        assert np.array_equal(np.sort(result.values), np.sort(data)[:10])
        assert np.array_equal(np.sort(data[result.indices]), np.sort(data)[:10])

    def test_signed_integers_with_extremes(self):
        data = np.array(
            [np.iinfo(np.int32).min, -5, 0, 7, np.iinfo(np.int32).max],
            dtype=np.int32,
        )
        result = bottomk(data, 2, algorithm="sort")
        assert set(result.values.tolist()) == {np.iinfo(np.int32).min, -5}

    def test_unsigned_integers(self, rng):
        data = rng.integers(0, 2**32, 3000, dtype=np.uint32)
        result = bottomk(data, 25, algorithm="radix-select")
        assert np.array_equal(np.sort(result.values), np.sort(data)[:25])

    def test_largest_flag_equivalence(self, rng):
        data = rng.random(2000).astype(np.float32)
        via_flag = topk(data, 5, algorithm="bitonic", largest=False)
        via_helper = bottomk(data, 5, algorithm="bitonic")
        assert np.array_equal(
            np.sort(via_flag.values), np.sort(via_helper.values)
        )
