"""Tests for the fused filter+top-k API and percentile helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtered import percentile, topk_where
from repro.errors import InvalidParameterError


class TestTopKWhere:
    def test_matches_masked_reference(self, rng):
        values = rng.random(10000).astype(np.float32)
        mask = values < 0.5
        result = topk_where(values, mask, 20)
        expected = np.sort(values[mask])[::-1][:20]
        assert np.array_equal(result.values, expected)
        assert mask[result.indices].all()

    def test_k_larger_than_selection(self, rng):
        values = rng.random(100).astype(np.float32)
        mask = np.zeros(100, dtype=bool)
        mask[:5] = True
        result = topk_where(values, mask, 50)
        assert len(result.values) == 5
        assert np.array_equal(np.sort(result.indices), np.arange(5))

    def test_empty_selection(self, rng):
        values = rng.random(64).astype(np.float32)
        result = topk_where(values, np.zeros(64, dtype=bool), 5)
        assert len(result.values) == 0
        assert len(result.indices) == 0

    def test_fused_trace_reads_base_once(self, rng, device):
        values = rng.random(1 << 14).astype(np.float32)
        mask = values > 0.9
        result = topk_where(values, mask, 32, device=device, model_n=1 << 29)
        first = result.trace.kernels[0]
        assert first.name == "FusedSortReducer"
        assert first.global_bytes_read == pytest.approx((1 << 29) * 4)
        assert result.trace.notes["selectivity"] == pytest.approx(0.1, abs=0.02)

    def test_cheaper_than_materialize_then_topk(self, rng, device):
        """The Section 5 claim as an API property: fusing beats filtering
        to an intermediate and reducing it."""
        from repro.bitonic.topk import BitonicTopK

        values = rng.random(1 << 14).astype(np.float32)
        mask = np.ones(1 << 14, dtype=bool)
        fused = topk_where(values, mask, 32, device=device, model_n=1 << 29)
        separate_topk = BitonicTopK(device).run(values, 32, model_n=1 << 29)
        # Separate = filter pass (read+write) + top-k read; fused folds the
        # write+read round trip away.
        separate_total = (
            separate_topk.simulated_time(device).total
            + 2 * (1 << 29) * 4 / (device.global_bandwidth * device.global_efficiency)
        )
        assert fused.simulated_time(device).total < separate_total

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(1, 3000))
        values = generator.random(n).astype(np.float32)
        mask = generator.random(n) < 0.3
        k = int(generator.integers(1, 100))
        result = topk_where(values, mask, k)
        expected = np.sort(values[mask])[::-1][: min(k, mask.sum())]
        assert np.array_equal(result.values, expected)

    def test_validation(self, rng):
        values = rng.random(16).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            topk_where(values, np.ones(8, dtype=bool), 2)
        with pytest.raises(InvalidParameterError):
            topk_where(values, np.ones(16, dtype=np.int32), 2)
        with pytest.raises(InvalidParameterError):
            topk_where(values, np.ones(16, dtype=bool), 0)


class TestPercentile:
    def test_matches_numpy_nearest_rank(self, rng):
        values = rng.random(10000).astype(np.float32)
        for q in (50.0, 90.0, 99.0, 100.0):
            rank = max(1, int(np.ceil((1 - q / 100) * len(values))))
            expected = np.sort(values)[::-1][rank - 1]
            assert percentile(values, q) == pytest.approx(float(expected))

    def test_p100_is_the_minimum_rank_one_value(self, rng):
        values = rng.random(100).astype(np.float32)
        assert percentile(values, 100.0) == values.max()

    def test_small_q_approaches_the_minimum(self, rng):
        values = rng.random(100).astype(np.float32)
        assert percentile(values, 0.5) == values.min()

    def test_validation(self, rng):
        values = rng.random(10).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            percentile(values, 0.0)
        with pytest.raises(InvalidParameterError):
            percentile(values, 101.0)
        with pytest.raises(InvalidParameterError):
            percentile(np.empty(0, dtype=np.float32), 50.0)
