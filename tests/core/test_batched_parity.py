"""Row-by-row parity between batched and single-row bitonic top-k.

The batched kernel runs the identical compare-exchange step sequence as
:class:`~repro.bitonic.topk.BitonicTopK`, just elementwise along the row
axis, so every row of a batched result must be *bit-equal* (values and
indices) to running the single-row algorithm on that row — including the
hazard cases: non-power-of-two row lengths (padding present), payloads
tying with the padding sentinel, NaN/±inf floats, and k == n.

The sentinel tests are regressions for the padded-index leak: before the
fix, a padded column index >= n could appear in ``TopKResult.indices``
whenever the padding value tied with real data (0 for unsigned dtypes,
real -inf floats).
"""

import numpy as np
import pytest

from repro.algorithms.base import SUPPORTED_DTYPES
from repro.bitonic.topk import BitonicTopK
from repro.core.batched import batched_topk
from repro.errors import InvalidParameterError


def assert_rows_match_single(matrix, k):
    """Every row of the batched result equals the single-row result."""
    batched = batched_topk(matrix.copy(), k)
    n = matrix.shape[1]
    assert (batched.indices >= 0).all()
    assert (batched.indices < n).all(), "padded index leaked into the result"
    for row in range(matrix.shape[0]):
        single = BitonicTopK().run(matrix[row].copy(), k)
        assert np.array_equal(
            batched.values[row], single.values, equal_nan=True
        ), f"row {row}: values diverge from the single-row kernel"
        assert np.array_equal(
            batched.indices[row], single.indices
        ), f"row {row}: indices diverge from the single-row kernel"


class TestRowParity:
    @pytest.mark.parametrize("n", [5, 37, 100, 777])
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_non_power_of_two_rows(self, n, k, rng):
        matrix = rng.random((6, n)).astype(np.float32)
        assert_rows_match_single(matrix, min(k, n))

    @pytest.mark.parametrize("n", [5, 24, 100])
    def test_k_equals_n(self, n, rng):
        matrix = rng.random((4, n)).astype(np.float32)
        assert_rows_match_single(matrix, n)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_every_supported_dtype(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            matrix = (rng.random((3, 45)) * 100).astype(dtype)
        else:
            matrix = rng.integers(0, 50, (3, 45)).astype(dtype)
        assert_rows_match_single(matrix, 7)


class TestSentinelValues:
    """Payloads equal to the padding sentinel (the leak regression)."""

    def test_unsigned_zeros_with_padding(self):
        # sentinel = iinfo(uint32).min == 0 ties with the real zeros; with
        # n = 5 padded to 8 the pre-fix kernel returned indices >= 5.
        matrix = np.array([[5, 0, 3, 0, 7], [0, 0, 0, 1, 0]], dtype=np.uint32)
        result = batched_topk(matrix, 5)
        assert (result.indices < 5).all()
        assert_rows_match_single(matrix, 5)

    def test_unsigned_all_zero_rows(self):
        matrix = np.zeros((3, 11), dtype=np.uint32)
        result = batched_topk(matrix, 11)
        for row in range(3):
            assert sorted(result.indices[row].tolist()) == list(range(11))
        assert_rows_match_single(matrix, 11)

    def test_signed_minimum_values(self):
        low = np.iinfo(np.int32).min
        matrix = np.array([[low, 3, low, 2, 1]], dtype=np.int32)
        assert_rows_match_single(matrix, 5)

    def test_real_negative_infinity(self):
        matrix = np.array(
            [[1.0, -np.inf, 2.0], [-np.inf, -np.inf, 0.5]], dtype=np.float32
        )
        result = batched_topk(matrix, 3)
        assert (result.indices < 3).all()
        assert_rows_match_single(matrix, 3)

    def test_indices_point_at_matching_values(self, rng):
        matrix = rng.integers(0, 3, (8, 21)).astype(np.uint32)
        result = batched_topk(matrix, 21)
        for row in range(8):
            assert np.array_equal(
                matrix[row][result.indices[row]], result.values[row]
            )
            assert len(set(result.indices[row].tolist())) == 21


class TestSpecialFloats:
    def test_positive_infinity(self, rng):
        matrix = rng.random((4, 50)).astype(np.float32)
        matrix[:, 13] = np.inf
        result = batched_topk(matrix, 5)
        assert (result.values[:, 0] == np.inf).all()
        assert (result.indices[:, 0] == 13).all()
        assert_rows_match_single(matrix, 5)

    def test_nan_rows_match_single_kernel(self, rng):
        # NaN ordering is undefined (comparison networks propagate them
        # unpredictably, see test_special_values.py) but batched and
        # single-row must propagate them *identically*.
        matrix = rng.random((5, 29)).astype(np.float32)
        matrix[0, 3] = np.nan
        matrix[1, :7] = np.nan
        matrix[2, -1] = np.nan
        matrix[3, 10] = -np.inf
        matrix[3, 11] = np.nan
        assert_rows_match_single(matrix, 6)

    def test_nan_with_padding_and_k_equals_n(self, rng):
        matrix = rng.random((3, 13)).astype(np.float32)
        matrix[1, 4] = np.nan
        matrix[2, 0] = np.nan
        matrix[2, 1] = -np.inf
        assert_rows_match_single(matrix, 13)


class TestDtypeValidation:
    """bool/float16 must raise the engine's typed error, not a raw numpy
    failure from inside ``np.iinfo`` (the pre-fix behaviour)."""

    @pytest.mark.parametrize("dtype", [np.bool_, np.float16])
    def test_unsupported_dtype_is_typed(self, dtype):
        matrix = np.ones((2, 8), dtype=dtype)
        with pytest.raises(InvalidParameterError) as excinfo:
            batched_topk(matrix, 2)
        message = str(excinfo.value)
        for supported in SUPPORTED_DTYPES:
            assert supported.__name__ in message

    def test_supported_dtypes_still_accepted(self, rng):
        for dtype in SUPPORTED_DTYPES:
            if np.dtype(dtype).kind == "f":
                matrix = rng.random((2, 8)).astype(dtype)
            else:
                matrix = rng.integers(0, 9, (2, 8)).astype(dtype)
            result = batched_topk(matrix, 2)
            assert result.values.shape == (2, 2)
