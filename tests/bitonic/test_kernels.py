"""Tests for the fused-kernel cost accounting."""

import pytest

from repro.bitonic.kernels import (
    build_trace,
    kernel_block_resources,
    memory_overhead_bytes,
)
from repro.bitonic.optimizations import (
    ABLATION_LADDER,
    FULL,
    NAIVE,
    OptimizationFlags,
)
from repro.errors import InvalidParameterError
from repro.gpu.timing import trace_time

N = 1 << 29


class TestTraceStructure:
    def test_fused_kernel_names(self, device):
        trace = build_trace(N, 32, 4, FULL, device)
        names = [kernel.name for kernel in trace.kernels]
        assert names[0] == "SortReducer"
        assert all(name.startswith("BitonicReducer") for name in names[1:])

    def test_kernel_count_matches_reduction_depth(self, device):
        # 2^29 -> 32 is 24 halvings; B = 16 gives 4 per kernel -> 6 kernels.
        trace = build_trace(N, 32, 4, FULL, device)
        assert trace.num_launches == 6

    def test_each_kernel_reduces_by_b(self, device):
        trace = build_trace(1 << 20, 16, 4, FULL, device)
        reads = [kernel.global_bytes_read for kernel in trace.kernels]
        for previous, current in zip(reads, reads[1:]):
            assert current == pytest.approx(previous / 16)

    def test_sortreducer_writes_one_sixteenth(self, device):
        trace = build_trace(N, 32, 4, FULL, device)
        first = trace.kernels[0]
        assert first.global_bytes_written == pytest.approx(
            first.global_bytes_read / 16
        )

    def test_naive_launches_one_kernel_per_step(self, device):
        trace = build_trace(1 << 12, 8, 4, NAIVE, device)
        assert trace.num_launches > 30
        assert all(kernel.shared_bytes == 0 for kernel in trace.kernels)

    def test_k_at_least_n_degenerates(self, device):
        trace = build_trace(1 << 10, 1 << 10, 4, FULL, device)
        assert trace.num_launches == 1

    def test_invalid_arguments(self, device):
        with pytest.raises(InvalidParameterError):
            build_trace(0, 8, 4, FULL, device)
        with pytest.raises(InvalidParameterError):
            build_trace(1024, 0, 4, FULL, device)


class TestAblationLadder:
    def test_strictly_decreasing_runtimes(self, device):
        times = [
            trace_time(build_trace(N, 32, 4, flags, device), device).total
            for _, flags in ABLATION_LADDER
        ]
        assert times == sorted(times, reverse=True)

    def test_full_optimization_within_2x_of_paper(self, device):
        from repro.bitonic.optimizations import PAPER_LADDER_MS

        for (name, flags), paper_ms in zip(ABLATION_LADDER, PAPER_LADDER_MS):
            model_ms = trace_time(
                build_trace(N, 32, 4, flags, device), device
            ).total_ms
            assert model_ms == pytest.approx(paper_ms, rel=1.0), name

    def test_shared_memory_eliminates_most_global_traffic(self, device):
        naive = build_trace(N, 32, 4, NAIVE, device)
        shared = build_trace(N, 32, 4, ABLATION_LADDER[1][1], device)
        assert shared.global_bytes < naive.global_bytes / 4

    def test_fusion_cuts_launches(self, device):
        shared = build_trace(N, 32, 4, ABLATION_LADDER[1][1], device)
        fused = build_trace(N, 32, 4, ABLATION_LADDER[2][1], device)
        assert fused.num_launches < shared.num_launches / 4


class TestElementsPerThread:
    def test_b16_beats_b2(self, device):
        slow = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(2), device), device
        ).total
        fast = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(16), device), device
        ).total
        assert fast < slow / 2

    def test_b64_is_a_detriment(self, device):
        """Figure 8: occupancy loss makes B = 64 slower than B = 16."""
        b16 = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(16), device), device
        ).total
        b64 = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(64), device), device
        ).total
        assert b64 > b16

    def test_b32_roughly_flat(self, device):
        b16 = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(16), device), device
        ).total
        b32 = trace_time(
            build_trace(N, 32, 4, FULL.with_elements_per_thread(32), device), device
        ).total
        assert b32 == pytest.approx(b16, rel=0.1)


class TestBlockResources:
    def test_default_block_is_256_threads(self, device):
        resources = kernel_block_resources(FULL, 4, device)
        assert resources.threads == 256

    def test_b64_shrinks_the_block(self, device):
        resources = kernel_block_resources(
            FULL.with_elements_per_thread(64), 4, device
        )
        assert resources.threads < 256
        assert resources.shared_memory_bytes <= device.shared_memory_per_block

    def test_padding_inflates_shared_usage(self, device):
        padded = kernel_block_resources(FULL, 4, device)
        unpadded = kernel_block_resources(
            OptimizationFlags(
                padding=False,
                chunk_permutation=False,
                partition_reassignment=False,
            ),
            4,
            device,
        )
        assert padded.shared_memory_bytes > unpadded.shared_memory_bytes


class TestMemoryOverhead:
    def test_fused_buffer_is_n_over_b(self):
        assert memory_overhead_bytes(1 << 20, 4, FULL) == (1 << 20) // 16 * 4

    def test_unfused_needs_full_scratch(self):
        assert memory_overhead_bytes(1 << 20, 4, NAIVE) == (1 << 20) * 4

    def test_far_below_sort_scratch(self):
        n = 1 << 29
        assert memory_overhead_bytes(n, 4, FULL) < n * 4 / 8
