"""End-to-end tests for the BitonicTopK algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.bitonic.optimizations import ABLATION_LADDER
from repro.bitonic.topk import BitonicTopK
from repro.data.distributions import bucket_killer, increasing, uniform_floats
from repro.errors import InvalidParameterError


class TestCorrectness:
    @pytest.mark.parametrize("n", [5, 17, 100, 1000, 4096, 100000])
    @pytest.mark.parametrize("k", [1, 3, 32, 100])
    def test_matches_reference_on_uniform_floats(self, n, k, rng):
        if k > n:
            pytest.skip("k exceeds n")
        data = rng.random(n).astype(np.float32)
        result = BitonicTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(result.values, expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_all_dtypes(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = (rng.standard_normal(777) * 100).astype(dtype)
        else:
            info = np.iinfo(dtype)
            data = rng.integers(
                max(info.min, -(2**48)), min(info.max, 2**48), 777
            ).astype(dtype)
        result = BitonicTopK().run(data, 25)
        expected, _ = reference_topk(data, 25)
        assert np.array_equal(result.values, expected)

    def test_non_power_of_two_k(self, rng):
        data = rng.random(1000).astype(np.float32)
        result = BitonicTopK().run(data, 77)
        expected, _ = reference_topk(data, 77)
        assert np.array_equal(result.values, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n=st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_sizes(self, seed, n):
        generator = np.random.default_rng(seed)
        k = int(generator.integers(1, n + 1))
        data = generator.random(n).astype(np.float32)
        result = BitonicTopK().run(data, min(k, 2048))
        expected, _ = reference_topk(data, min(k, 2048))
        assert np.array_equal(result.values, expected)


class TestSentinelHandling:
    def test_integer_minimum_values_in_data(self):
        """Padding sentinels equal the dtype minimum; real rows holding that
        value must still be reported with valid indices."""
        data = np.full(100, np.iinfo(np.int32).min, dtype=np.int32)
        data[:3] = [5, 7, 9]
        result = BitonicTopK().run(data, 10)
        assert result.values[0] == 9
        assert (result.indices >= 0).all()
        assert (result.indices < 100).all()
        assert len(np.unique(result.indices)) == 10

    def test_all_equal_input(self):
        data = np.zeros(50, dtype=np.float32)
        result = BitonicTopK().run(data, 8)
        assert np.array_equal(result.values, np.zeros(8, dtype=np.float32))
        assert len(np.unique(result.indices)) == 8


class TestRobustness:
    def test_trace_is_distribution_independent(self, device):
        """Section 6.4: bitonic performs precisely the same operations on
        every input distribution."""
        k = 64
        times = []
        for generator in (uniform_floats, increasing, bucket_killer):
            data = generator(1 << 14)
            result = BitonicTopK(device).run(data, k, model_n=1 << 29)
            times.append(result.simulated_time(device).total)
        assert times[0] == pytest.approx(times[1])
        assert times[0] == pytest.approx(times[2])


class TestLimits:
    def test_k_above_limit_rejected(self, rng):
        data = rng.random(10000).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            BitonicTopK().run(data, 4096)

    def test_supports(self, device):
        algorithm = BitonicTopK(device)
        assert algorithm.supports(1 << 20, 2048, np.dtype(np.float32))
        assert not algorithm.supports(1 << 20, 4096, np.dtype(np.float32))

    def test_memory_overhead_is_n_over_b(self, device):
        algorithm = BitonicTopK(device)
        assert algorithm.memory_overhead(1 << 20, np.float32) == (1 << 20) // 16 * 4


class TestOptimizationConfigurations:
    @pytest.mark.parametrize("name,flags", ABLATION_LADDER)
    def test_every_ladder_rung_is_functionally_correct(self, name, flags, rng):
        data = rng.random(4096).astype(np.float32)
        result = BitonicTopK(flags=flags).run(data, 32)
        expected, _ = reference_topk(data, 32)
        assert np.array_equal(result.values, expected), name

    def test_trace_records_network_k(self, rng):
        data = rng.random(1024).astype(np.float32)
        result = BitonicTopK().run(data, 48)
        assert result.trace.notes["network_k"] == 64
