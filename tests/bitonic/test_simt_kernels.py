"""Validation of the micro SIMT kernels against oracles and models."""

import numpy as np
import pytest

from repro.bitonic.simt_kernels import block_topk_kernel, per_thread_heap_kernel
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import ThreadBlock


def _run_block_topk(data, k, threads):
    n = len(data)
    memory = GlobalMemory(list(data) + [0.0] * k)
    block = ThreadBlock(threads, shared_words=n, global_memory=memory)
    block.run(lambda ctx: block_topk_kernel(ctx, n, k))
    return np.array(memory.snapshot()[n:]), block


class TestBlockTopKKernel:
    @pytest.mark.parametrize("n,k,threads", [(64, 4, 32), (128, 8, 64), (256, 16, 128)])
    def test_matches_sort_oracle(self, n, k, threads, rng):
        data = rng.random(n).astype(np.float64)
        result, _ = _run_block_topk(data, k, threads)
        expected = np.sort(data)[::-1][:k]
        assert np.allclose(np.sort(result)[::-1], expected)

    def test_matches_vectorized_operators(self, rng):
        from repro.bitonic.operators import reduce_topk

        data = rng.random(128)
        micro, _ = _run_block_topk(data, 8, 64)
        vectorized, _ = reduce_topk(data.astype(np.float32).copy(), 8)
        assert np.allclose(np.sort(micro)[::-1], vectorized, rtol=1e-6)

    def test_duplicates(self, rng):
        data = rng.integers(0, 3, 64).astype(np.float64)
        result, _ = _run_block_topk(data, 8, 32)
        assert np.allclose(np.sort(result)[::-1], np.sort(data)[::-1][:8])

    def test_global_loads_are_coalesced(self, rng):
        """The strided load order must coalesce: n reads over 32-thread
        warps of consecutive addresses -> n/8 transactions for 4-byte words."""
        data = rng.random(256)
        _, block = _run_block_topk(data, 8, 128)
        stats = block.global_memory.stats
        # 256 loads + 8 stores; loads coalesce 8:1 (32-byte segments).
        assert stats.transactions <= (256 + 8) / 8 + 4

    def test_shared_conflicts_bounded_by_single_step_model(self, rng):
        """Every step is an uncombined compare-exchange: the audit must not
        exceed the worst single-step factor (2.0) on average."""
        data = rng.random(256)
        _, block = _run_block_topk(data, 8, 128)
        assert block.shared.stats.average_conflict_factor <= 2.0


class TestPerThreadHeapKernel:
    def test_matches_reference_topk(self, rng):
        n, k, threads = 128, 4, 8
        data = rng.random(n)
        memory = GlobalMemory(list(data) + [0.0] * (threads * k))
        block = ThreadBlock(
            threads, shared_words=threads * k, global_memory=memory
        )
        block.run(lambda ctx: per_thread_heap_kernel(ctx, n, k))
        candidates = np.array(memory.snapshot()[n:])
        expected = np.sort(data)[::-1][:k]
        assert np.allclose(np.sort(candidates)[::-1][:k], expected)

    def test_contiguous_buffers_conflict(self, rng):
        """The naive per-thread layout (thread t owns words [t*k, t*k+k))
        produces bank conflicts — the audit must see them, motivating the
        interleaved layout of real implementations."""
        n, k, threads = 256, 8, 32
        data = rng.random(n)
        memory = GlobalMemory(list(data) + [0.0] * (threads * k))
        block = ThreadBlock(
            threads, shared_words=threads * k, global_memory=memory
        )
        block.run(lambda ctx: per_thread_heap_kernel(ctx, n, k))
        assert block.shared.stats.average_conflict_factor > 1.5
