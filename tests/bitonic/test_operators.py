"""Tests for the vectorized bitonic operators, including properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitonic.network import Step
from repro.bitonic.operators import (
    apply_step,
    local_sort,
    merge,
    rebuild,
    reduce_topk,
)
from repro.errors import InvalidParameterError


def _run_directions(values: np.ndarray, k: int) -> list[str]:
    directions = []
    for run in values.reshape(-1, k):
        if np.all(np.diff(run) >= 0):
            directions.append("asc")
        elif np.all(np.diff(run) <= 0):
            directions.append("desc")
        else:
            directions.append("unsorted")
    return directions


class TestApplyStep:
    def test_single_pair_descending(self):
        values = np.array([1.0, 2.0])
        apply_step(values, Step(inc=1, direction_period=4))
        # Direction period 4 bit unset at index 0 -> reverse -> ascending.
        assert values.tolist() == [1.0, 2.0]

    def test_exchange_happens(self):
        values = np.array([2.0, 1.0])
        apply_step(values, Step(inc=1, direction_period=4))
        assert values.tolist() == [1.0, 2.0]

    def test_length_must_match_block(self):
        with pytest.raises(InvalidParameterError):
            apply_step(np.arange(6, dtype=np.float32), Step(inc=4, direction_period=8))

    def test_payload_follows_keys(self):
        values = np.array([5.0, 1.0, 2.0, 9.0])
        payload = np.array([0, 1, 2, 3])
        apply_step(values, Step(inc=1, direction_period=2), payload)
        for value, tag in zip(values, payload):
            assert value == [5.0, 1.0, 2.0, 9.0][tag]


class TestLocalSort:
    def test_alternating_run_directions(self, rng):
        values = rng.random(64).astype(np.float32)
        local_sort(values, 8)
        assert _run_directions(values, 8) == ["asc", "desc"] * 4

    def test_multiset_preserved(self, rng):
        values = rng.random(128).astype(np.float32)
        original = np.sort(values.copy())
        local_sort(values, 16)
        assert np.array_equal(np.sort(values), original)

    @given(
        k_exp=st.integers(min_value=1, max_value=5),
        blocks=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_runs_are_sorted_for_any_input(self, k_exp, blocks, seed):
        k = 1 << k_exp
        values = np.random.default_rng(seed).random(2 * k * blocks).astype(np.float32)
        local_sort(values, k)
        assert "unsorted" not in _run_directions(values, k)


class TestMerge:
    def test_keeps_the_pairwise_top_k(self, rng):
        values = rng.random(32).astype(np.float32)
        local_sort(values, 8)
        merged, _ = merge(values, 8)
        for pair_index in range(2):
            pair = np.sort(values[pair_index * 16 : (pair_index + 1) * 16])[::-1]
            kept = np.sort(merged[pair_index * 8 : (pair_index + 1) * 8])[::-1]
            assert np.array_equal(kept, pair[:8])

    def test_merged_sequences_are_bitonic(self, rng):
        """The key insight of Section 3.2: the survivors form a bitonic
        sequence (at most one direction change when rotated)."""
        values = rng.random(64).astype(np.float32)
        local_sort(values, 16)
        merged, _ = merge(values, 16)
        for sequence in merged.reshape(-1, 16):
            signs = np.sign(np.diff(sequence))
            changes = np.count_nonzero(np.diff(signs[signs != 0]))
            assert changes <= 1

    def test_length_validation(self):
        with pytest.raises(InvalidParameterError):
            merge(np.arange(12, dtype=np.float32), 8)

    def test_payload_tracks_survivors(self, rng):
        values = rng.random(16).astype(np.float32)
        payload = np.arange(16)
        local_sort(values, 4, payload)
        merged, merged_payload = merge(values, 4, payload)
        assert np.array_equal(values[np.sort(merged_payload)],
                              values[np.isin(np.arange(16), merged_payload)])


class TestRebuild:
    def test_restores_alternating_runs(self, rng):
        values = rng.random(64).astype(np.float32)
        local_sort(values, 8)
        merged, _ = merge(values, 8)
        rebuild(merged, 8)
        assert "unsorted" not in _run_directions(merged, 8)


class TestReduceTopK:
    @given(
        n_exp=st.integers(min_value=1, max_value=12),
        k_exp=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sort_oracle(self, n_exp, k_exp, seed):
        n = 1 << n_exp
        k = 1 << min(k_exp, n_exp)
        values = np.random.default_rng(seed).random(n).astype(np.float32)
        result, _ = reduce_topk(values.copy(), k)
        assert np.array_equal(result, np.sort(values)[::-1][:k])

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        low=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_handles_heavy_duplicates(self, seed, low):
        values = (
            np.random.default_rng(seed).integers(low, low + 3, 256).astype(np.float32)
        )
        result, _ = reduce_topk(values.copy(), 16)
        assert np.array_equal(result, np.sort(values)[::-1][:16])

    def test_payload_indices_point_to_topk_rows(self, rng):
        values = rng.random(512).astype(np.float32)
        payload = np.arange(512, dtype=np.int64)
        result, result_payload = reduce_topk(values.copy(), 32, payload.copy())
        assert np.array_equal(values[result_payload], result)

    def test_k_equals_n_returns_descending_sort(self, rng):
        values = rng.random(64).astype(np.float32)
        result, _ = reduce_topk(values.copy(), 64)
        assert np.array_equal(result, np.sort(values)[::-1])

    def test_k_one_is_the_maximum(self, rng):
        values = rng.random(256).astype(np.float32)
        result, _ = reduce_topk(values.copy(), 1)
        assert result[0] == values.max()

    def test_non_power_of_two_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            reduce_topk(np.arange(100, dtype=np.float32), 4)

    def test_k_above_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            reduce_topk(np.arange(8, dtype=np.float32), 16)
