"""Tests for the combined-step round planner."""

import pytest

from repro.bitonic.network import local_sort_steps, rebuild_steps
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.bitonic.plan import plan_rounds, rounds_raw_words, rounds_traffic_words

UNCOMBINED = OptimizationFlags(
    combined_steps=False,
    padding=False,
    chunk_permutation=False,
    partition_reassignment=False,
    elements_per_thread=8,
)
COMBINED_UNPADDED = OptimizationFlags(
    padding=False,
    chunk_permutation=False,
    partition_reassignment=False,
    elements_per_thread=8,
)
PADDED = OptimizationFlags(
    chunk_permutation=False,
    partition_reassignment=False,
    elements_per_thread=16,
)


class TestUncombined:
    def test_one_round_per_step(self):
        steps = local_sort_steps(32)
        rounds = plan_rounds(steps, UNCOMBINED)
        assert len(rounds) == len(steps)
        assert all(round_.num_steps == 1 for round_ in rounds)

    def test_empty_steps(self):
        assert plan_rounds([], FULL) == []


class TestCombined:
    def test_rounds_cover_all_steps_in_order(self):
        steps = local_sort_steps(64)
        rounds = plan_rounds(steps, PADDED)
        flattened = [step for round_ in rounds for step in round_.steps]
        assert flattened == steps

    def test_window_respects_capacity(self):
        rounds = plan_rounds(local_sort_steps(256), PADDED)
        for round_ in rounds:
            distinct_bits = {step.distance_bit for step in round_.steps}
            assert len(distinct_bits) <= 4

    def test_padding_enables_fewer_rounds(self):
        steps = local_sort_steps(32)
        padded = plan_rounds(steps, PADDED)
        uncombined = plan_rounds(steps, UNCOMBINED)
        assert len(padded) < len(uncombined) / 2

    def test_local_sort_32_compacts_to_three_rounds(self):
        # 15 steps -> [10 steps bits 0-3][16,8,4,2][1] with a 4-bit window.
        rounds = plan_rounds(local_sort_steps(32), PADDED)
        assert [round_.num_steps for round_ in rounds] == [10, 4, 1]

    def test_unpadded_combining_never_costs_more_than_singles(self):
        for k in (8, 32, 128):
            steps = local_sort_steps(k)
            combined = rounds_traffic_words(plan_rounds(steps, COMBINED_UNPADDED))
            singles = rounds_traffic_words(plan_rounds(steps, UNCOMBINED))
            assert combined <= singles


class TestConflictFactors:
    def test_full_optimization_is_conflict_free_for_small_k(self):
        # Section 4.3: chunk permutation removes all remaining local-sort
        # conflicts for k <= 256.
        for k in (8, 32, 256):
            for steps in (local_sort_steps(k), rebuild_steps(k)):
                rounds = plan_rounds(steps, FULL)
                assert all(round_.conflict_factor == 1.0 for round_ in rounds), k

    def test_padding_alone_leaves_some_conflicts(self):
        rounds = plan_rounds(local_sort_steps(32), PADDED)
        assert any(round_.conflict_factor > 1.0 for round_ in rounds)


class TestTrafficAccounting:
    def test_raw_words_two_per_round(self):
        rounds = plan_rounds(local_sort_steps(32), PADDED)
        assert rounds_raw_words(rounds) == pytest.approx(2.0 * len(rounds))

    def test_weighted_at_least_raw(self):
        for flags in (UNCOMBINED, COMBINED_UNPADDED, PADDED, FULL):
            rounds = plan_rounds(local_sort_steps(64), flags)
            assert rounds_traffic_words(rounds) >= rounds_raw_words(rounds) - 1e-9

    def test_optimization_ladder_monotone_traffic(self):
        """Each successive optimization reduces weighted shared traffic."""
        steps = local_sort_steps(32)
        ladder = [UNCOMBINED, COMBINED_UNPADDED, PADDED, FULL]
        costs = [rounds_traffic_words(plan_rounds(steps, flags)) for flags in ladder]
        assert costs == sorted(costs, reverse=True)

    def test_shrunken_capacity_increases_rounds(self):
        steps = rebuild_steps(256)
        wide = plan_rounds(steps, FULL, elements_per_thread=16)
        narrow = plan_rounds(steps, FULL, elements_per_thread=2)
        assert len(narrow) > len(wide)
