"""Tests for the optimization flag dependencies and presets."""

import pytest

from repro.bitonic.optimizations import (
    ABLATION_LADDER,
    FULL,
    NAIVE,
    PAPER_LADDER_MS,
    OptimizationFlags,
)
from repro.errors import InvalidParameterError


class TestDependencies:
    def test_fusion_requires_shared_memory(self):
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(shared_memory=False, kernel_fusion=True)

    def test_combined_steps_require_fusion(self):
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(
                shared_memory=True, kernel_fusion=False, combined_steps=True
            )

    def test_padding_requires_combined_steps(self):
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(
                combined_steps=False, padding=True, chunk_permutation=False
            )

    def test_permutation_requires_padding(self):
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(padding=False, chunk_permutation=True)

    def test_elements_per_thread_bounds(self):
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(elements_per_thread=3)
        with pytest.raises(InvalidParameterError):
            OptimizationFlags(elements_per_thread=128)


class TestPresets:
    def test_full_enables_everything(self):
        assert FULL.shared_memory
        assert FULL.kernel_fusion
        assert FULL.combined_steps
        assert FULL.padding
        assert FULL.chunk_permutation
        assert FULL.partition_reassignment
        assert FULL.elements_per_thread == 16

    def test_naive_disables_everything(self):
        assert not NAIVE.shared_memory
        assert not NAIVE.kernel_fusion

    def test_ladder_has_eight_rungs_matching_paper(self):
        assert len(ABLATION_LADDER) == len(PAPER_LADDER_MS) == 8

    def test_ladder_is_cumulative(self):
        """Each rung only ever turns features on (or raises B)."""
        feature_count = []
        for _, flags in ABLATION_LADDER:
            enabled = sum(
                [
                    flags.shared_memory,
                    flags.kernel_fusion,
                    flags.combined_steps,
                    flags.padding,
                    flags.chunk_permutation,
                    flags.partition_reassignment,
                ]
            )
            feature_count.append((enabled, flags.elements_per_thread))
        assert feature_count == sorted(feature_count)

    def test_paper_numbers_strictly_decrease(self):
        assert PAPER_LADDER_MS == sorted(PAPER_LADDER_MS, reverse=True)

    def test_with_elements_per_thread(self):
        assert FULL.with_elements_per_thread(8).elements_per_thread == 8
        assert FULL.elements_per_thread == 16  # frozen original unchanged
