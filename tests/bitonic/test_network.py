"""Tests for the bitonic network descriptions."""

import pytest

from repro.bitonic.network import (
    Step,
    comparisons_per_step,
    full_sort_steps,
    local_sort_steps,
    rebuild_steps,
    topk_total_comparisons,
)
from repro.errors import InvalidParameterError


class TestStep:
    def test_distance_bit(self):
        assert Step(inc=8, direction_period=16).distance_bit == 3

    def test_distance_must_be_power_of_two(self):
        with pytest.raises(InvalidParameterError):
            Step(inc=3, direction_period=8)

    def test_direction_period_lower_bound(self):
        with pytest.raises(InvalidParameterError):
            Step(inc=8, direction_period=8)


class TestLocalSortSteps:
    def test_step_count_is_triangular(self):
        # Phases 1..log2(k)-1... building runs of k takes sum_{p=1}^{log k}
        # p steps = log k (log k + 1) / 2.
        assert len(local_sort_steps(2)) == 1
        assert len(local_sort_steps(4)) == 3
        assert len(local_sort_steps(32)) == 15
        assert len(local_sort_steps(256)) == 36

    def test_distances_never_exceed_half_k(self):
        for step in local_sort_steps(64):
            assert step.inc <= 32

    def test_first_phase_is_distance_one(self):
        steps = local_sort_steps(16)
        assert steps[0].inc == 1
        assert steps[0].direction_period == 2

    def test_phases_end_at_distance_one(self):
        steps = local_sort_steps(16)
        phase_ends = [s for s in steps if s.inc == 1]
        assert len(phase_ends) == 4  # one per phase

    def test_k_one_needs_no_steps(self):
        assert local_sort_steps(1) == []

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            local_sort_steps(3)
        with pytest.raises(InvalidParameterError):
            local_sort_steps(0)


class TestRebuildSteps:
    def test_log_k_steps(self):
        # The Section 3.2 saving: rebuilding a bitonic sequence takes
        # log2(k) steps instead of a full local sort.
        for exponent in range(1, 9):
            assert len(rebuild_steps(1 << exponent)) == exponent

    def test_starts_at_half_k(self):
        steps = rebuild_steps(32)
        assert steps[0].inc == 16
        assert steps[-1].inc == 1

    def test_direction_alternates_every_k(self):
        for step in rebuild_steps(32):
            assert step.direction_period == 32

    def test_k_one_is_empty(self):
        assert rebuild_steps(1) == []


class TestFullSort:
    def test_total_steps_quadratic_in_log(self):
        # log n phases, phase p has p steps: n = 16 -> 1+2+3+4 = 10.
        assert len(full_sort_steps(16)) == 10

    def test_comparisons_per_step(self):
        assert comparisons_per_step(64) == 32


class TestComparisonCounts:
    def test_topk_cheaper_than_full_sort(self):
        n = 1 << 16
        topk = topk_total_comparisons(n, 32)
        sort = len(full_sort_steps(n)) * comparisons_per_step(n)
        assert topk < sort / 3

    def test_comparisons_grow_with_k(self):
        n = 1 << 16
        counts = [topk_total_comparisons(n, 1 << e) for e in range(1, 9)]
        assert counts == sorted(counts)

    def test_linear_in_n_for_fixed_k(self):
        small = topk_total_comparisons(1 << 14, 64)
        large = topk_total_comparisons(1 << 18, 64)
        # O(n log^2 k): growing n 16x grows comparisons roughly 16x.
        assert 14 < large / small < 18

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            topk_total_comparisons(16, 32)
