"""Tests for the full bitonic sorter and k-selection helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.registry import create
from repro.bitonic.sort import BitonicSortTopK, bitonic_sort, kth_largest
from repro.errors import InvalidParameterError


class TestBitonicSort:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64, 100, 1000, 4096])
    def test_matches_numpy_sort(self, n, rng):
        values = rng.random(n).astype(np.float32)
        sorted_values, permutation = bitonic_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))
        if n:
            assert np.array_equal(values[permutation], sorted_values)

    def test_integers(self, rng):
        values = rng.integers(-1000, 1000, 500).astype(np.int32)
        sorted_values, _ = bitonic_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(1, 2000))
        values = generator.random(n).astype(np.float32)
        sorted_values, _ = bitonic_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))

    def test_payload_carried(self, rng):
        values = rng.random(128).astype(np.float32)
        payload = rng.integers(0, 100, 128)
        _, permutation = bitonic_sort(values, payload)
        # Returned payload entries come from the provided payload array.
        assert set(permutation.tolist()) <= set(payload.tolist())


class TestBitonicSortTopK:
    def test_matches_reference(self, rng):
        data = rng.random(3000).astype(np.float32)
        result = BitonicSortTopK().run(data, 40)
        expected, _ = reference_topk(data, 40)
        assert np.array_equal(result.values, expected)

    def test_registered_in_the_registry(self, rng, device):
        algorithm = create("bitonic-sort", device)
        data = rng.random(512).astype(np.float32)
        result = algorithm.run(data, 8)
        expected, _ = reference_topk(data, 8)
        assert np.array_equal(result.values, expected)

    def test_loses_to_radix_sort_at_scale(self, device, rng):
        """The Section 2.2 background claim: radix-based sorts beat
        bitonic sort — here by the O(log^2 n / passes) traffic ratio."""
        data = rng.random(1024).astype(np.float32)
        bitonic = BitonicSortTopK(device).run(data, 8, model_n=1 << 29)
        radix = create("sort", device).run(data, 8, model_n=1 << 29)
        ratio = (
            bitonic.simulated_time(device).total
            / radix.simulated_time(device).total
        )
        assert ratio > 3

    def test_far_worse_than_bitonic_topk(self, device, rng):
        """The headline motivation: top-k needs no full sort."""
        data = rng.random(1024).astype(np.float32)
        full_sort = BitonicSortTopK(device).run(data, 32, model_n=1 << 29)
        topk = create("bitonic", device).run(data, 32, model_n=1 << 29)
        assert (
            full_sort.simulated_time(device).total
            > 10 * topk.simulated_time(device).total
        )


class TestKthLargest:
    def test_matches_partition(self, rng):
        data = rng.random(5000).astype(np.float32)
        for k in (1, 10, 100):
            assert kth_largest(data, k) == np.sort(data)[::-1][k - 1]

    def test_works_with_any_algorithm(self, rng):
        data = rng.random(2000).astype(np.float32)
        via_bitonic = kth_largest(data, 25, algorithm="bitonic")
        via_radix = kth_largest(data, 25, algorithm="radix-select")
        assert via_bitonic == via_radix

    def test_invalid_k(self, rng):
        with pytest.raises(InvalidParameterError):
            kth_largest(rng.random(10).astype(np.float32), 0)
        with pytest.raises(InvalidParameterError):
            kth_largest(rng.random(10).astype(np.float32), 11)
