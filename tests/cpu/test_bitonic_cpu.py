"""Tests for the CPU bitonic top-k (Appendix C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.cpu.bitonic_cpu import (
    CpuBitonicTopK,
    partition_bitonic_topk,
    vector_bitonic_reduce,
    vector_sort_reduce,
)
from repro.data.distributions import increasing, uniform_floats


class TestVectorReducers:
    def test_sort_reduce_keeps_the_top_k(self, rng):
        k = 8
        vector = rng.random(2048).astype(np.float32)
        payload = np.arange(2048, dtype=np.int64)
        reduced, reduced_payload = vector_sort_reduce(vector.copy(), k, payload)
        assert len(reduced) == 2048 // 16
        expected = np.sort(vector)[::-1][:k]
        assert set(expected) <= set(reduced)

    def test_bitonic_reduce_composes(self, rng):
        k = 4
        vector = rng.random(256).astype(np.float32)
        payload = np.arange(256, dtype=np.int64)
        stage_one, payload = vector_sort_reduce(vector.copy(), k, payload)
        stage_two, _ = vector_bitonic_reduce(stage_one, k, payload)
        expected = np.sort(vector)[::-1][:k]
        assert set(expected) <= set(stage_two)


class TestPartitionTopK:
    def test_partition_reduction_matches_reference(self, rng):
        data = rng.random(10000).astype(np.float32)
        values, payload = partition_bitonic_topk(data, 16, base_index=100)
        expected = np.sort(data)[::-1][:16]
        assert np.array_equal(values[:16], expected)
        assert np.array_equal(data[payload[:16] - 100], values[:16])


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(10, 2), (1000, 32), (50000, 256), (333, 1)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = CpuBitonicTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_random_sizes(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(1, 5000))
        k = int(generator.integers(1, min(n, 512) + 1))
        data = generator.random(n).astype(np.float32)
        result = CpuBitonicTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestCostModel:
    def test_distribution_independent(self, device):
        """Appendix C: the comparison count is fixed by (n, k)."""
        uniform = CpuBitonicTopK(device).run(
            uniform_floats(1 << 14), 32, model_n=1 << 29
        )
        sorted_input = CpuBitonicTopK(device).run(
            increasing(1 << 14), 32, model_n=1 << 29
        )
        assert uniform.simulated_ms(device) == pytest.approx(
            sorted_input.simulated_ms(device)
        )

    def test_much_slower_than_heap_on_uniform(self, device):
        """Figure 15a: ~500 insertions vs O(n log^2 k) comparisons."""
        from repro.cpu.pq_topk import HandPqTopK

        data = uniform_floats(1 << 14)
        bitonic = CpuBitonicTopK(device).run(data, 32, model_n=1 << 29)
        heap = HandPqTopK(device).run(data, 32, model_n=1 << 29)
        assert bitonic.simulated_ms(device) > 5 * heap.simulated_ms(device)

    def test_close_to_heap_on_sorted(self, device):
        """Figure 15b: SIMD makes up for the extra comparisons."""
        from repro.cpu.pq_topk import HandPqTopK

        data = increasing(1 << 14)
        bitonic = CpuBitonicTopK(device).run(data, 32, model_n=1 << 29)
        heap = HandPqTopK(device).run(data, 32, model_n=1 << 29)
        ratio = bitonic.simulated_ms(device) / heap.simulated_ms(device)
        assert 0.5 < ratio < 2.0

    def test_comparisons_recorded(self, rng):
        result = CpuBitonicTopK().run(uniform_floats(1 << 12), 16)
        assert result.trace.notes["comparisons"] > 0
