"""Tests for the CPU priority-queue baselines."""

import math

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.cpu.pq_topk import HandPqTopK, StlPqTopK, heap_topk_stream
from repro.data.distributions import decreasing, increasing, uniform_floats


class TestHeapStream:
    def test_returns_topk(self, rng):
        data = rng.random(500).astype(np.float32)
        values, _ = heap_topk_stream(data, 16)
        assert np.array_equal(np.sort(values), np.sort(data)[-16:])

    def test_insert_count_uniform_matches_order_statistics(self, rng):
        """E[inserts] = sum min(1, k/i) ~= k (1 + ln(m/k)) for i.i.d. data."""
        k, m = 16, 20000
        counts = []
        for seed in range(8):
            data = np.random.default_rng(seed).random(m).astype(np.float32)
            _, inserts = heap_topk_stream(data, k)
            counts.append(inserts)
        expected = k * (1 + math.log(m / k))
        assert np.mean(counts) == pytest.approx(expected, rel=0.25)

    def test_sorted_ascending_inserts_everything(self):
        data = increasing(1000)
        _, inserts = heap_topk_stream(data, 8)
        assert inserts == 1000

    def test_sorted_descending_inserts_warmup_only(self):
        data = decreasing(1000)
        _, inserts = heap_topk_stream(data, 8)
        assert inserts == 8


class TestCorrectness:
    @pytest.mark.parametrize("cls", [StlPqTopK, HandPqTopK])
    @pytest.mark.parametrize("n,k", [(10, 3), (1000, 32), (10000, 500)])
    def test_matches_reference(self, cls, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = cls().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    @pytest.mark.parametrize("cls", [StlPqTopK, HandPqTopK])
    def test_fewer_elements_than_cores(self, cls, rng):
        data = rng.random(3).astype(np.float32)
        result = cls().run(data, 2)
        expected, _ = reference_topk(data, 2)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestCostModel:
    def test_uniform_is_memory_bound(self, device):
        """Figure 15a: with few inserts the scan dominates — about 46 ms
        for 2 GiB at the modeled CPU's memory bandwidth."""
        result = HandPqTopK(device).run(uniform_floats(1 << 16), 32, model_n=1 << 29)
        assert result.simulated_ms(device) == pytest.approx(47, rel=0.15)

    def test_sorted_input_is_60x_worse(self, device):
        """Figure 15b: every element updates the heap."""
        uniform = HandPqTopK(device).run(
            uniform_floats(1 << 16), 32, model_n=1 << 29
        )
        sorted_input = HandPqTopK(device).run(
            increasing(1 << 16), 32, model_n=1 << 29
        )
        ratio = sorted_input.simulated_ms(device) / uniform.simulated_ms(device)
        assert 10 < ratio < 40

    def test_stl_twice_the_hand_optimized_on_sorted(self, device):
        """Figure 15b: pop+push costs twice the in-place replacement."""
        data = increasing(1 << 16)
        stl = StlPqTopK(device).run(data, 32, model_n=1 << 29)
        hand = HandPqTopK(device).run(data, 32, model_n=1 << 29)
        ratio = stl.simulated_ms(device) / hand.simulated_ms(device)
        assert ratio == pytest.approx(2.0, rel=0.2)

    def test_gpu_bitonic_60x_faster_on_sorted(self, device):
        from repro.bitonic.topk import BitonicTopK

        data = increasing(1 << 16)
        cpu = HandPqTopK(device).run(data, 32, model_n=1 << 29)
        gpu = BitonicTopK(device).run(data, 32, model_n=1 << 29)
        ratio = cpu.simulated_ms(device) / gpu.simulated_ms(device)
        assert 40 < ratio < 120
