"""Tests for the from-scratch binary min-heap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.heap import MinHeap
from repro.errors import InvalidParameterError


class TestBasicOperations:
    def test_push_pop_single(self):
        heap = MinHeap()
        heap.push(5.0)
        assert heap.min() == 5.0
        assert heap.pop() == 5.0
        assert len(heap) == 0

    def test_min_tracks_smallest(self):
        heap = MinHeap()
        for value in (5.0, 2.0, 8.0, 1.0):
            heap.push(value)
        assert heap.min() == 1.0

    def test_heapify_constructor(self):
        heap = MinHeap([4.0, 1.0, 3.0, 2.0])
        assert heap.drain_sorted() == [1.0, 2.0, 3.0, 4.0]

    def test_push_pop_min_replaces_root(self):
        heap = MinHeap([3.0, 5.0, 7.0])
        old = heap.push_pop_min(6.0)
        assert old == 3.0
        assert heap.min() == 5.0
        assert len(heap) == 3

    def test_duplicates_survive(self):
        heap = MinHeap([2.0, 2.0, 2.0, 1.0])
        assert heap.drain_sorted() == [1.0, 2.0, 2.0, 2.0]


class TestErrors:
    def test_empty_min(self):
        with pytest.raises(InvalidParameterError):
            MinHeap().min()

    def test_empty_pop(self):
        with pytest.raises(InvalidParameterError):
            MinHeap().pop()

    def test_empty_replace(self):
        with pytest.raises(InvalidParameterError):
            MinHeap().push_pop_min(1.0)

    def test_capacity_enforced(self):
        heap = MinHeap(capacity=2)
        heap.push(1.0)
        heap.push(2.0)
        with pytest.raises(InvalidParameterError):
            heap.push(3.0)
        assert heap.capacity == 2


class TestProperties:
    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_drain_is_sorted(self, values):
        heap = MinHeap(values)
        assert heap.drain_sorted() == sorted(values)

    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                           min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_replace_equals_pop_then_push(self, values):
        floats = [float(v) for v in values]
        new_value = floats.pop()
        via_replace = MinHeap(list(floats))
        via_replace.push_pop_min(new_value)
        via_pop_push = MinHeap(list(floats))
        via_pop_push.pop()
        via_pop_push.push(new_value)
        assert via_replace.drain_sorted() == via_pop_push.drain_sorted()

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_heap_invariant_holds_internally(self, values):
        heap = MinHeap(values)
        items = heap.as_list()
        for index in range(1, len(items)):
            assert items[(index - 1) // 2] <= items[index]


class TestStats:
    def test_operation_counting(self):
        heap = MinHeap()
        heap.push(3.0)
        heap.push(1.0)
        heap.pop()
        heap.push_pop_min(4.0)
        assert heap.stats.pushes == 2
        assert heap.stats.pops == 1
        assert heap.stats.replacements == 1
        assert heap.stats.comparisons > 0

    def test_replace_cheaper_than_pop_push(self):
        """The hand-optimized PQ's advantage: one sift instead of two."""
        values = list(range(1024, 0, -1))
        replace_heap = MinHeap([float(v) for v in values])
        replace_heap.stats.sift_swaps = 0
        replace_heap.push_pop_min(2000.0)
        replace_swaps = replace_heap.stats.sift_swaps

        pop_push_heap = MinHeap([float(v) for v in values])
        pop_push_heap.stats.sift_swaps = 0
        pop_push_heap.pop()
        pop_push_heap.push(2000.0)
        assert replace_swaps <= pop_push_heap.stats.sift_swaps
