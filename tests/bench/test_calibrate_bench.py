"""The calibration replay benchmark and the `repro calibrate` CLI."""

import json

import pytest

from repro.bench.calibrate import (
    REPORT_FORMAT,
    REPORT_VERSION,
    CalibrationWorkload,
    run_calibration_benchmark,
)
from repro.costmodel.calibration import CalibrationStore
from repro.errors import InvalidParameterError

# Small enough to keep the suite fast, big enough for every kernel to
# clear the min_samples floor across the grid.
WORKLOAD = {"ns": (1 << 10, 1 << 12, 1 << 14), "ks": (4, 16, 64), "seed": 7}


@pytest.fixture(scope="module")
def store():
    return CalibrationStore()


@pytest.fixture(scope="module")
def report(store):
    return run_calibration_benchmark(CalibrationWorkload(**WORKLOAD), store=store)


class TestWorkloadValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ns": ()},
            {"ks": ()},
            {"ns": (1024, 1024)},  # not strictly increasing
            {"ks": (64, 16)},
            {"ns": (0, 1024)},
            {"ks": (-1, 8)},
            {"profile_name": "no-such-profile"},
            {"seed": -1},
        ],
    )
    def test_bad_workloads_raise(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CalibrationWorkload(**kwargs)

    def test_configs_skip_k_greater_than_n(self):
        workload = CalibrationWorkload(ns=(8, 1024), ks=(4, 512))
        assert (8, 512) not in workload.configs()
        assert (1024, 512) in workload.configs()

    def test_data_is_seeded(self):
        workload = CalibrationWorkload(**WORKLOAD)
        assert (workload.data(1 << 10) == workload.data(1 << 10)).all()


class TestReport:
    def test_gates_pass_on_the_default_replay(self, report):
        assert report.q_error_improves
        assert report.decisions_optimal
        assert report.default_unchanged
        assert report.passed

    def test_calibration_tightens_p95_q_error(self, report):
        summary = report.q_error_summary()
        assert summary["before"]["p95"] > 1.0  # the Figure 17 gap is real
        assert summary["after"]["p95"] <= summary["before"]["p95"]

    def test_every_config_produced_points_and_a_decision(self, report):
        configs = CalibrationWorkload(**WORKLOAD).configs()
        assert {(d.n, d.k) for d in report.decisions} == set(configs)
        assert {(p.n, p.k) for p in report.points} == set(configs)

    def test_fitted_factors_exceed_one(self, store, report):
        # Peak-bandwidth models undershoot, so every correction inflates.
        factors = store.factors()
        assert factors
        assert all(factor > 1.0 for factor in factors.values())

    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["format"] == REPORT_FORMAT
        assert payload["version"] == REPORT_VERSION
        assert payload["passed"] is True
        assert payload["q_error_improves"] is True
        assert payload["decisions_optimal"] is True
        assert payload["default_unchanged"] is True
        assert len(payload["points"]) == len(report.points)
        assert len(payload["decisions"]) == len(report.decisions)

    def test_render_mentions_the_gates(self, report):
        text = report.render()
        assert "q_error_improves=True" in text
        assert "decisions_optimal=True" in text
        assert "default_unchanged=True" in text
        assert "passed=True" in text
        for kernel in sorted({point.kernel for point in report.points}):
            assert kernel in text


class TestCli:
    def test_exit_zero_and_artifacts(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        store_path = tmp_path / "store.json"
        argv = ["calibrate", "--seed", "7", "--json"]
        for n in WORKLOAD["ns"]:
            argv += ["--n", str(n)]
        for k in WORKLOAD["ks"]:
            argv += ["--k", str(k)]
        argv += ["--out", str(out), "--store", str(store_path)]
        assert main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        loaded = CalibrationStore.load(store_path)
        assert loaded.epoch >= 1
        assert loaded.factors()

    def test_load_resumes_a_saved_store(self, tmp_path):
        from repro.cli import main

        store_path = tmp_path / "store.json"
        argv = [
            "calibrate", "--seed", "7", "--json",
            "--n", "65536", "--n", "262144", "--k", "16", "--k", "256",
        ]
        assert main(argv + ["--store", str(store_path)]) == 0
        first = CalibrationStore.load(store_path)
        assert (
            main(argv + ["--load", str(store_path), "--store", str(store_path)])
            == 0
        )
        resumed = CalibrationStore.load(store_path)
        assert resumed.sample_count() > first.sample_count()
        # 4 samples/kernel sit below the floor; the resumed 8 clear it.
        assert first.epoch == 0
        assert resumed.epoch >= 1
        assert resumed.factors()

    def test_bad_grid_maps_to_invalid_parameter_exit_code(self):
        from repro.cli import main
        from repro.errors import EXIT_CODES

        assert main(["calibrate", "--n", "0"]) == EXIT_CODES[
            InvalidParameterError
        ]
