"""Tests for the bench reporting helpers."""

import pytest

from repro.bench.report import Figure, Series, format_comparison, format_figure


class TestSeries:
    def test_points_keep_insertion_order(self):
        series = Series("line")
        series.add(1, 10.0)
        series.add(4, 40.0)
        series.add(2, 20.0)
        assert series.xs() == [1, 4, 2]


class TestFigure:
    def test_add_and_lookup(self):
        figure = Figure("f", "title", "k", "ms")
        series = figure.add_series("bitonic")
        series.add(32, 15.4)
        assert figure.series_by_name("bitonic").points[32] == 15.4
        with pytest.raises(KeyError):
            figure.series_by_name("missing")

    def test_all_xs_union(self):
        figure = Figure("f", "title", "k", "ms")
        figure.add_series("a").add(1, 1.0)
        figure.add_series("b").add(2, 2.0)
        assert figure.all_xs() == [1, 2]


class TestFormatting:
    def test_format_figure_contains_everything(self):
        figure = Figure(
            "fig1", "demo", "k", "ms", paper_expectation="flat lines"
        )
        figure.add_series("bitonic").add(32, 15.4)
        figure.add_series("sort").add(32, 100.0)
        figure.notes.append("simulated")
        text = format_figure(figure)
        assert "fig1" in text
        assert "bitonic" in text and "sort" in text
        assert "15.400" in text and "100.000" in text
        assert "paper: flat lines" in text
        assert "note: simulated" in text

    def test_missing_points_render_dashes(self):
        figure = Figure("f", "t", "k", "ms")
        figure.add_series("a").add(1, 1.0)
        figure.add_series("b").add(2, 2.0)
        text = format_figure(figure)
        assert "-" in text

    def test_format_comparison(self):
        line = format_comparison("top-32", 15.4, 12.2)
        assert "paper 15.40 ms" in line
        assert "measured 12.20 ms" in line
        assert "x0.79" in line
