"""Shape tests for the figure experiments (small functional inputs).

The full-size experiments live under ``benchmarks/``; here each experiment
runs at a reduced functional size and the *qualitative* paper claims are
asserted — orderings, robustness, crossovers — so regressions in any layer
surface as figure-shape failures.
"""

import pytest

from repro.bench.figures import (
    REGISTRY,
    ablation_43,
    figure_08,
    figure_11a,
    figure_12b,
    figure_15,
    figure_16a,
    query_4,
)

SMALL = 1 << 14


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        expected = {
            "fig08",
            "abl43",
            "fig11a",
            "fig11b",
            "fig11c",
            "fig12a",
            "fig12b",
            "fig13",
            "fig14",
            "fig15a",
            "fig15b",
            "fig16a",
            "fig16b",
            "q3",
            "q4",
            "fig17",
            "fig18",
        }
        assert expected <= set(REGISTRY)


class TestShapes:
    def test_ablation_ladder_monotone(self):
        figure = ablation_43()
        values = list(figure.series_by_name("model").points.values())
        assert values == sorted(values, reverse=True)

    def test_fig08_b16_optimal_region(self):
        figure = figure_08()
        points = figure.series_by_name("bitonic").points
        assert points[16] < points[2]
        assert points[64] > points[16]

    def test_fig11a_orderings(self):
        figure = figure_11a(functional_n=SMALL)
        sort = figure.series_by_name("sort").points
        bitonic = figure.series_by_name("bitonic").points
        radix = figure.series_by_name("radix-select").points
        bandwidth = figure.series_by_name("memory-bandwidth").points
        for k in (32, 256):
            assert bandwidth[k] < bitonic[k] < radix[k] < sort[k]
        # Per-thread fails past 256 (missing points).
        assert 512 not in figure.series_by_name("per-thread").points

    def test_fig12b_radix_degrades_to_sort_but_bitonic_does_not(self):
        figure = figure_12b(functional_n=SMALL)
        sort = figure.series_by_name("sort").points
        radix = figure.series_by_name("radix-select").points
        bitonic = figure.series_by_name("bitonic").points
        assert radix[64] == pytest.approx(sort[64], rel=0.1)
        assert bitonic[64] < sort[64] / 5

    def test_fig15b_gpu_bitonic_dominates(self):
        figure = figure_15(sorted_input=True, functional_n=SMALL)
        gpu = figure.series_by_name("bitonic").points[32]
        hand = figure.series_by_name("cpu-hand-pq").points[32]
        stl = figure.series_by_name("cpu-stl-pq").points[32]
        assert hand / gpu > 40
        assert stl / hand == pytest.approx(2.0, rel=0.25)

    def test_fig16a_fusion_saves_kernel_time(self):
        figure = figure_16a(functional_rows=SMALL)
        combined = figure.series_by_name("Combined").points
        separate = figure.series_by_name("Filter+BitonicTopK").points
        sort = figure.series_by_name("Filter+Sort").points
        assert combined[1.0] < separate[1.0] < sort[1.0]
        saving = 1 - combined[1.0] / separate[1.0]
        assert saving > 0.2  # paper: ~30% of kernel time

    def test_q4_topk_removes_most_of_the_sort_share(self):
        figure = query_4(functional_rows=SMALL)
        totals = figure.series_by_name("simulated-ms").points
        assert totals["GroupBy+BitonicTopK"] < totals["GroupBy+Sort"]
