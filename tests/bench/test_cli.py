"""Tests for the figure-runner CLI."""


from repro.bench.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out and "abl43" in out

    def test_run_one_figure(self, capsys):
        assert main(["abl43"]) == 0
        out = capsys.readouterr().out
        assert "Optimization ablation ladder" in out
        assert "paper" in out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "FIGURE" in capsys.readouterr().out
