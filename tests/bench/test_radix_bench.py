"""The radix benchmark: workload validation, the exactness / monotonic
large-k / batch-amortization gates, baseline comparison, and CLI exit
codes."""

import json

import numpy as np
import pytest

from repro.bench.radix import (
    GATE_LARGE_K,
    RadixWorkload,
    check_baseline,
    run_radix_benchmark,
)
from repro.cli import main
from repro.errors import InvalidParameterError

# The committed-baseline shape at a smaller functional cap: the schedule
# is planned at model scale, so the curve keeps its crossover while the
# functional sweep stays fast enough for the tier-1 suite.
WORKLOAD = dict(
    model_n=1 << 26,
    ks=(64, 1024, 2048),
    functional_cap=1 << 16,
    batch_sizes=(1, 2, 4),
    batch_n=1024,
    batch_k=32,
)


@pytest.fixture(scope="module")
def report():
    return run_radix_benchmark(RadixWorkload(**WORKLOAD))


class TestWorkloadValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model_n": 0},
            {"ks": ()},
            {"ks": (64, 32)},
            {"ks": (64, 64)},
            {"ks": (0, 64)},
            {"ks": (64, 1 << 20), "functional_cap": 1 << 16},
            {"batch_sizes": ()},
            {"batch_sizes": (4, 2)},
            {"batch_sizes": (0, 2)},
            {"batch_k": 0},
            {"batch_k": 4096, "batch_n": 2048},
        ],
    )
    def test_bad_workloads_raise(self, kwargs):
        with pytest.raises(InvalidParameterError):
            RadixWorkload(**kwargs)

    def test_data_is_deterministic(self):
        workload = RadixWorkload(**WORKLOAD)
        np.testing.assert_array_equal(workload.data(), workload.data())
        np.testing.assert_array_equal(
            workload.batch_data(4), workload.batch_data(4)
        )


class TestReport:
    def test_every_point_is_exact(self, report):
        assert report.identical
        assert all(point.identical for point in report.points)
        assert all(point.identical for point in report.batch_points)

    def test_the_monotonic_large_k_gate_holds(self, report):
        assert report.large_k_monotonic
        speedups = [
            point.speedup_vs_bitonic
            for point in report.points
            if point.speedup_vs_bitonic is not None
        ]
        assert speedups == sorted(speedups)
        gated = report.gated_points()
        assert gated and all(point.k >= GATE_LARGE_K for point in gated)
        assert all(
            point.radik_ms <= point.strawman_ms for point in gated
        )
        assert gated[-1].radik_ms <= gated[-1].bitonic_ms

    def test_the_fused_batch_amortizes(self, report):
        assert report.batch_amortizes
        assert report.passed
        for point in report.batch_points:
            if point.batch >= 2:
                assert point.batched_ms < point.per_query_ms
                assert point.speedup > 1.0

    def test_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["format"] == "repro-radix-bench"
        assert payload["passed"] is True
        assert payload["gates"]["large_k_from"] == GATE_LARGE_K
        assert check_baseline(report, payload) == []

    def test_render_mentions_the_gate(self, report):
        rendered = report.render()
        assert "PASS" in rendered
        assert "batch" in rendered
        assert str(GATE_LARGE_K) in rendered


class TestBaseline:
    def test_k_point_regression_is_reported(self, report):
        baseline = report.to_dict()
        baseline["points"][0]["radik_ms"] /= 2.0
        problems = check_baseline(report, baseline)
        assert problems and "radik_ms" in problems[0]

    def test_batch_point_regression_is_reported(self, report):
        baseline = report.to_dict()
        baseline["batch_points"][-1]["batched_ms"] /= 2.0
        problems = check_baseline(report, baseline)
        assert problems and "batched_ms" in problems[0]

    def test_missing_point_is_reported(self, report):
        baseline = report.to_dict()
        baseline["points"].append(dict(baseline["points"][-1], k=4096))
        assert any(
            "missing" in problem for problem in check_baseline(report, baseline)
        )

    def test_workload_mismatch_is_reported(self, report):
        baseline = report.to_dict()
        baseline["workload"]["batch_k"] += 1
        assert check_baseline(report, baseline)

    def test_foreign_format_is_rejected(self, report):
        assert check_baseline(report, {"format": "other"}) == [
            "baseline is not a repro-radix-bench document"
        ]


class TestCli:
    ARGS = [
        "radix-bench",
        "--n", str(WORKLOAD["model_n"]),
        *[part for k in WORKLOAD["ks"] for part in ("--k", str(k))],
        *[
            part
            for batch in WORKLOAD["batch_sizes"]
            for part in ("--batch", str(batch))
        ],
        "--batch-n", str(WORKLOAD["batch_n"]),
        "--batch-k", str(WORKLOAD["batch_k"]),
        "--functional-cap", str(WORKLOAD["functional_cap"]),
    ]

    def test_passing_run_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        status = main([*self.ARGS, "--json", "--out", str(out)])
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert json.loads(capsys.readouterr().out) == payload

    def test_baseline_gate_round_trips(self, capsys, tmp_path):
        out = tmp_path / "baseline.json"
        assert main([*self.ARGS, "--json", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main([*self.ARGS, "--baseline", str(out)]) == 0

    def test_baseline_regression_exits_one(self, capsys, tmp_path):
        out = tmp_path / "baseline.json"
        assert main([*self.ARGS, "--json", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        doc["points"][0]["radik_ms"] /= 10.0
        out.write_text(json.dumps(doc))
        capsys.readouterr()
        status = main([*self.ARGS, "--baseline", str(out)])
        captured = capsys.readouterr()
        assert status == 1
        assert "baseline regression" in captured.err

    def test_invalid_k_grid_exits_three(self, capsys):
        status = main(["radix-bench", "--k", "64", "--k", "32"])
        assert status == 3
        assert "InvalidParameterError" in capsys.readouterr().err

    def test_invalid_batch_k_exits_three(self, capsys):
        status = main(["radix-bench", "--batch-k", "0"])
        assert status == 3
        assert "InvalidParameterError" in capsys.readouterr().err
