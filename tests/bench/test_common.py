"""The shared bench-CLI plumbing every benchmark front door rides on."""

import argparse
import json

from repro.bench.common import (
    BASELINE_TOLERANCE,
    add_report_arguments,
    apply_baseline,
    apply_gates,
    drifted,
    finish_report,
    write_report,
)


class FakeReport:
    def __init__(self, value=1.0):
        self.value = value

    def to_dict(self):
        return {"value": self.value}

    def render(self):
        return f"value: {self.value}"


def fake_check(report, baseline):
    if drifted(report.value, baseline["value"]):
        return [f"value {report.value} drifted from {baseline['value']}"]
    return []


def parse(argv, baseline_name="BENCH_fake.json"):
    parser = argparse.ArgumentParser()
    add_report_arguments(parser, baseline_name)
    return parser.parse_args(argv)


class TestDrifted:
    def test_inside_band(self):
        assert not drifted(1.0, 1.0)
        assert not drifted(1.14, 1.0)
        assert not drifted(0.86, 1.0)

    def test_outside_band(self):
        assert drifted(1.16, 1.0)
        assert drifted(0.84, 1.0)

    def test_zero_expectation_has_absolute_floor(self):
        # A zero baseline must not demand exact float equality.
        assert not drifted(0.0, 0.0)
        assert not drifted(1e-10, 0.0)
        assert drifted(0.5, 0.0)

    def test_custom_tolerance(self):
        assert drifted(1.2, 1.0, tolerance=0.1)
        assert not drifted(1.2, 1.0, tolerance=0.25)

    def test_band_matches_published_tolerance(self):
        assert BASELINE_TOLERANCE == 0.15


class TestArguments:
    def test_wires_the_shared_flags(self):
        arguments = parse(
            ["--json", "--out", "x.json", "--baseline", "b.json"]
        )
        assert arguments.json and arguments.out == "x.json"
        assert arguments.baseline == "b.json"

    def test_baseline_flag_is_optional(self):
        parser = argparse.ArgumentParser()
        add_report_arguments(parser, baseline_name=None)
        arguments = parser.parse_args([])
        assert not hasattr(arguments, "baseline")


class TestWriteReport:
    def test_renders_text_by_default(self, capsys):
        write_report(FakeReport(), parse([]))
        assert capsys.readouterr().out.strip() == "value: 1.0"

    def test_json_flag_prints_payload(self, capsys):
        payload = write_report(FakeReport(2.0), parse(["--json"]))
        assert payload == {"value": 2.0}
        assert json.loads(capsys.readouterr().out) == {"value": 2.0}

    def test_out_writes_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        write_report(FakeReport(), parse(["--out", str(artifact)]))
        capsys.readouterr()
        assert json.loads(artifact.read_text()) == {"value": 1.0}


class TestGatesAndBaseline:
    def test_passing_gates_exit_zero(self, capsys):
        assert apply_gates([(True, "fine"), (True, "also fine")]) == 0
        assert capsys.readouterr().err == ""

    def test_each_failed_gate_is_one_stderr_line(self, capsys):
        assert apply_gates([(False, "first"), (True, "ok"),
                            (False, "second")]) == 1
        err = capsys.readouterr().err
        assert err.count("error:") == 2
        assert "first" in err and "second" in err

    def test_no_baseline_path_is_a_pass(self):
        assert apply_baseline(FakeReport(), None, fake_check) == 0

    def test_baseline_within_tolerance_passes(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"value": 1.05}))
        assert apply_baseline(FakeReport(1.0), str(path), fake_check) == 0

    def test_baseline_drift_reports_and_fails(self, tmp_path, capsys):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"value": 2.0}))
        assert apply_baseline(FakeReport(1.0), str(path), fake_check) == 1
        assert "baseline regression:" in capsys.readouterr().err


class TestFinishReport:
    def test_full_tail(self, tmp_path, capsys):
        artifact = tmp_path / "out.json"
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"value": 1.0}))
        status = finish_report(
            FakeReport(1.0),
            parse(["--out", str(artifact), "--baseline", str(baseline)]),
            gates=[(True, "gate holds")],
            check_baseline=fake_check,
        )
        assert status == 0
        assert artifact.exists()
        capsys.readouterr()

    def test_gate_failure_dominates(self, capsys):
        status = finish_report(
            FakeReport(), parse([]), gates=[(False, "gate broke")]
        )
        assert status == 1
        assert "gate broke" in capsys.readouterr().err

    def test_baseline_failure_dominates(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"value": 9.0}))
        status = finish_report(
            FakeReport(1.0),
            parse(["--baseline", str(baseline)]),
            gates=[(True, "fine")],
            check_baseline=fake_check,
        )
        assert status == 1
        capsys.readouterr()
