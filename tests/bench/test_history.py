"""Tests for the benchmark history store."""

import pytest

from repro.bench.history import (
    compare,
    figure_to_record,
    load_figure,
    record_to_figure,
    save_figure,
)
from repro.bench.report import Figure
from repro.errors import InvalidParameterError


def _make_figure(values):
    figure = Figure("fig-test", "demo", "k", "ms")
    series = figure.add_series("bitonic")
    for x, y in values.items():
        series.add(x, y)
    return figure


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        figure = _make_figure({32: 15.4, 64: 18.0})
        path = tmp_path / "fig.json"
        save_figure(figure, path)
        loaded = load_figure(path)
        assert loaded.figure_id == "fig-test"
        assert loaded.series_by_name("bitonic").points == {"32": 15.4, "64": 18.0}

    def test_record_roundtrip_without_disk(self):
        figure = _make_figure({1: 2.0})
        rebuilt = record_to_figure(figure_to_record(figure))
        assert rebuilt.title == figure.title

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_figure(tmp_path / "missing.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(InvalidParameterError):
            load_figure(path)


class TestCompare:
    def test_no_change_is_clean(self):
        baseline = _make_figure({32: 15.4})
        assert compare(baseline, _make_figure({32: 15.4})) == []

    def test_small_drift_within_tolerance(self):
        baseline = _make_figure({32: 100.0})
        assert compare(baseline, _make_figure({32: 103.0}), tolerance=0.05) == []

    def test_regression_detected(self):
        baseline = _make_figure({32: 100.0})
        regressions = compare(baseline, _make_figure({32: 130.0}))
        assert len(regressions) == 1
        assert regressions[0].ratio == pytest.approx(1.3)
        assert "bitonic[32]" in str(regressions[0])

    def test_improvements_also_flagged(self):
        baseline = _make_figure({32: 100.0})
        assert compare(baseline, _make_figure({32: 50.0}))

    def test_new_points_ignored(self):
        baseline = _make_figure({32: 100.0})
        current = _make_figure({32: 100.0, 64: 1.0})
        assert compare(baseline, current) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidParameterError):
            compare(_make_figure({}), _make_figure({}), tolerance=-1)

    def test_real_figure_is_stable_against_itself(self):
        from repro.bench.figures import ablation_43

        figure = ablation_43()
        rebuilt = record_to_figure(figure_to_record(figure))
        assert compare(rebuilt, record_to_figure(figure_to_record(figure))) == []
