"""Tests for bucket-select top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.bucket_select import BucketSelectTopK
from repro.data.distributions import bucket_killer, uniform_floats


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(10, 2), (1000, 32), (5000, 500)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = BucketSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    def test_negative_values(self, rng):
        data = (rng.standard_normal(3000) * 50).astype(np.float32)
        result = BucketSelectTopK().run(data, 40)
        expected, _ = reference_topk(data, 40)
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_all_equal_input_terminates(self):
        data = np.full(1000, 3.25, dtype=np.float32)
        result = BucketSelectTopK().run(data, 10)
        assert (result.values == 3.25).all()
        assert len(np.unique(result.indices)) == 10

    def test_skewed_duplicates(self):
        data = np.ones(2000, dtype=np.float32)
        data[7] = 5.0
        result = BucketSelectTopK().run(data, 3)
        assert result.values[0] == 5.0
        assert (result.values[1:] == 1.0).all()

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_random(self, seed):
        generator = np.random.default_rng(seed)
        n = int(generator.integers(2, 500))
        k = int(generator.integers(1, n + 1))
        data = generator.random(n).astype(np.float32)
        result = BucketSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestCostBehaviour:
    def test_k_equals_one_stops_after_minmax(self, device, rng):
        """Section 6.2: at k = 1 bucket select returns right after the
        min/max pass."""
        data = rng.random(4096).astype(np.float32)
        result = BucketSelectTopK(device).run(data, 1, model_n=1 << 29)
        assert result.trace.num_launches == 1
        assert result.values[0] == data.max()

    def test_atomics_charged_per_element(self, rng):
        result = BucketSelectTopK().run(
            uniform_floats(1 << 14), 64, model_n=1 << 29
        )
        assert result.trace.atomic_ops >= 1 << 29

    def test_slower_than_radix_select_on_uniform(self, device):
        """Figure 11a: atomic counting makes bucket select the slower of
        the two selection methods."""
        from repro.algorithms.radix_select import RadixSelectTopK

        data = uniform_floats(1 << 14)
        bucket = BucketSelectTopK(device).run(data, 64, model_n=1 << 29)
        radix = RadixSelectTopK(device).run(data, 64, model_n=1 << 29)
        assert (
            bucket.simulated_time(device).total
            > radix.simulated_time(device).total
        )

    def test_bucket_killer_slowdown_about_2x(self, device):
        """Figure 12b: the adversarial distribution costs roughly 2-3x."""
        uniform = BucketSelectTopK(device).run(
            uniform_floats(1 << 14), 64, model_n=1 << 29
        )
        killer = BucketSelectTopK(device).run(
            bucket_killer(1 << 14), 64, model_n=1 << 29
        )
        ratio = (
            killer.simulated_time(device).total
            / uniform.simulated_time(device).total
        )
        assert 1.5 < ratio < 4.0
