"""RadiK adaptive radix top-k: exactness, adversarial inputs, the pass
schedule (adaptive widths, deferral, model-scale planning), and the
batched fused operator."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.algorithms.radik import (
    DEFER,
    MAX_DIGIT_BITS,
    MIN_DIGIT_BITS,
    RadiKTopK,
    batched_radik_topk,
    buffer_budget,
    plan_width,
)
from repro.algorithms.registry import create
from repro.data.distributions import bucket_killer, uniform_floats
from repro.errors import InvalidParameterError

DTYPES = [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]


def make_data(dtype, n, rng):
    if np.dtype(dtype).kind == "f":
        return (rng.standard_normal(n) * 1000).astype(dtype)
    info = np.iinfo(dtype)
    return rng.integers(info.min, info.max, n, dtype=dtype)


class TestPlanning:
    def test_width_is_log2_of_the_surplus(self):
        assert plan_width(2.0, 32) == MIN_DIGIT_BITS
        assert plan_width(256.0, 32) == 8
        assert plan_width(1 << 20, 32) == MAX_DIGIT_BITS

    def test_width_clamps_to_the_remaining_bits(self):
        assert plan_width(1 << 20, 3) == 3
        assert plan_width(2.0, 2) == 2

    def test_budget_grows_with_k(self):
        assert buffer_budget(1) == 4096
        assert buffer_budget(1024) == 32 * 1024
        assert buffer_budget(1024) > buffer_budget(64)


class TestCorrectness:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_reference_bit_for_bit(self, dtype, rng):
        data = make_data(dtype, 5000, rng)
        for k in (1, 7, 64, 512):
            result = RadiKTopK().run(data, k)
            expected_values, expected_indices = reference_topk(data, k)
            assert np.array_equal(result.values, expected_values)
            assert np.array_equal(result.indices, expected_indices)

    def test_duplicate_heavy_ties_resolve_canonically(self, rng):
        data = rng.integers(0, 4, 4096).astype(np.float32)
        result = RadiKTopK().run(data, 1000)
        expected_values, expected_indices = reference_topk(data, 1000)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)

    def test_registry_creates_the_algorithm(self, rng):
        algorithm = create("radik")
        data = rng.random(1024).astype(np.float32)
        result = algorithm.run(data, 16)
        assert result.algorithm == "radik"
        expected_values, _ = reference_topk(data, 16)
        assert np.array_equal(result.values, expected_values)


class TestAdversarialInputs:
    def test_all_equal_input(self):
        data = np.full(4096, 2.5, dtype=np.float32)
        result = RadiKTopK().run(data, 100)
        assert (result.values == 2.5).all()
        assert np.array_equal(result.indices, np.arange(100))

    def test_bucket_killer_matches_reference(self):
        data = bucket_killer(1 << 14)
        result = RadiKTopK().run(data, 64)
        expected_values, expected_indices = reference_topk(data, 64)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)

    def test_infinity_mix_matches_reference(self, rng):
        data = rng.standard_normal(2048).astype(np.float32)
        data[5:15] = np.inf
        data[20:30] = -np.inf
        result = RadiKTopK().run(data, 40)
        expected_values, expected_indices = reference_topk(data, 40)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)

    def test_nan_orders_above_infinity(self, rng):
        """The same documented radix-family artifact as radix-select:
        NaN's key code sits above +inf's."""
        data = rng.random(512).astype(np.float32)
        data[9] = np.nan
        data[17] = np.inf
        result = RadiKTopK().run(data, 2)
        assert result.indices.tolist() == [9, 17]

    def test_k_equals_n_runs_zero_passes(self, rng):
        data = rng.integers(0, 16, 512).astype(np.float32)
        result = RadiKTopK().run(data, 512)
        expected_values, expected_indices = reference_topk(data, 512)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)
        assert result.trace.notes["passes"] == 0

    def test_k_equals_one(self, rng):
        data = rng.random(4096).astype(np.float32)
        result = RadiKTopK().run(data, 1)
        assert result.values[0] == data.max()
        assert result.indices[0] == int(np.argmax(data))


class TestPassSchedule:
    def test_widths_stay_within_the_clamp(self, rng):
        result = RadiKTopK().run(rng.random(1 << 16).astype(np.float32), 64)
        passes = result.trace.notes["passes"]
        assert passes >= 1
        for index in range(passes):
            assert 1 <= result.trace.notes[f"width_{index}"] <= MAX_DIGIT_BITS

    def test_bucket_killer_defers_every_pass(self):
        """Survivors never fit the buffer budget, so no pass scatters —
        the write-friendly deferral the strawman lacks."""
        result = RadiKTopK().run(bucket_killer(1 << 14), 8)
        notes = result.trace.notes
        assert notes["deferred_passes"] == notes["passes"] > 0
        kernel_names = [kernel.name for kernel in result.trace.kernels]
        assert not any("filter" in name or "compact" in name for name in kernel_names)

    def test_uniform_input_filters_once_then_compacts(self, rng):
        result = RadiKTopK().run(rng.random(1 << 16).astype(np.float32), 64)
        actions = [
            result.trace.notes[f"action_{index}"]
            for index in range(result.trace.notes["passes"])
        ]
        assert actions.count("filter") == 1
        assert DEFER not in actions[actions.index("filter") :]

    def test_model_n_widens_the_first_digit(self, rng):
        """The schedule is planned at model scale: the same functional
        payload plans a wider first digit when it stands in for a much
        larger input."""
        data = rng.random(4096).astype(np.float32)
        small = RadiKTopK().run(data, 64)
        large = RadiKTopK().run(data, 64, model_n=1 << 26)
        assert large.trace.notes["width_0"] == MAX_DIGIT_BITS
        assert large.trace.notes["width_0"] > small.trace.notes["width_0"]

    def test_model_n_does_not_change_the_answer(self, rng):
        data = rng.random(4096).astype(np.float32)
        plain = RadiKTopK().run(data, 64)
        modeled = RadiKTopK().run(data, 64, model_n=1 << 26)
        assert np.array_equal(plain.values, modeled.values)
        assert np.array_equal(plain.indices, modeled.indices)

    def test_metrics_record_width_and_fractions(self, rng):
        from repro import observability as obs

        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = RadiKTopK().run(uniform_floats(1 << 14), 64)
        passes = result.trace.notes["passes"]
        for name in (
            "radik.survivor_fraction",
            "radik.emitted_fraction",
            "radik.digit_width",
        ):
            assert observation.metrics.histogram(name).count == passes


class TestBatched:
    def test_rows_match_the_per_row_reference(self, rng):
        matrix = rng.random((6, 2048)).astype(np.float32)
        result = batched_radik_topk(matrix, 32)
        assert result.algorithm == "batched-radik"
        assert result.values.shape == (6, 32)
        assert result.indices.shape == (6, 32)
        for row in range(6):
            expected_values, expected_indices = reference_topk(matrix[row], 32)
            assert np.array_equal(result.values[row], expected_values)
            assert np.array_equal(result.indices[row], expected_indices)

    def test_rows_match_the_single_operator_bit_for_bit(self, rng):
        matrix = rng.integers(0, 8, (4, 1024)).astype(np.float32)
        result = batched_radik_topk(matrix, 100)
        single = RadiKTopK()
        for row in range(4):
            expected = single.run(matrix[row], 100)
            assert np.array_equal(result.values[row], expected.values)
            assert np.array_equal(result.indices[row], expected.indices)

    def test_fused_launches_do_not_scale_with_the_batch(self, rng):
        """Every fused pass is one launch triple serving all rows, so a
        bigger batch must not launch proportionally more kernels."""
        small = batched_radik_topk(rng.random((2, 2048)).astype(np.float32), 64)
        large = batched_radik_topk(rng.random((8, 2048)).astype(np.float32), 64)
        assert large.trace.num_launches <= small.trace.num_launches + 3
        per_row_launches = sum(
            RadiKTopK().run(rng.random(2048).astype(np.float32), 64).trace.num_launches
            for _ in range(8)
        )
        assert large.trace.num_launches < per_row_launches

    def test_batched_amortizes_simulated_time(self, device, rng):
        from repro.gpu.timing import trace_time

        matrix = rng.random((8, 2048)).astype(np.float32)
        fused = batched_radik_topk(matrix, 64, device=device)
        per_query = sum(
            RadiKTopK(device).run(matrix[row], 64).simulated_ms(device)
            for row in range(8)
        )
        assert trace_time(fused.trace, device).total_ms < per_query

    def test_model_rows_scale_the_trace_not_the_answer(self, device, rng):
        matrix = rng.random((4, 1024)).astype(np.float32)
        plain = batched_radik_topk(matrix, 16, device=device)
        modeled = batched_radik_topk(matrix, 16, device=device, model_rows=64)
        assert np.array_equal(plain.values, modeled.values)
        assert modeled.trace.notes["batch_rows"] == 64
        from repro.gpu.timing import trace_time

        assert (
            trace_time(modeled.trace, device).total_ms
            > trace_time(plain.trace, device).total_ms
        )

    @pytest.mark.parametrize(
        "matrix,k",
        [
            (np.zeros(16, dtype=np.float32), 4),  # 1-D
            (np.zeros((0, 16), dtype=np.float32), 4),  # no rows
            (np.zeros((2, 16), dtype=np.float32), 0),  # bad k
            (np.zeros((2, 16), dtype=np.float32), 17),  # k > n
            (np.zeros((2, 16), dtype=np.float16), 4),  # unsupported dtype
        ],
    )
    def test_invalid_inputs_raise(self, matrix, k):
        with pytest.raises(InvalidParameterError):
            batched_radik_topk(matrix, k)
