"""Tests for the order-preserving key transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.keys import decode, digit, encode, key_bits, key_bytes
from repro.errors import InvalidParameterError


class TestWidths:
    def test_key_bits(self):
        assert key_bits(np.dtype(np.float32)) == 32
        assert key_bits(np.dtype(np.float64)) == 64
        assert key_bits(np.dtype(np.uint32)) == 32
        assert key_bits(np.dtype(np.int64)) == 64

    def test_key_bytes(self):
        assert key_bytes(np.dtype(np.float32)) == 4
        assert key_bytes(np.dtype(np.uint64)) == 8

    def test_unsupported_dtype(self):
        with pytest.raises(InvalidParameterError):
            key_bits(np.dtype(np.int16))


class TestRoundtrip:
    @given(
        values=arrays(
            np.float32,
            st.integers(min_value=1, max_value=50),
            elements=st.floats(allow_nan=False, allow_infinity=False, width=32),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_float32_roundtrip(self, values):
        assert np.array_equal(decode(encode(values), np.float32), values)

    @given(
        values=arrays(
            np.int64,
            st.integers(min_value=1, max_value=50),
            elements=st.integers(min_value=-(2**62), max_value=2**62),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_int64_roundtrip(self, values):
        assert np.array_equal(decode(encode(values), np.int64), values)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_roundtrip_random(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = (rng.standard_normal(1000) * 1e6).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, 1000, dtype=dtype)
        assert np.array_equal(decode(encode(values), dtype), values)


class TestOrderPreservation:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_encoded_order_matches_value_order(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = (rng.standard_normal(2000) * 100).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, 2000, dtype=dtype)
        codes = encode(values)
        value_order = np.argsort(values, kind="stable")
        code_order = np.argsort(codes, kind="stable")
        assert np.array_equal(values[value_order], values[code_order])

    def test_negative_floats_sort_below_positive(self):
        values = np.array([-1.0, -0.5, 0.0, 0.5, 1.0], dtype=np.float32)
        codes = encode(values)
        assert np.array_equal(np.argsort(codes), np.arange(5))

    def test_negative_zero_orders_with_zero(self):
        values = np.array([-0.0, 0.0], dtype=np.float32)
        codes = encode(values)
        # -0.0 == 0.0 numerically; the codes may differ but must be adjacent
        # and ordered (negative zero first).
        assert codes[0] <= codes[1]


class TestDigit:
    def test_extracts_expected_bits(self):
        codes = np.array([0xAABBCCDD], dtype=np.uint32)
        assert digit(codes, 0)[0] == 0xDD
        assert digit(codes, 8)[0] == 0xCC
        assert digit(codes, 16)[0] == 0xBB
        assert digit(codes, 24)[0] == 0xAA

    def test_digit_width(self):
        codes = np.array([0xFF], dtype=np.uint32)
        assert digit(codes, 0, digit_bits=4)[0] == 0xF

    def test_invalid_shift(self):
        with pytest.raises(InvalidParameterError):
            digit(np.array([1], dtype=np.uint32), -1)
