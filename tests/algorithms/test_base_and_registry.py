"""Tests for the shared algorithm interface and the registry."""

import numpy as np
import pytest

from repro.algorithms.base import (
    TopKAlgorithm,
    reference_topk,
    validate_topk_args,
)
from repro.algorithms.registry import (
    EVALUATED_ALGORITHMS,
    create,
    list_algorithms,
    register,
)
from repro.errors import InvalidParameterError


class TestValidation:
    def test_two_dimensional_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_topk_args(np.zeros((2, 2), dtype=np.float32), 1)

    def test_non_positive_k_rejected(self):
        data = np.zeros(4, dtype=np.float32)
        with pytest.raises(InvalidParameterError):
            validate_topk_args(data, 0)
        with pytest.raises(InvalidParameterError):
            validate_topk_args(data, -1)

    def test_k_above_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_topk_args(np.zeros(4, dtype=np.float32), 5)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_topk_args(np.zeros(4, dtype=np.int16), 1)


class TestReferenceTopK:
    def test_descending_values(self, rng):
        data = rng.random(100).astype(np.float32)
        values, indices = reference_topk(data, 10)
        assert np.array_equal(values, np.sort(data)[::-1][:10])
        assert np.array_equal(data[indices], values)

    def test_tie_break_prefers_lower_index(self):
        data = np.array([5.0, 7.0, 5.0, 7.0], dtype=np.float32)
        _, indices = reference_topk(data, 3)
        assert indices.tolist() == [1, 3, 0]

    def test_uint64_extremes(self):
        data = np.array([0, 2**64 - 1, 2**63], dtype=np.uint64)
        values, _ = reference_topk(data, 2)
        assert values.tolist() == [2**64 - 1, 2**63]


class TestRegistry:
    def test_all_evaluated_algorithms_instantiate(self, device):
        for name in EVALUATED_ALGORITHMS:
            algorithm = create(name, device)
            assert algorithm.name == name
            assert algorithm.device is device

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(InvalidParameterError, match="bitonic"):
            create("quantum-select")

    def test_list_contains_the_five_plus_register_variant(self):
        names = set(list_algorithms())
        assert set(EVALUATED_ALGORITHMS) <= names
        assert "per-thread-registers" in names

    def test_register_custom_algorithm(self, rng):
        class Oracle(TopKAlgorithm):
            name = "oracle"

            def run(self, data, k, model_n=None):
                from repro.gpu.counters import ExecutionTrace

                values, indices = reference_topk(data, k)
                return self._result(
                    values, indices, ExecutionTrace(), k, len(data), model_n
                )

        register("oracle", Oracle)
        data = rng.random(64).astype(np.float32)
        result = create("oracle").run(data, 4)
        assert result.algorithm == "oracle"
        assert len(result.values) == 4


class TestResultApi:
    def test_simulated_time_uses_default_device(self, rng):
        from repro.algorithms.radix_sort import SortTopK

        result = SortTopK().run(rng.random(128).astype(np.float32), 4)
        assert result.simulated_ms() > 0
        assert result.model_n == 128

    def test_model_n_recorded(self, rng):
        from repro.algorithms.radix_sort import SortTopK

        result = SortTopK().run(
            rng.random(128).astype(np.float32), 4, model_n=1 << 20
        )
        assert result.model_n == 1 << 20
        assert result.n == 128
