"""Tests for radix-select top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.radix_select import RadixSelectTopK
from repro.data.distributions import (
    bucket_killer,
    increasing,
    uniform_floats,
    uniform_uints,
)


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(10, 1), (100, 7), (5000, 64), (5000, 5000)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = RadixSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_all_dtypes_with_negatives(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = (rng.standard_normal(2000) * 1000).astype(dtype)
        else:
            info = np.iinfo(dtype)
            data = rng.integers(info.min, info.max, 2000, dtype=dtype)
        result = RadixSelectTopK().run(data, 31)
        expected, _ = reference_topk(data, 31)
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_heavy_duplicates_padding_path(self, rng):
        """When the k-th value ties with many elements, the final padding
        step (Section 4.2) must fill the result with the tied value."""
        data = np.ones(1000, dtype=np.float32)
        data[:5] = 2.0
        result = RadixSelectTopK().run(data, 100)
        assert (result.values[:5] == 2.0).all()
        assert (result.values[5:] == 1.0).all()
        assert len(np.unique(result.indices)) == 100

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_random_ints(self, seed):
        generator = np.random.default_rng(seed)
        data = generator.integers(-100, 100, 300).astype(np.int32)
        k = int(generator.integers(1, 300))
        result = RadixSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestDataDependentCost:
    def test_uniform_floats_first_pass_keeps_half(self):
        """U(0, 1) floats share the top exponent byte for values in
        [0.5, 1), so eta_0 ~= 0.5."""
        result = RadixSelectTopK().run(uniform_floats(1 << 16), 64)
        assert result.trace.notes["eta_0"] == pytest.approx(0.5, abs=0.05)

    def test_uniform_uints_reduce_maximally(self, device):
        """Figure 11b: uniform uints give the maximal 256x reduction."""
        result = RadixSelectTopK().run(uniform_uints(1 << 16), 64)
        assert result.trace.notes["eta_0"] < 0.02

    def test_uints_faster_than_floats(self, device):
        floats = RadixSelectTopK(device).run(
            uniform_floats(1 << 16), 64, model_n=1 << 29
        )
        uints = RadixSelectTopK(device).run(
            uniform_uints(1 << 16), 64, model_n=1 << 29
        )
        assert uints.simulated_time(device).total < (
            floats.simulated_time(device).total * 0.7
        )

    def test_bucket_killer_degrades_to_sort(self, device):
        """Figure 12b: every pass eliminates one element, so the scatter
        write is skipped and each pass costs a full scan, matching sort."""
        from repro.algorithms.radix_sort import SortTopK

        killer = RadixSelectTopK(device).run(
            bucket_killer(1 << 16), 64, model_n=1 << 29
        )
        sort = SortTopK(device).run(uniform_floats(1 << 14), 64, model_n=1 << 29)
        ratio = killer.simulated_time(device).total / sort.simulated_time(device).total
        assert 0.8 < ratio < 1.2

    def test_no_reduction_skips_the_clustering_write(self):
        """An all-tied digit means zero reduction, so the pass skips its
        scatter and reuses the input (Section 4.2)."""
        result = RadixSelectTopK().run(np.ones(1 << 12, dtype=np.float32), 8)
        scatter_kernels = [
            kernel
            for kernel in result.trace.kernels
            if kernel.name.startswith("select-scatter")
        ]
        assert len(scatter_kernels) == 0
        assert result.trace.notes["passes"] == 4

    def test_bucket_killer_never_skips(self):
        """The adversarial input removes exactly one element per pass —
        nonzero reduction, so every pass pays its full scatter."""
        result = RadixSelectTopK().run(bucket_killer(1 << 14), 8)
        scatter_kernels = [
            kernel
            for kernel in result.trace.kernels
            if kernel.name.startswith("select-scatter")
        ]
        assert len(scatter_kernels) == result.trace.notes["passes"]

    def test_distribution_does_not_change_the_answer(self, rng):
        for generator in (uniform_floats, increasing, bucket_killer):
            data = generator(4096)
            result = RadixSelectTopK().run(data, 32)
            expected, _ = reference_topk(data, 32)
            assert np.array_equal(np.sort(result.values)[::-1], expected)
