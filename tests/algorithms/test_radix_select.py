"""Tests for radix-select top-k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.radix_select import RadixSelectTopK
from repro.data.distributions import (
    bucket_killer,
    increasing,
    uniform_floats,
    uniform_uints,
)


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(10, 1), (100, 7), (5000, 64), (5000, 5000)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = RadixSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_all_dtypes_with_negatives(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            data = (rng.standard_normal(2000) * 1000).astype(dtype)
        else:
            info = np.iinfo(dtype)
            data = rng.integers(info.min, info.max, 2000, dtype=dtype)
        result = RadixSelectTopK().run(data, 31)
        expected, _ = reference_topk(data, 31)
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_heavy_duplicates_padding_path(self, rng):
        """When the k-th value ties with many elements, the final padding
        step (Section 4.2) must fill the result with the tied value."""
        data = np.ones(1000, dtype=np.float32)
        data[:5] = 2.0
        result = RadixSelectTopK().run(data, 100)
        assert (result.values[:5] == 2.0).all()
        assert (result.values[5:] == 1.0).all()
        assert len(np.unique(result.indices)) == 100

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_random_ints(self, seed):
        generator = np.random.default_rng(seed)
        data = generator.integers(-100, 100, 300).astype(np.int32)
        k = int(generator.integers(1, 300))
        result = RadixSelectTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestDataDependentCost:
    def test_uniform_floats_first_pass_keeps_half(self):
        """U(0, 1) floats share the top exponent byte for values in
        [0.5, 1), so eta_0 ~= 0.5."""
        result = RadixSelectTopK().run(uniform_floats(1 << 16), 64)
        assert result.trace.notes["eta_0"] == pytest.approx(0.5, abs=0.05)

    def test_uniform_uints_reduce_maximally(self, device):
        """Figure 11b: uniform uints give the maximal 256x reduction."""
        result = RadixSelectTopK().run(uniform_uints(1 << 16), 64)
        assert result.trace.notes["eta_0"] < 0.02

    def test_uints_faster_than_floats(self, device):
        floats = RadixSelectTopK(device).run(
            uniform_floats(1 << 16), 64, model_n=1 << 29
        )
        uints = RadixSelectTopK(device).run(
            uniform_uints(1 << 16), 64, model_n=1 << 29
        )
        assert uints.simulated_time(device).total < (
            floats.simulated_time(device).total * 0.7
        )

    def test_bucket_killer_degrades_to_sort(self, device):
        """Figure 12b: every pass eliminates one element, so the scatter
        write is skipped and each pass costs a full scan, matching sort."""
        from repro.algorithms.radix_sort import SortTopK

        killer = RadixSelectTopK(device).run(
            bucket_killer(1 << 16), 64, model_n=1 << 29
        )
        sort = SortTopK(device).run(uniform_floats(1 << 14), 64, model_n=1 << 29)
        ratio = killer.simulated_time(device).total / sort.simulated_time(device).total
        assert 0.8 < ratio < 1.2

    def test_no_reduction_skips_the_clustering_write(self):
        """An all-tied digit means zero reduction, so the pass skips its
        scatter and reuses the input (Section 4.2)."""
        result = RadixSelectTopK().run(np.ones(1 << 12, dtype=np.float32), 8)
        scatter_kernels = [
            kernel
            for kernel in result.trace.kernels
            if kernel.name.startswith("select-scatter")
        ]
        assert len(scatter_kernels) == 0
        assert result.trace.notes["passes"] == 4

    def test_bucket_killer_never_skips(self):
        """The adversarial input removes exactly one element per pass —
        nonzero reduction, so every pass pays its full scatter."""
        result = RadixSelectTopK().run(bucket_killer(1 << 14), 8)
        scatter_kernels = [
            kernel
            for kernel in result.trace.kernels
            if kernel.name.startswith("select-scatter")
        ]
        assert len(scatter_kernels) == result.trace.notes["passes"]

    def test_distribution_does_not_change_the_answer(self, rng):
        for generator in (uniform_floats, increasing, bucket_killer):
            data = generator(4096)
            result = RadixSelectTopK().run(data, 32)
            expected, _ = reference_topk(data, 32)
            assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestTieBreakCanonicalOrder:
    """Duplicate-heavy inputs: the result must be bit-equal to the CPU
    reference — values AND indices — i.e. ties resolve to the (value
    descending, lower row first) canonical order, not to whatever order
    the scatter happened to preserve."""

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.uint32, np.int64]
    )
    def test_duplicate_heavy_matches_reference_bit_for_bit(self, dtype, rng):
        # Eight distinct values over 4096 rows: every selection boundary
        # lands inside a tie group.
        if np.dtype(dtype).kind == "f":
            data = rng.integers(0, 8, 4096).astype(dtype)
        else:
            data = rng.integers(0, 8, 4096, dtype=dtype)
        for k in (1, 7, 100, 1000):
            result = RadixSelectTopK().run(data, k)
            expected_values, expected_indices = reference_topk(data, k)
            assert np.array_equal(result.values, expected_values)
            assert np.array_equal(result.indices, expected_indices)

    def test_tied_kth_value_takes_lowest_rows(self):
        data = np.zeros(512, dtype=np.float32)
        data[::2] = 1.0  # 256 tied maxima on the even rows
        result = RadixSelectTopK().run(data, 10)
        assert np.array_equal(result.indices, np.arange(0, 20, 2))

    def test_negative_float_ties(self, rng):
        data = np.repeat(
            np.array([-1.5, -2.5, -0.5], dtype=np.float32), 100
        )
        result = RadixSelectTopK().run(data, 150)
        expected_values, expected_indices = reference_topk(data, 150)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)


class TestAdversarialInputs:
    def test_all_equal_input(self):
        data = np.full(2048, 3.25, dtype=np.float32)
        result = RadixSelectTopK().run(data, 64)
        assert (result.values == 3.25).all()
        assert np.array_equal(result.indices, np.arange(64))

    def test_bucket_killer_matches_reference_exactly(self):
        data = bucket_killer(1 << 14)
        result = RadixSelectTopK().run(data, 100)
        expected_values, expected_indices = reference_topk(data, 100)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)

    def test_infinity_mix_matches_reference(self, rng):
        data = rng.standard_normal(1024).astype(np.float32)
        data[10:20] = np.inf
        data[30:40] = -np.inf
        result = RadixSelectTopK().run(data, 32)
        expected_values, expected_indices = reference_topk(data, 32)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)

    def test_nan_orders_above_infinity(self, rng):
        """The documented radix-family artifact: NaN's key code exceeds
        +inf's, so NaN rows surface first, then the infinities."""
        data = rng.random(512).astype(np.float32)
        data[7] = np.nan
        data[11] = np.inf
        result = RadixSelectTopK().run(data, 2)
        assert result.indices.tolist() == [7, 11]

    def test_k_equals_n_is_a_full_canonical_sort(self, rng):
        data = rng.integers(0, 4, 256).astype(np.float32)
        result = RadixSelectTopK().run(data, 256)
        expected_values, expected_indices = reference_topk(data, 256)
        assert np.array_equal(result.values, expected_values)
        assert np.array_equal(result.indices, expected_indices)


class TestEmittedFractionMetric:
    """The per-pass emitted fraction is recorded alongside the survivor
    fraction — both as an observability histogram and as trace notes."""

    def _observed_run(self, data, k):
        from repro import observability as obs

        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = RadixSelectTopK().run(data, k)
        return observation.metrics, result

    def test_both_histograms_record_every_pass(self, rng):
        metrics, result = self._observed_run(
            rng.random(1 << 14).astype(np.float32), 64
        )
        passes = result.trace.notes["passes"]
        survivor = metrics.histogram("radix_select.survivor_fraction")
        emitted = metrics.histogram("radix_select.emitted_fraction")
        assert survivor.count == passes
        assert emitted.count == passes
        assert 0.0 <= emitted.minimum and emitted.maximum <= 1.0

    def test_all_equal_input_emits_nothing(self):
        """Every pass of an all-equal input keeps the whole candidate set
        (eta = 1) and emits no element early."""
        metrics, result = self._observed_run(
            np.ones(1 << 12, dtype=np.float32), 8
        )
        emitted = metrics.histogram("radix_select.emitted_fraction")
        survivor = metrics.histogram("radix_select.survivor_fraction")
        assert emitted.count == result.trace.notes["passes"]
        assert emitted.maximum == 0.0
        assert survivor.minimum == 1.0

    def test_trace_notes_mirror_the_pass_fractions(self, rng):
        result = RadixSelectTopK().run(
            rng.random(1 << 14).astype(np.float32), 64
        )
        for index in range(result.trace.notes["passes"]):
            eta = result.trace.notes[f"eta_{index}"]
            emitted = result.trace.notes[f"emitted_{index}"]
            assert 0.0 <= eta <= 1.0
            assert 0.0 <= emitted <= 1.0
            # A pass never emits and keeps more than it saw.
            assert eta + emitted <= 1.0 + 1e-12


class TestPredictedVsTracedPasses:
    """The cost model's early-break accounting must mirror the kernel:
    fed the measured survivor and emitted fractions, predict_passes equals
    the trace's ``passes`` note exactly."""

    DTYPES = [np.float32, np.float64, np.uint32, np.uint64, np.int32, np.int64]

    @staticmethod
    def _profile_for(dtype):
        from repro.costmodel.base import UNIFORM_FLOAT, UNIFORM_UINT

        return UNIFORM_FLOAT if np.dtype(dtype).kind == "f" else UNIFORM_UINT

    @staticmethod
    def _data_for(dtype, n, rng):
        if np.dtype(dtype).kind == "f":
            return rng.random(n).astype(dtype)
        info = np.iinfo(dtype)
        return rng.integers(info.min, info.max, n, dtype=dtype)

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("k", [1, 8, 64, 512])
    def test_measured_fractions_round_trip_exactly(self, dtype, k, rng):
        from dataclasses import replace

        from repro.costmodel.radix_model import RadixSelectModel

        n = 1 << 16
        result = RadixSelectTopK().run(self._data_for(dtype, n, rng), k)
        traced = result.trace.notes["passes"]
        etas = tuple(
            result.trace.notes[f"eta_{index}"] for index in range(traced)
        )
        emitted = tuple(
            result.trace.notes[f"emitted_{index}"] for index in range(traced)
        )
        profile = replace(
            self._profile_for(dtype), radix_survivor_fractions=etas
        )
        predicted = RadixSelectModel().predict_passes(
            n, k, np.dtype(dtype), profile, emitted_fractions=emitted
        )
        assert predicted == traced

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_survivors_alone_break_at_most_one_pass_early(self, dtype, rng):
        """Without the measured emitted fractions the model cannot know
        how many result slots each pass filled, so it may break one pass
        early — never more, and never later than the kernel."""
        from dataclasses import replace

        from repro.costmodel.radix_model import RadixSelectModel

        n = 1 << 16
        for k in (8, 64, 512):
            result = RadixSelectTopK().run(self._data_for(dtype, n, rng), k)
            traced = result.trace.notes["passes"]
            etas = tuple(
                result.trace.notes[f"eta_{index}"] for index in range(traced)
            )
            profile = replace(
                self._profile_for(dtype), radix_survivor_fractions=etas
            )
            predicted = RadixSelectModel().predict_passes(
                n, k, np.dtype(dtype), profile
            )
            assert traced - 1 <= predicted <= traced
