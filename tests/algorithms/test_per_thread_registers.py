"""Tests for the Appendix A register-based per-thread top-k."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.algorithms.per_thread import PerThreadTopK
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.data.distributions import decreasing, increasing, uniform_floats


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(100, 4), (5000, 32), (5000, 600)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = PerThreadRegisterTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_no_capacity_failure(self, device):
        """Unlike the shared-memory variant, the register variant degrades
        instead of failing (the buffer spills to local memory)."""
        algorithm = PerThreadRegisterTopK(device)
        assert algorithm.supports(1 << 20, 1024, np.dtype(np.float32))


class TestSpillBehaviour:
    def test_no_spill_at_small_k(self, rng):
        result = PerThreadRegisterTopK().run(
            uniform_floats(1 << 12), 16, model_n=1 << 24
        )
        assert result.trace.notes["spill_fraction"] == 0.0

    def test_spill_from_64(self, rng):
        result = PerThreadRegisterTopK().run(
            uniform_floats(1 << 12), 64, model_n=1 << 24
        )
        assert result.trace.notes["spill_fraction"] > 0.0

    def test_sharp_slope_between_32_and_64(self, device):
        """Figure 18: the spill onset produces the visible knee."""
        data = uniform_floats(1 << 14)
        algorithm = PerThreadRegisterTopK(device)
        at_32 = algorithm.run(data, 32, model_n=1 << 29).simulated_time(device)
        at_64 = algorithm.run(data, 64, model_n=1 << 29).simulated_time(device)
        at_16 = algorithm.run(data, 16, model_n=1 << 29).simulated_time(device)
        knee = (at_64.total / at_32.total) / max(at_32.total / at_16.total, 1e-9)
        assert knee > 1.2


class TestVersusSharedMemoryVariant:
    def test_gap_widens_on_increasing_input(self, device):
        """Figure 18: list updates cost k, heap updates cost log k, so the
        register variant falls behind the most when every element inserts."""
        k = 64
        registers = PerThreadRegisterTopK(device)
        shared = PerThreadTopK(device)

        def gap(data):
            register_time = registers.run(data, k, model_n=1 << 29)
            shared_time = shared.run(data, k, model_n=1 << 29)
            return (
                register_time.simulated_time(device).total
                / shared_time.simulated_time(device).total
            )

        assert gap(increasing(1 << 14)) > gap(uniform_floats(1 << 14))

    def test_gap_closes_on_decreasing_input(self, device):
        """No updates after warm-up: both variants are scan-bound."""
        k = 32
        data = decreasing(1 << 14)
        register_result = PerThreadRegisterTopK(device).run(
            data, k, model_n=1 << 29
        )
        shared_result = PerThreadTopK(device).run(data, k, model_n=1 << 29)
        ratio = (
            register_result.simulated_time(device).total
            / shared_result.simulated_time(device).total
        )
        assert ratio < 1.5
