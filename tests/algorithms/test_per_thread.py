"""Tests for the per-thread heap top-k, including lockstep-engine validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.per_thread import PerThreadTopK, lockstep_topk
from repro.cpu.pq_topk import heap_topk_stream
from repro.data.distributions import decreasing, increasing, uniform_floats
from repro.errors import ResourceExhaustedError


class TestLockstepEngine:
    def test_single_thread_matches_real_heap(self, rng):
        """The state-matrix engine makes the same insert decisions as a
        real min-heap (decisions depend only on the running minimum)."""
        data = rng.random(500).astype(np.float32)
        state, _, stats = lockstep_topk(data, 16, num_threads=1)
        heap_values, heap_inserts = heap_topk_stream(data, 16)
        assert np.array_equal(np.sort(state[0]), np.sort(heap_values))
        assert stats.inserts == heap_inserts

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_insert_counts_match_heap_for_any_stream(self, seed):
        data = np.random.default_rng(seed).random(200).astype(np.float32)
        _, _, stats = lockstep_topk(data, 8, num_threads=1)
        _, heap_inserts = heap_topk_stream(data, 8)
        assert stats.inserts == heap_inserts

    def test_increasing_stream_inserts_every_element(self):
        data = increasing(300)
        _, _, stats = lockstep_topk(data, 16, num_threads=1)
        assert stats.inserts == 300

    def test_decreasing_stream_inserts_only_warmup(self):
        data = decreasing(300)
        _, _, stats = lockstep_topk(data, 16, num_threads=1)
        assert stats.inserts == 16

    def test_strided_assignment(self, rng):
        """Thread t sees elements t, t + nt, ... (the coalesced order)."""
        data = np.arange(64, dtype=np.float32)
        state, state_indices, _ = lockstep_topk(data, 2, num_threads=4)
        # Thread 0's stream is 0, 4, 8, ..., 60 -> top-2 are 60 and 56.
        assert set(state[0]) == {60.0, 56.0}
        assert set(state_indices[0]) == {60, 56}

    def test_warp_events_bounded_by_steps(self, rng):
        data = rng.random(4096).astype(np.float32)
        _, _, stats = lockstep_topk(data, 8, num_threads=64)
        warps = 2  # 64 threads / 32
        assert stats.warp_insert_events <= stats.steps * warps

    def test_short_streams_fill_partially(self):
        data = np.array([5.0, 3.0], dtype=np.float32)
        state, state_indices, _ = lockstep_topk(data, 4, num_threads=1)
        valid = state_indices[0] >= 0
        assert set(state[0][valid]) == {5.0, 3.0}


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(50, 3), (1000, 32), (10000, 128)])
    def test_matches_reference(self, n, k, rng):
        data = rng.random(n).astype(np.float32)
        result = PerThreadTopK().run(data, k)
        expected, _ = reference_topk(data, k)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert np.array_equal(np.sort(data[result.indices])[::-1], expected)

    def test_duplicates(self, rng):
        data = rng.integers(0, 5, 2000).astype(np.int32)
        result = PerThreadTopK().run(data, 64)
        expected, _ = reference_topk(data, 64)
        assert np.array_equal(np.sort(result.values)[::-1], expected)


class TestResourceLimits:
    """Section 4.1: shared memory bounds k."""

    def test_floats_fail_past_384(self, device):
        algorithm = PerThreadTopK(device)
        assert algorithm.supports(1 << 20, 256, np.dtype(np.float32))
        assert not algorithm.supports(1 << 20, 512, np.dtype(np.float32))

    def test_doubles_fail_past_192(self, device):
        algorithm = PerThreadTopK(device)
        assert algorithm.supports(1 << 20, 128, np.dtype(np.float64))
        assert not algorithm.supports(1 << 20, 256, np.dtype(np.float64))

    def test_running_beyond_capacity_raises(self, rng):
        data = rng.random(4096).astype(np.float32)
        with pytest.raises(ResourceExhaustedError):
            PerThreadTopK().run(data, 512)


class TestCostBehaviour:
    def test_occupancy_drops_with_k(self, device, rng):
        data = rng.random(1 << 14).astype(np.float32)
        algorithm = PerThreadTopK(device)
        small = algorithm.run(data, 8, model_n=1 << 29)
        large = algorithm.run(data, 256, model_n=1 << 29)
        assert (
            large.trace.kernels[0].occupancy < small.trace.kernels[0].occupancy
        )

    def test_steep_slope_past_32(self, device, rng):
        """Figure 11a: occupancy + divergence kick in beyond k = 32."""
        data = rng.random(1 << 14).astype(np.float32)
        algorithm = PerThreadTopK(device)
        at_32 = algorithm.run(data, 32, model_n=1 << 29).simulated_time(device)
        at_256 = algorithm.run(data, 256, model_n=1 << 29).simulated_time(device)
        assert at_256.total > 3 * at_32.total

    def test_increasing_distribution_hurts(self, device):
        """Figure 12a: sorted input makes every element update the heap."""
        k = 32
        algorithm = PerThreadTopK(device)
        uniform = algorithm.run(
            uniform_floats(1 << 14), k, model_n=1 << 29
        ).simulated_time(device)
        sorted_input = algorithm.run(
            increasing(1 << 14), k, model_n=1 << 29
        ).simulated_time(device)
        assert 1.3 < sorted_input.total / uniform.total < 4.0

    def test_trace_notes_record_inserts(self, rng):
        result = PerThreadTopK().run(uniform_floats(1 << 12), 16, model_n=1 << 24)
        assert result.trace.notes["inserts"] > 0
        assert result.trace.notes["warp_insert_events"] > 0
