"""Tests for radix sort and the Sort-and-Choose baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import reference_topk
from repro.algorithms.radix_sort import (
    SortTopK,
    exclusive_prefix_sum,
    radix_sort,
    radix_sort_pass,
)
from repro.data.distributions import bucket_killer, uniform_floats


class TestPrefixSum:
    def test_exclusive_semantics(self):
        counts = np.array([3, 1, 0, 2])
        assert exclusive_prefix_sum(counts).tolist() == [0, 3, 4, 4]

    def test_empty_behaviour(self):
        assert exclusive_prefix_sum(np.array([5])).tolist() == [0]


class TestRadixSortPass:
    def test_single_pass_sorts_by_digit_stably(self, rng):
        codes = rng.integers(0, 2**16, 100).astype(np.uint32)
        sorted_codes, payload, histogram = radix_sort_pass(
            codes, 0, np.arange(100, dtype=np.int64)
        )
        digits = sorted_codes & 0xFF
        assert np.all(np.diff(digits.astype(np.int64)) >= 0)
        assert histogram.sum() == 100
        # Stability: equal digits keep input order.
        for value in np.unique(digits):
            rows = payload[digits == value]
            assert np.all(np.diff(rows) > 0)


class TestRadixSort:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32, np.uint64]
    )
    def test_matches_numpy_sort(self, dtype, rng):
        if np.dtype(dtype).kind == "f":
            values = (rng.standard_normal(3000) * 1e4).astype(dtype)
        else:
            info = np.iinfo(dtype)
            values = rng.integers(info.min, info.max, 3000, dtype=dtype)
        sorted_values, permutation = radix_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))
        assert np.array_equal(values[permutation], sorted_values)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_uniform_floats(self, seed):
        values = np.random.default_rng(seed).random(500).astype(np.float32)
        sorted_values, _ = radix_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))

    def test_payload_carried_through(self, rng):
        values = rng.random(200).astype(np.float32)
        payload = rng.integers(0, 1000, 200)
        sorted_values, sorted_payload = radix_sort(values, payload)
        order = np.argsort(values, kind="stable")
        assert np.array_equal(sorted_payload, payload[order])

    def test_duplicates(self, rng):
        values = rng.integers(0, 4, 500).astype(np.int32)
        sorted_values, _ = radix_sort(values)
        assert np.array_equal(sorted_values, np.sort(values))


class TestSortTopK:
    def test_matches_reference(self, rng):
        data = rng.random(5000).astype(np.float32)
        result = SortTopK().run(data, 50)
        expected, _ = reference_topk(data, 50)
        assert np.array_equal(result.values, expected)
        assert np.array_equal(data[result.indices], result.values)

    def test_four_passes_for_32_bit_keys(self, rng):
        result = SortTopK().run(rng.random(256).astype(np.float32), 10)
        assert result.trace.notes["passes"] == 4
        # histogram + prefix + scatter per pass
        assert result.trace.num_launches == 12

    def test_eight_passes_for_doubles(self, rng):
        result = SortTopK().run(rng.random(256), 10)
        assert result.trace.notes["passes"] == 8

    def test_cost_independent_of_k(self, device, rng):
        data = rng.random(1024).astype(np.float32)
        algorithm = SortTopK(device)
        small = algorithm.run(data, 1, model_n=1 << 29).simulated_time(device)
        large = algorithm.run(data, 512, model_n=1 << 29).simulated_time(device)
        assert small.total == pytest.approx(large.total)

    def test_cost_independent_of_distribution(self, device):
        algorithm = SortTopK(device)
        uniform = algorithm.run(uniform_floats(4096), 64, model_n=1 << 29)
        killer = algorithm.run(bucket_killer(4096), 64, model_n=1 << 29)
        assert uniform.simulated_time(device).total == pytest.approx(
            killer.simulated_time(device).total
        )
