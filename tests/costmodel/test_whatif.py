"""Tests for the what-if hardware analysis."""

import numpy as np
import pytest

from repro.costmodel.whatif import (
    crossover_vs_bandwidth_ratio,
    sweep_devices,
)
from repro.errors import InvalidParameterError


class TestCrossoverSweep:
    def test_crossover_moves_up_with_shared_bandwidth(self):
        """Faster shared memory widens bitonic's winning range."""
        points = crossover_vs_bandwidth_ratio([2.0, 6.0, 12.0, 24.0])
        crossovers = [
            point.crossover_k if point.crossover_k is not None else 1 << 20
            for point in points
        ]
        assert crossovers == sorted(crossovers)
        assert crossovers[0] < crossovers[-1]

    def test_starved_shared_memory_kills_bitonic_early(self):
        (point,) = crossover_vs_bandwidth_ratio([0.5])
        assert point.crossover_k is not None
        assert point.crossover_k <= 64

    def test_uint_profile(self):
        from repro.costmodel.base import UNIFORM_UINT

        (point,) = crossover_vs_bandwidth_ratio(
            [11.6], dtype=np.uint32, profile=UNIFORM_UINT
        )
        assert point.crossover_k is not None
        assert 64 <= point.crossover_k <= 512

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            crossover_vs_bandwidth_ratio([])
        with pytest.raises(InvalidParameterError):
            crossover_vs_bandwidth_ratio([-1.0])


class TestDeviceSweep:
    def test_covers_all_registered_devices(self):
        table = sweep_devices(ks=(1, 64, 256))
        assert {"titan-x-maxwell", "gtx-1080", "v100"} <= set(table)
        for choices in table.values():
            assert set(choices) == {1, 64, 256}

    def test_midrange_choice_is_bitonic_everywhere(self):
        table = sweep_devices(ks=(256,))
        for device_name, choices in table.items():
            assert choices[256] == "bitonic", device_name


class TestPredictionDeltas:
    def test_q_error_pinned_on_hand_computed_samples(self):
        from repro.costmodel.whatif import PredictionDelta, prediction_deltas

        deltas = prediction_deltas(
            [
                ("bitonic", 2.0, 1.0),  # overestimate: q = 2/1
                ("radik", 1.0, 4.0),  # underestimate: q = 4/1
                ("sort", 3.0, 3.0),  # perfect: q = 1
            ]
        )
        assert [delta.q_error for delta in deltas] == [2.0, 4.0, 1.0]
        assert [delta.delta_ms for delta in deltas] == [-1.0, 3.0, 0.0]
        assert deltas[1].ratio == pytest.approx(4.0)
        payload = deltas[0].to_dict()
        assert payload["kernel"] == "bitonic"
        assert payload["q_error"] == 2.0
        assert isinstance(deltas[0], PredictionDelta)

    def test_rejects_non_positive_times(self):
        from repro.costmodel.whatif import prediction_deltas

        with pytest.raises(InvalidParameterError):
            prediction_deltas([("bitonic", 0.0, 1.0)])
        with pytest.raises(InvalidParameterError):
            prediction_deltas([("bitonic", 1.0, -2.0)])
