"""Tests for the what-if hardware analysis."""

import numpy as np
import pytest

from repro.costmodel.whatif import (
    crossover_vs_bandwidth_ratio,
    sweep_devices,
)
from repro.errors import InvalidParameterError


class TestCrossoverSweep:
    def test_crossover_moves_up_with_shared_bandwidth(self):
        """Faster shared memory widens bitonic's winning range."""
        points = crossover_vs_bandwidth_ratio([2.0, 6.0, 12.0, 24.0])
        crossovers = [
            point.crossover_k if point.crossover_k is not None else 1 << 20
            for point in points
        ]
        assert crossovers == sorted(crossovers)
        assert crossovers[0] < crossovers[-1]

    def test_starved_shared_memory_kills_bitonic_early(self):
        (point,) = crossover_vs_bandwidth_ratio([0.5])
        assert point.crossover_k is not None
        assert point.crossover_k <= 64

    def test_uint_profile(self):
        from repro.costmodel.base import UNIFORM_UINT

        (point,) = crossover_vs_bandwidth_ratio(
            [11.6], dtype=np.uint32, profile=UNIFORM_UINT
        )
        assert point.crossover_k is not None
        assert 64 <= point.crossover_k <= 512

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            crossover_vs_bandwidth_ratio([])
        with pytest.raises(InvalidParameterError):
            crossover_vs_bandwidth_ratio([-1.0])


class TestDeviceSweep:
    def test_covers_all_registered_devices(self):
        table = sweep_devices(ks=(1, 64, 256))
        assert {"titan-x-maxwell", "gtx-1080", "v100"} <= set(table)
        for choices in table.values():
            assert set(choices) == {1, 64, 256}

    def test_midrange_choice_is_bitonic_everywhere(self):
        table = sweep_devices(ks=(256,))
        for device_name, choices in table.items():
            assert choices[256] == "bitonic", device_name
