"""Tests for the Section 7 cost models."""

import numpy as np
import pytest

from repro.costmodel.base import (
    BUCKET_KILLER,
    INCREASING_FLOAT,
    UNIFORM_FLOAT,
    UNIFORM_UINT,
    get_profile,
)
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.other_models import (
    BucketSelectModel,
    PerThreadModel,
    expected_heap_inserts,
)
from repro.costmodel.radix_model import RadixSelectModel, SortModel
from repro.errors import InvalidParameterError

N = 1 << 29


class TestProfiles:
    def test_lookup(self):
        assert get_profile("uniform-float") is UNIFORM_FLOAT
        assert get_profile("bucket-killer") is BUCKET_KILLER

    def test_unknown_profile(self):
        with pytest.raises(InvalidParameterError):
            get_profile("cauchy")

    def test_uniform_uint_reduces_maximally(self):
        assert all(f == 1 / 256 for f in UNIFORM_UINT.radix_survivor_fractions)


class TestRadixModel:
    def test_paper_worked_example(self, device):
        """Section 7: the first pass histogram read alone is ~8.6 ms; the
        full uniform-float prediction lands near 30 ms."""
        model = RadixSelectModel(device)
        assert model.predict_ms(N, 64) == pytest.approx(30, rel=0.1)

    def test_prediction_is_k_independent(self, device):
        model = RadixSelectModel(device)
        assert model.predict_seconds(N, 8) == pytest.approx(
            model.predict_seconds(N, 1024)
        )

    def test_uints_cheaper_than_floats(self, device):
        model = RadixSelectModel(device)
        floats = model.predict_seconds(N, 64, np.float32, UNIFORM_FLOAT)
        uints = model.predict_seconds(N, 64, np.uint32, UNIFORM_UINT)
        assert uints < floats * 0.7

    def test_bucket_killer_costs_like_sort(self, device):
        radix = RadixSelectModel(device).predict_seconds(
            N, 64, np.float32, BUCKET_KILLER
        )
        sort = SortModel(device).predict_seconds(N, 64)
        assert radix == pytest.approx(sort, rel=0.15)


class TestSortModel:
    def test_flat_in_k_and_distribution(self, device):
        model = SortModel(device)
        assert model.predict_seconds(N, 1) == model.predict_seconds(N, 1024)
        assert model.predict_seconds(N, 64, np.float32, BUCKET_KILLER) == (
            model.predict_seconds(N, 64, np.float32, UNIFORM_FLOAT)
        )

    def test_doubles_cost_more(self, device):
        model = SortModel(device)
        floats = model.predict_seconds(N, 64, np.float32)
        doubles = model.predict_seconds(N // 2, 64, np.float64)
        # Same bytes, twice the passes: roughly 2x.
        assert doubles == pytest.approx(2 * floats, rel=0.1)


class TestBitonicModel:
    def test_grows_with_k(self, device):
        model = BitonicModel(device)
        times = [model.predict_seconds(N, 1 << e) for e in range(0, 11)]
        assert times[-1] > times[0]
        assert all(b >= a * 0.999 for a, b in zip(times, times[1:]))

    def test_underestimates_the_measured_trace(self, device):
        """Like the paper's model: peak bandwidths, no launch overheads."""
        from repro.bitonic.kernels import build_trace
        from repro.bitonic.optimizations import FULL
        from repro.gpu.timing import trace_time

        model = BitonicModel(device)
        for k in (32, 256):
            predicted = model.predict_seconds(N, k)
            measured = trace_time(build_trace(N, k, 4, FULL, device), device).total
            assert predicted < measured
            assert predicted > measured * 0.6

    def test_kernel_breakdown_shapes(self, device):
        breakdown = BitonicModel(device).kernel_breakdown(N, 32)
        assert breakdown[0][0] == "SortReducer"
        for _, global_time, shared_time in breakdown:
            assert global_time >= 0 and shared_time >= 0

    def test_sortreducer_is_shared_bound_at_k32(self, device):
        """Section 7.2's worked example: T_k > T_g for the SortReducer."""
        name, global_time, shared_time = BitonicModel(device).kernel_breakdown(
            N, 32
        )[0]
        assert shared_time > global_time


class TestPerThreadModel:
    def test_capacity_mirror(self, device):
        model = PerThreadModel(device)
        assert model.supports(N, 256, np.dtype(np.float32))
        assert not model.supports(N, 512, np.dtype(np.float32))
        assert not model.supports(N, 256, np.dtype(np.float64))

    def test_increasing_profile_costs_more(self, device):
        model = PerThreadModel(device)
        uniform = model.predict_seconds(N, 32, np.float32, UNIFORM_FLOAT)
        adversarial = model.predict_seconds(N, 32, np.float32, INCREASING_FLOAT)
        assert adversarial > uniform

    def test_expected_inserts_formula(self):
        assert expected_heap_inserts(100, 200) == 100.0
        assert expected_heap_inserts(1 << 20, 32) == pytest.approx(
            32 * (1 + np.log((1 << 20) / 32)), rel=0.01
        )


class TestBucketModel:
    def test_k1_is_just_the_minmax_pass(self, device):
        model = BucketSelectModel(device)
        single = model.predict_seconds(N, 1)
        assert single == pytest.approx(
            N * 4 / device.global_bandwidth, rel=0.01
        )

    def test_atomics_make_it_slower_than_radix(self, device):
        bucket = BucketSelectModel(device).predict_seconds(N, 64)
        radix = RadixSelectModel(device).predict_seconds(N, 64)
        assert bucket > radix
