"""StreamingModel: pricing the incremental/recompute crossover."""

import numpy as np
import pytest

from repro.costmodel.streaming_model import CANDIDATE_BYTES, StreamingModel
from repro.errors import InvalidParameterError


@pytest.fixture
def model(device):
    return StreamingModel(device, chunk_rows=1 << 20)


class TestValidation:
    def test_rejects_bad_chunk_rows(self, device):
        with pytest.raises(InvalidParameterError):
            StreamingModel(device, chunk_rows=0)

    def test_rejects_bad_window(self, model):
        with pytest.raises(InvalidParameterError):
            model.incremental_tick_seconds(0, 1 << 20, 64)
        with pytest.raises(InvalidParameterError):
            model.recompute_tick_seconds(1 << 24, 0, 64)

    def test_candidate_layout_is_key_plus_id(self):
        assert CANDIDATE_BYTES == 8

    def test_supports_bounded_by_network_width(self, model):
        assert model.supports(1 << 24, 64, np.dtype(np.float32))
        assert model.supports(1 << 24, 2048, np.dtype(np.float32))
        assert not model.supports(1 << 24, 4096, np.dtype(np.float32))
        assert not model.supports(1 << 24, 0, np.dtype(np.float32))


class TestPricing:
    def test_predict_seconds_is_the_incremental_tick(self, model):
        window = 1 << 24
        assert model.predict_seconds(window, 64) == (
            model.incremental_tick_seconds(window, model.chunk_rows, 64)
        )

    def test_incremental_beats_recompute_at_low_churn(self, model):
        window, chunk = 1 << 24, 1 << 20
        assert model.incremental_tick_seconds(window, chunk, 64) < (
            model.recompute_tick_seconds(window, chunk, 64)
        )
        assert model.speedup(window, chunk, 64) > 2.0

    def test_recompute_wins_at_full_churn(self, model):
        # Chunk == window: incremental pays the same summarize plus the
        # merge, so it can never price cheaper.
        window = 1 << 20
        assert model.choose_mode(window, window, 64) == "recompute"

    def test_choose_mode_flips_with_churn(self, model):
        window = 1 << 24
        assert model.choose_mode(window, 1 << 18, 64) == "incremental"
        assert model.choose_mode(window, window, 64) == "recompute"

    def test_speedup_grows_as_churn_falls(self, model):
        window = 1 << 24
        slow = model.speedup(window, 1 << 22, 64)
        fast = model.speedup(window, 1 << 19, 64)
        assert fast > slow

    def test_live_chunks_rounds_up(self, model):
        assert model.live_chunks(100, 30) == 4
        assert model.live_chunks(90, 30) == 3
        assert model.live_chunks(10, 30) == 1

    def test_churn_is_clamped_fraction(self, model):
        assert model.churn(1 << 24, 1 << 20) == pytest.approx(1 / 16)
        assert model.churn(1 << 20, 1 << 24) == 1.0
