"""The RadiK cost model: per-bit eta interpolation, the adaptive pass
schedule, deferral's write asymmetry, and the re-derived crossover
against the bitonic network and the 2018 strawman."""

import numpy as np
import pytest

from repro.costmodel.base import BUCKET_KILLER, UNIFORM_UINT
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.radik_model import RadiKModel, eta_over_bits
from repro.costmodel.radix_model import RadixSelectModel

N = 1 << 29


class TestEtaOverBits:
    def test_aligned_8_bit_segment_is_the_profile_fraction(self):
        assert eta_over_bits((0.5, 0.25), 0, 8) == pytest.approx(0.5)
        assert eta_over_bits((0.5, 0.25), 8, 8) == pytest.approx(0.25)

    def test_spanning_segments_multiplies(self):
        assert eta_over_bits((0.5, 0.25), 0, 16) == pytest.approx(0.125)

    def test_partial_segment_takes_the_bit_root(self):
        # Half an 8-bit segment contributes fraction ** (4/8).
        assert eta_over_bits((0.5,), 0, 4) == pytest.approx(0.5**0.5)

    def test_past_the_profile_reuses_the_last_fraction(self):
        assert eta_over_bits((0.5, 0.25), 16, 8) == pytest.approx(0.25)

    def test_two_half_passes_compose_to_one_full_pass(self):
        full = eta_over_bits((0.3,), 0, 8)
        halves = eta_over_bits((0.3,), 0, 4) * eta_over_bits((0.3,), 4, 4)
        assert halves == pytest.approx(full)


class TestSchedule:
    def test_pass_count_is_bounded_by_the_minimum_width(self, device):
        model = RadiKModel(device)
        for k in (64, 256, 2048):
            passes = model.predict_passes(N, k)
            assert 1 <= passes <= 32 // 4

    def test_larger_k_never_needs_more_passes(self, device):
        """A larger k shrinks the surplus factor, so the adaptive schedule
        can only get shallower."""
        model = RadiKModel(device)
        counts = [model.predict_passes(N, k) for k in (64, 1024, 2048)]
        # Depth varies by at most one pass across the grid and the large-k
        # end never plans deeper than the small-k end would justify.
        assert max(counts) - min(counts) <= 1

    def test_cost_is_nearly_flat_in_k(self, device):
        model = RadiKModel(device)
        small = model.predict_seconds(N, 64)
        large = model.predict_seconds(N, 2048)
        assert large < small * 1.1


class TestDeferral:
    def test_bucket_killer_stays_far_below_the_strawman(self, device):
        """Deferred passes pay only their histogram read; the strawman
        re-clusters the nearly-unreduced candidate set every pass."""
        radik = RadiKModel(device).predict_seconds(
            N, 64, np.dtype(np.float32), BUCKET_KILLER
        )
        strawman = RadixSelectModel(device).predict_seconds(
            N, 64, np.dtype(np.float32), BUCKET_KILLER
        )
        assert radik < strawman / 2


class TestCrossover:
    """The re-derived crossover surface behind the planner's radix-family
    choice (docs/cost_model.md): bitonic keeps small k, RadiK takes the
    large-k end from both the network and the 2018 strawman."""

    def test_bitonic_still_wins_small_k(self, device):
        for k in (64, 256):
            bitonic = BitonicModel(device).predict_seconds(N, k)
            radik = RadiKModel(device).predict_seconds(N, k)
            assert bitonic < radik

    def test_radik_wins_large_k(self, device):
        for k in (1024, 2048):
            bitonic = BitonicModel(device).predict_seconds(N, k)
            radik = RadiKModel(device).predict_seconds(N, k)
            assert radik < bitonic

    def test_radik_beats_the_strawman_at_large_k(self, device):
        for k in (1024, 2048):
            strawman = RadixSelectModel(device).predict_seconds(N, k)
            radik = RadiKModel(device).predict_seconds(N, k)
            assert radik < strawman

    def test_uints_cheaper_than_floats(self, device):
        model = RadiKModel(device)
        floats = model.predict_seconds(N, 2048)
        uints = model.predict_seconds(
            N, 2048, np.dtype(np.uint32), UNIFORM_UINT
        )
        assert uints < floats


class TestPlannerIntegration:
    def test_planner_picks_radik_past_the_crossover(self, device):
        from repro.core.planner import TopKPlanner

        planner = TopKPlanner(device)
        assert planner.choose(N, 64).algorithm != "radik"
        assert planner.choose(N, 2048).algorithm == "radik"

    def test_radik_plans_fall_back_through_bitonic(self, device):
        from repro.core.planner import TopKPlanner

        plan = TopKPlanner(device).choose(N, 2048)
        chain = [name for name, _ in plan.candidates]
        assert chain[0] == "radik"
