"""The calibration loop: Q-error, the store and its fitter, the
CalibratedModel wrapper, the planner knob, capture plumbing, plan-cache
epoch keying, persistence, and determinism."""

import json

import numpy as np
import pytest

from repro import observability as obs
from repro.core.planner import TopKPlanner
from repro.core.topk import topk
from repro.costmodel.base import UNIFORM_FLOAT
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.calibration import (
    CalibratedModel,
    CalibrationSample,
    CalibrationStore,
    active_store,
    capturing,
    q_error,
    record_sample,
)
from repro.errors import InvalidParameterError
from repro.gpu.device import get_device
from repro.plan.plan import request_fingerprint
from repro.serving.plan_cache import PlanCache


def sample(kernel="bitonic", predicted_ms=1.0, observed_ms=2.0, fp="f" * 16):
    return CalibrationSample(
        fingerprint=fp,
        kernel=kernel,
        predicted_ms=predicted_ms,
        observed_ms=observed_ms,
    )


class TestQError:
    def test_hand_computed_values(self):
        """The formula is max(pred/obs, obs/pred) — pinned by hand."""
        assert q_error(2.0, 1.0) == 2.0  # overestimate by 2x
        assert q_error(1.0, 4.0) == 4.0  # underestimate by 4x
        assert q_error(3.0, 3.0) == 1.0  # perfect
        assert q_error(0.5, 0.1) == pytest.approx(5.0)
        assert q_error(0.1, 0.5) == pytest.approx(5.0)  # symmetric

    def test_is_at_least_one(self):
        for predicted, observed in [(1.0, 1.5), (1.5, 1.0), (7.0, 7.0)]:
            assert q_error(predicted, observed) >= 1.0

    @pytest.mark.parametrize("pair", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_rejects_non_positive_times(self, pair):
        with pytest.raises(InvalidParameterError):
            q_error(*pair)


class TestStoreValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"decay": 0.0},
            {"decay": 1.5},
            {"min_samples": 0},
            {"window": 2, "min_samples": 5},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(InvalidParameterError):
            CalibrationStore(**kwargs)

    def test_rejects_non_positive_sample_times(self):
        store = CalibrationStore()
        with pytest.raises(InvalidParameterError):
            store.record(sample(predicted_ms=0.0))


class TestFitting:
    def test_factor_defaults_to_one(self):
        assert CalibrationStore().factor("bitonic") == 1.0

    def test_below_the_floor_no_factor_no_epoch(self):
        store = CalibrationStore(min_samples=5)
        for _ in range(4):
            store.record(sample(observed_ms=2.0))
        assert store.refit() == {}
        assert store.factor("bitonic") == 1.0
        assert store.epoch == 0

    def test_median_ratio_at_the_floor(self):
        store = CalibrationStore(min_samples=5)
        for _ in range(5):
            store.record(sample(predicted_ms=1.0, observed_ms=3.0))
        assert store.refit() == {"bitonic": pytest.approx(3.0)}
        assert store.factor("bitonic") == pytest.approx(3.0)
        assert store.correct("bitonic", 2.0) == pytest.approx(6.0)
        assert store.epoch == 1

    def test_median_is_robust_to_one_outlier(self):
        store = CalibrationStore(min_samples=5, decay=1.0)
        for _ in range(6):
            store.record(sample(observed_ms=2.0))
        store.record(sample(observed_ms=500.0))  # one wild query
        assert store.refit()["bitonic"] == pytest.approx(2.0)

    def test_decay_weights_newer_samples(self):
        store = CalibrationStore(min_samples=5, decay=0.9)
        for _ in range(5):
            store.record(sample(observed_ms=1.0))  # old regime: ratio 1
        for _ in range(5):
            store.record(sample(observed_ms=3.0))  # new regime: ratio 3
        # With decay the newer half out-weighs the older half, so the
        # weighted median sits in the new regime; an unweighted median
        # of the ten ratios could land on either side.
        assert store.refit()["bitonic"] == pytest.approx(3.0)

    def test_epoch_bumps_only_on_change(self):
        store = CalibrationStore(min_samples=2)
        for _ in range(2):
            store.record(sample(observed_ms=2.0))
        store.refit()
        assert store.epoch == 1
        store.refit()  # same samples, same factors
        assert store.epoch == 1
        for _ in range(4):
            store.record(sample(observed_ms=8.0))
        store.refit()
        assert store.epoch == 2

    def test_window_trims_oldest(self):
        store = CalibrationStore(min_samples=2, window=3)
        for index in range(5):
            store.record(sample(observed_ms=float(index + 1)))
        history = store.samples("bitonic")
        assert len(history) == 3
        assert [entry.observed_ms for entry in history] == [3.0, 4.0, 5.0]

    def test_kernels_are_fitted_independently(self):
        store = CalibrationStore(min_samples=2)
        for _ in range(2):
            store.record(sample(kernel="bitonic", observed_ms=2.0))
            store.record(sample(kernel="radik", observed_ms=5.0))
        factors = store.refit()
        assert factors == {
            "bitonic": pytest.approx(2.0),
            "radik": pytest.approx(5.0),
        }


class TestPersistence:
    def test_round_trip(self, tmp_path):
        store = CalibrationStore(min_samples=2, decay=0.8, window=10)
        for _ in range(3):
            store.record(sample(observed_ms=2.5))
        store.refit()
        path = tmp_path / "store.json"
        store.save(path)
        loaded = CalibrationStore.load(path)
        assert loaded.decay == store.decay
        assert loaded.min_samples == store.min_samples
        assert loaded.window == store.window
        assert loaded.epoch == store.epoch
        assert loaded.factors() == store.factors()
        assert loaded.samples() == store.samples()

    def test_loaded_store_serves_factors_before_any_refit(self, tmp_path):
        store = CalibrationStore(min_samples=1)
        store.record(sample(observed_ms=4.0))
        store.refit()
        path = tmp_path / "store.json"
        store.save(path)
        assert CalibrationStore.load(path).factor("bitonic") == pytest.approx(4.0)

    def test_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(InvalidParameterError):
            CalibrationStore.load(path)
        path.write_text(
            json.dumps({"format": "repro-calibration-store", "version": 99})
        )
        with pytest.raises(InvalidParameterError):
            CalibrationStore.load(path)


class TestCalibratedModel:
    def test_applies_the_factor(self):
        device = get_device()
        store = CalibrationStore(min_samples=1)
        store.record(sample(kernel="bitonic", predicted_ms=1.0, observed_ms=2.0))
        store.refit()
        base = BitonicModel(device)
        calibrated = CalibratedModel(base, store)
        assert calibrated.algorithm == "bitonic"
        raw = base.predict_seconds(1 << 16, 32)
        assert calibrated.predict_seconds(1 << 16, 32) == pytest.approx(2.0 * raw)

    def test_identity_before_fitting(self):
        device = get_device()
        base = BitonicModel(device)
        calibrated = CalibratedModel(base, CalibrationStore())
        assert calibrated.predict_seconds(1 << 16, 32) == pytest.approx(
            base.predict_seconds(1 << 16, 32)
        )

    def test_supports_delegates(self):
        device = get_device()
        base = BitonicModel(device)
        calibrated = CalibratedModel(base, CalibrationStore())
        dtype = np.dtype(np.float32)
        for k in (32, 1 << 20):
            assert calibrated.supports(1 << 22, k, dtype) == base.supports(
                1 << 22, k, dtype
            )


class TestPlannerKnob:
    GRID = [(1 << 16, 8), (1 << 20, 64), (1 << 22, 1024), (1 << 24, 2048)]

    def test_default_is_bit_identical(self):
        """calibrate=False must not perturb decisions even with a fitted
        store attached — the golden-decision guarantee."""
        device = get_device()
        store = CalibrationStore(min_samples=1)
        store.record(sample(kernel="bitonic", observed_ms=100.0))
        store.refit()
        base = TopKPlanner(device)
        attached = TopKPlanner(device, calibration=store, calibrate=False)
        for n, k in self.GRID:
            expected = base.choose(n, k)
            actual = attached.choose(n, k)
            assert actual.algorithm == expected.algorithm
            assert actual.candidates == expected.candidates
            assert actual.fingerprint() == expected.fingerprint()

    def test_fitted_factor_flips_the_decision(self):
        device = get_device()
        n, k = 1 << 20, 64
        baseline = TopKPlanner(device).choose(n, k)
        assert baseline.algorithm == "bitonic"
        # Penalize the winner 100x: the calibrated ranking must move on.
        store = CalibrationStore(min_samples=1)
        store.record(
            sample(kernel="bitonic", predicted_ms=1.0, observed_ms=100.0)
        )
        store.refit()
        calibrated = TopKPlanner(device, calibration=store, calibrate=True)
        plan = calibrated.choose(n, k)
        assert plan.algorithm != "bitonic"
        ranked = dict(plan.candidates)
        assert ranked["bitonic"] == pytest.approx(
            100.0 * dict(baseline.candidates)["bitonic"]
        )

    def test_calibrate_true_builds_a_store_when_none_given(self):
        planner = TopKPlanner(get_device(), calibrate=True)
        assert isinstance(planner.calibration, CalibrationStore)
        assert all(
            isinstance(model, CalibratedModel) for model in planner.models
        )


class TestCapture:
    def test_contextvar_scoping(self):
        store = CalibrationStore()
        assert active_store() is None
        with capturing(store):
            assert active_store() is store
        assert active_store() is None

    def test_record_sample_prefers_explicit_store(self):
        scoped, explicit = CalibrationStore(), CalibrationStore()
        with capturing(scoped):
            record_sample("f" * 16, "bitonic", 1.0, 2.0, store=explicit)
        assert explicit.sample_count() == 1
        assert scoped.sample_count() == 0

    def test_record_sample_skips_non_positive(self):
        store = CalibrationStore()
        assert record_sample("f" * 16, "bitonic", 0.0, 2.0, store=store) is None
        assert store.sample_count() == 0

    def test_topk_auto_records_one_sample_per_query(self):
        store = CalibrationStore()
        rng = np.random.default_rng(0)
        data = rng.random(1 << 12, dtype=np.float32)
        with capturing(store):
            result = topk(data, 32)
        (recorded,) = store.samples()
        assert recorded.kernel == result.algorithm
        assert recorded.predicted_ms > 0.0
        assert recorded.observed_ms == pytest.approx(
            result.simulated_ms(get_device())
        )
        assert len(recorded.fingerprint) == 16

    def test_topk_with_foreign_model_n_does_not_sample(self):
        """predicted (at len(values)) and observed (at model_n) price
        different inputs — recording the pair would poison the fit."""
        store = CalibrationStore()
        rng = np.random.default_rng(0)
        data = rng.random(1 << 12, dtype=np.float32)
        with capturing(store):
            topk(data, 32, model_n=1 << 24)
        assert store.sample_count() == 0

    def test_explicit_algorithm_does_not_sample(self):
        """No plan, no prediction — nothing to calibrate."""
        store = CalibrationStore()
        rng = np.random.default_rng(0)
        data = rng.random(1 << 12, dtype=np.float32)
        with capturing(store):
            topk(data, 32, algorithm="bitonic")
        assert store.sample_count() == 0

    def test_q_error_summary_published_per_kernel(self):
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        store = CalibrationStore()
        rng = np.random.default_rng(0)
        data = rng.random(1 << 12, dtype=np.float32)
        with observation.activate(), capturing(store):
            result = topk(data, 32)
        records = [
            record
            for record in observation.metrics.snapshot()
            if record["name"] == "planner.q_error"
        ]
        (record,) = records
        assert record["labels"] == {"kernel": result.algorithm}
        assert record["count"] == 1
        assert record["p50"] >= 1.0
        assert record["p95"] >= 1.0
        assert record["max"] >= 1.0

    def test_engine_session_records_samples(self):
        from repro.engine import Session, generate_tweets

        store = CalibrationStore()
        session = Session(calibration=store)
        session.register(generate_tweets(1 << 12, seed=3))
        session.sql(
            "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 50"
        )
        assert store.sample_count() == 1
        (recorded,) = store.samples()
        assert recorded.predicted_ms > 0.0
        assert recorded.observed_ms > recorded.predicted_ms  # Figure 17 gap

    def test_engine_without_a_store_stays_silent(self):
        from repro.engine import Session, generate_tweets

        session = Session()
        session.register(generate_tweets(1 << 12, seed=3))
        result = session.sql(
            "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 50"
        )
        assert result.num_result_rows == 50  # unchanged behaviour


class TestRequestFingerprintEpoch:
    def test_epoch_zero_is_byte_identical_to_the_old_digest(self):
        base = request_fingerprint(1024, 8, "float32", "uniform-float", "gpu")
        assert base == request_fingerprint(
            1024, 8, "float32", "uniform-float", "gpu", calibration_epoch=0
        )

    def test_epoch_shears_the_digest(self):
        base = request_fingerprint(1024, 8, "float32", "uniform-float", "gpu")
        epoch1 = request_fingerprint(
            1024, 8, "float32", "uniform-float", "gpu", calibration_epoch=1
        )
        epoch2 = request_fingerprint(
            1024, 8, "float32", "uniform-float", "gpu", calibration_epoch=2
        )
        assert len({base, epoch1, epoch2}) == 3


class TestPlanCacheEpochKeying:
    def _bump_epoch(self, store):
        for _ in range(store.min_samples):
            store.record(
                sample(observed_ms=2.0 * (store.epoch + 1) + 1.0)
            )
        before = store.epoch
        store.refit()
        assert store.epoch == before + 1

    def test_refit_shears_the_cache_key(self):
        store = CalibrationStore()
        planner = TopKPlanner(get_device(), calibration=store, calibrate=True)
        cache = PlanCache(planner=planner)
        key_before = cache.key(1 << 16, 8, np.float32)
        self._bump_epoch(store)
        key_after = cache.key(1 << 16, 8, np.float32)
        assert key_before != key_after
        self._bump_epoch(store)
        assert cache.key(1 << 16, 8, np.float32) != key_after

    def test_uncalibrated_cache_keys_are_unchanged(self):
        device = get_device()
        cache = PlanCache(planner=TopKPlanner(device))
        assert cache.key(1 << 16, 8, np.float32) == request_fingerprint(
            1 << 16,
            8,
            "float32",
            "uniform-float",
            device.name,
            1.0,
            max_shards=1,
        )

    def test_attached_but_disabled_store_does_not_key(self):
        """calibrate=False ignores the store, so the cache must too."""
        device = get_device()
        store = CalibrationStore()
        planner = TopKPlanner(device, calibration=store, calibrate=False)
        cache = PlanCache(planner=planner)
        key_before = cache.key(1 << 16, 8, np.float32)
        self._bump_epoch(store)
        assert cache.key(1 << 16, 8, np.float32) == key_before

    def test_stale_plan_is_replanned_after_refit(self):
        store = CalibrationStore()
        planner = TopKPlanner(get_device(), calibration=store, calibrate=True)
        cache = PlanCache(planner=planner)
        cache.choose(1 << 16, 8, np.float32)
        assert cache.misses == 1
        cache.choose(1 << 16, 8, np.float32)
        assert cache.hits == 1
        self._bump_epoch(store)
        cache.choose(1 << 16, 8, np.float32)
        assert cache.misses == 2  # the epoch bump forced a replan


class TestDeterminism:
    """Same seed + workload => byte-identical store, identical factors."""

    def _replay(self, tmp_path, tag):
        from repro.bench.calibrate import (
            CalibrationWorkload,
            run_calibration_benchmark,
        )

        store = CalibrationStore()
        workload = CalibrationWorkload(ns=(1 << 10, 1 << 12), ks=(4, 16), seed=11)
        report = run_calibration_benchmark(workload, store=store)
        path = tmp_path / f"store-{tag}.json"
        store.save(path)
        return report, store, path.read_bytes()

    def test_byte_identical_store_and_identical_factors(self, tmp_path):
        report_a, store_a, bytes_a = self._replay(tmp_path, "a")
        report_b, store_b, bytes_b = self._replay(tmp_path, "b")
        assert bytes_a == bytes_b
        assert store_a.factors() == store_b.factors()
        assert store_a.epoch == store_b.epoch
        assert json.dumps(report_a.to_dict(), sort_keys=True) == json.dumps(
            report_b.to_dict(), sort_keys=True
        )

    def test_a_different_seed_changes_the_samples(self, tmp_path):
        from repro.bench.calibrate import (
            CalibrationWorkload,
            run_calibration_benchmark,
        )

        stores = []
        for seed in (11, 12):
            store = CalibrationStore()
            run_calibration_benchmark(
                CalibrationWorkload(ns=(1 << 10,), ks=(4,), seed=seed),
                store=store,
            )
            stores.append(store)
        observed = [
            [entry.observed_ms for entry in store.samples()]
            for store in stores
        ]
        assert observed[0] != observed[1]
