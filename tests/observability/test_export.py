"""Exporter round-trips: JSON-lines and the Chrome trace-event format."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    kernel_sim_total_ms,
    load_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("query", category="engine", table="tweets") as query:
        with tracer.span("plan", category="planner", n=1024):
            pass
        with tracer.span("algorithm:bitonic", category="algorithm") as algo:
            with tracer.span("kernel:sort", category="kernel") as k1:
                k1.add_simulated_ms(1.5)
            with tracer.span("kernel:merge", category="kernel") as k2:
                k2.add_simulated_ms(0.5)
            algo.set(simulated_ms=2.0)
        query.add_simulated_ms(0.25)
    return tracer


class TestJsonl:
    def test_round_trip_preserves_structure(self):
        tracer = _sample_tracer()
        text = to_jsonl(tracer)
        restored, metrics = load_jsonl(text)
        assert [s.name for s in restored.walk()] == [s.name for s in tracer.walk()]
        assert [s.category for s in restored.walk()] == [
            s.category for s in tracer.walk()
        ]
        assert metrics == []

    def test_round_trip_preserves_times_and_attributes(self):
        tracer = _sample_tracer()
        restored, _ = load_jsonl(to_jsonl(tracer))
        for original, copy in zip(tracer.walk(), restored.walk()):
            assert copy.sim_ms == pytest.approx(original.sim_ms)
            assert copy.start_wall == pytest.approx(original.start_wall)
            assert copy.end_wall == pytest.approx(original.end_wall)
            assert copy.attributes == original.attributes
        assert restored.total_sim_ms("kernel") == pytest.approx(2.0)

    def test_metrics_records_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("gpu.kernel_launches", kernel="sort").inc(3)
        registry.histogram("gpu.kernel_sim_ms").observe(1.5)
        _, metric_records = load_jsonl(to_jsonl(_sample_tracer(), registry))
        by_name = {record["name"]: record for record in metric_records}
        assert by_name["gpu.kernel_launches"]["value"] == 3
        assert by_name["gpu.kernel_sim_ms"]["count"] == 1

    def test_write_jsonl_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, _sample_tracer())
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-trace"
        assert all(json.loads(line) for line in lines)


class TestChromeTrace:
    def test_document_shape(self):
        document = to_chrome_trace(_sample_tracer())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        names = {
            event["args"]["name"] for event in events if event["ph"] == "M"
        }
        assert len(names) == 2  # wall-clock + simulated processes

    def test_every_span_appears_on_the_wall_track(self):
        tracer = _sample_tracer()
        document = to_chrome_trace(tracer)
        wall_names = [
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X" and event["pid"] == 1
        ]
        assert sorted(wall_names) == sorted(s.name for s in tracer.walk())

    def test_kernel_sim_total(self):
        document = to_chrome_trace(_sample_tracer())
        assert kernel_sim_total_ms(document) == pytest.approx(2.0)

    def test_simulated_children_nest_inside_parents(self):
        document = to_chrome_trace(_sample_tracer())
        sim = {
            event["name"]: event
            for event in document["traceEvents"]
            if event["ph"] == "X" and event["pid"] == 2
        }
        algo = sim["algorithm:bitonic"]
        for kernel in ("kernel:sort", "kernel:merge"):
            assert sim[kernel]["ts"] >= algo["ts"]
            assert (
                sim[kernel]["ts"] + sim[kernel]["dur"]
                <= algo["ts"] + algo["dur"] + 1e-6
            )

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        registry = MetricsRegistry()
        registry.counter("x").inc()
        write_chrome_trace(path, _sample_tracer(), registry)
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["metrics"]
