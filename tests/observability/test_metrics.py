"""Metrics accumulation, including across trace extend/scaled/merge."""

import pytest

from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import get_device
from repro.observability import MetricsRegistry
from repro.observability.instrument import kernel_family, record_trace


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2.5)
        assert registry.value("events") == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("events").inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("runs", algorithm="bitonic").inc()
        registry.counter("runs", algorithm="radix-select").inc(3)
        assert registry.value("runs", algorithm="bitonic") == 1
        assert registry.value("runs", algorithm="radix-select") == 3
        assert registry.value("runs") is None

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("occupancy").set(0.5)
        registry.gauge("occupancy").set(0.75)
        assert registry.value("occupancy") == 0.75

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms")
        for value in [1.0, 2.0, 3.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(6.0)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_histogram_nonpositive_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("deltas")
        histogram.observe(0.0)
        histogram.observe(-5.0)
        assert histogram.buckets == {-1025: 2}

    def test_snapshot_is_sorted_and_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", x="1").inc()
        registry.histogram("c").observe(2.0)
        names = [record["name"] for record in registry.snapshot()]
        assert names == sorted(names)
        json.dumps(registry.snapshot())  # must not raise


class TestTraceAccumulation:
    def _trace(self) -> ExecutionTrace:
        trace = ExecutionTrace()
        kernel = trace.launch("sort-1")
        kernel.add_global_read(1024.0)
        kernel.add_shared(256.0, conflict_factor=2.0)
        return trace

    def test_record_trace_publishes_per_kernel_metrics(self):
        registry = MetricsRegistry()
        device = get_device()
        from repro.observability import observe

        with observe(metrics=registry):
            total_ms = record_trace(self._trace(), device)
        assert total_ms > 0
        assert registry.value("gpu.kernel_launches", kernel="sort") == 1
        assert registry.value("gpu.global_bytes") == pytest.approx(1024.0)
        assert registry.value("gpu.shared_bytes") == pytest.approx(256.0)
        assert registry.value("gpu.shared_bytes_weighted") == pytest.approx(512.0)
        assert registry.value("gpu.simulated_ms_total") == pytest.approx(total_ms)

    def test_metrics_accumulate_across_extended_trace(self):
        """extend() concatenates launches; metrics see each exactly once."""
        registry = MetricsRegistry()
        device = get_device()
        combined = self._trace()
        combined.extend(self._trace())
        from repro.observability import observe

        with observe(metrics=registry):
            record_trace(combined, device)
        assert registry.value("gpu.kernel_launches", kernel="sort") == 2
        assert registry.value("gpu.global_bytes") == pytest.approx(2048.0)

    def test_metrics_scale_with_scaled_trace(self):
        """scaled() multiplies traffic but not the launch count."""
        registry = MetricsRegistry()
        device = get_device()
        scaled = self._trace().scaled(8)
        from repro.observability import observe

        with observe(metrics=registry):
            record_trace(scaled, device)
        assert registry.value("gpu.kernel_launches", kernel="sort") == 1
        assert registry.value("gpu.global_bytes") == pytest.approx(8 * 1024.0)

    def test_merged_kernel_counts_once(self):
        """KernelCounters.merge folds launches together pre-recording."""
        registry = MetricsRegistry()
        device = get_device()
        trace = self._trace()
        other = self._trace()
        trace.kernels[0].merge(other.kernels[0])
        from repro.observability import observe

        with observe(metrics=registry):
            record_trace(trace, device)
        assert registry.value("gpu.kernel_launches", kernel="sort") == 1
        assert registry.value("gpu.global_bytes") == pytest.approx(2048.0)


def test_kernel_family_strips_pass_suffix():
    assert kernel_family("select-histogram-3") == "select-histogram"
    assert kernel_family("merge") == "merge"
    assert kernel_family("BitonicReducer-12") == "BitonicReducer"
