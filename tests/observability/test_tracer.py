"""Span lifecycle: nesting, ordering, dual time attribution."""

import pytest

from repro.observability import (
    NULL_SPAN,
    MetricsRegistry,
    Observation,
    Tracer,
    active_metrics,
    current_tracer,
    observe,
    span,
    suspended,
)


class TestNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]

    def test_walk_is_depth_first_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c", "d"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_span_ids_are_unique_and_parented(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert a.span_id != b.span_id
        assert b.parent_id == a.span_id
        assert a.parent_id is None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.end_wall is not None
        # The stack unwound: a new span is a root, not a child of "doomed".
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["doomed", "after"]


class TestTimes:
    def test_wall_clock_is_monotone_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_wall <= inner.start_wall
        assert inner.end_wall <= outer.end_wall
        assert outer.wall_seconds >= inner.wall_seconds >= 0

    def test_simulated_time_sums_over_subtree(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            parent.add_simulated_ms(1.0)
            with tracer.span("child") as child:
                child.add_simulated_ms(2.0)
        assert parent.sim_ms == 1.0
        assert parent.total_sim_ms == pytest.approx(3.0)
        assert tracer.total_sim_ms() == pytest.approx(3.0)

    def test_category_filtered_totals(self):
        tracer = Tracer()
        with tracer.span("algo", category="algorithm"):
            with tracer.span("k1", category="kernel") as k1:
                k1.add_simulated_ms(0.5)
            with tracer.span("k2", category="kernel") as k2:
                k2.add_simulated_ms(0.25)
        assert tracer.total_sim_ms("kernel") == pytest.approx(0.75)
        assert len(tracer.spans("kernel")) == 2
        assert tracer.total_sim_ms("algorithm") == 0.0


class TestContextVars:
    def test_module_span_is_null_when_disabled(self):
        assert current_tracer() is None
        with span("anything") as s:
            assert s is NULL_SPAN
            s.set(ignored=1)
            s.add_simulated_ms(5.0)

    def test_observe_activates_and_restores(self):
        tracer = Tracer()
        with observe(tracer=tracer):
            assert current_tracer() is tracer
            with span("recorded"):
                pass
        assert current_tracer() is None
        assert [root.name for root in tracer.roots] == ["recorded"]

    def test_suspended_hides_the_active_observation(self):
        observation = Observation(Tracer(), MetricsRegistry())
        with observation.activate():
            with span("outer"):
                with suspended():
                    assert current_tracer() is None
                    assert active_metrics() is None
                    with span("hidden"):
                        pass
                assert current_tracer() is observation.tracer
        names = [s.name for s in observation.tracer.walk()]
        assert "hidden" not in names
        assert names == ["outer"]

    def test_render_shows_the_tree(self):
        tracer = Tracer()
        with tracer.span("query", category="engine"):
            with tracer.span("kernel:sort", category="kernel") as k:
                k.add_simulated_ms(1.5)
        rendered = tracer.render()
        assert "query" in rendered
        assert "kernel:sort" in rendered
