"""End-to-end invariants of the instrumented library.

The two load-bearing guarantees:

1. tracing must never change results — ``topk()`` under observation is
   byte-identical to ``topk()`` without it;
2. the trace must account for all simulated time — the ``kernel``-category
   spans (and Chrome-trace events) sum exactly to the result's
   ``simulated_ms()``, with no double counting through the planner, the
   engine, or the hybrid schedulers.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.algorithms.registry import list_algorithms
from repro.core.topk import topk
from repro.data.distributions import uniform_floats
from repro.gpu.device import get_device


def _observed_topk(data, k, **kwargs):
    observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
    with observation.activate():
        result = topk(data, k, **kwargs)
    return observation, result


class TestByteIdentical:
    @pytest.mark.parametrize("algorithm", list_algorithms())
    def test_tracing_does_not_change_results(self, algorithm):
        data = uniform_floats(1 << 12, seed=7)
        plain = topk(data, 16, algorithm=algorithm)
        _, traced = _observed_topk(data, 16, algorithm=algorithm)
        assert plain.algorithm == traced.algorithm
        assert plain.values.tobytes() == traced.values.tobytes()
        assert plain.indices.tobytes() == traced.indices.tobytes()

    def test_tracing_does_not_change_the_trace(self):
        data = uniform_floats(1 << 12, seed=7)
        plain = topk(data, 16)
        _, traced = _observed_topk(data, 16)
        assert plain.simulated_ms() == pytest.approx(traced.simulated_ms())
        assert plain.trace.num_launches == traced.trace.num_launches


class TestKernelAccounting:
    @pytest.mark.parametrize("algorithm", list_algorithms())
    def test_kernel_spans_sum_to_simulated_ms(self, algorithm):
        data = uniform_floats(1 << 12, seed=3)
        observation, result = _observed_topk(data, 16, algorithm=algorithm)
        kernel_ms = observation.tracer.total_sim_ms("kernel")
        assert kernel_ms == pytest.approx(result.simulated_ms(), rel=1e-9)

    def test_chrome_trace_kernel_sum_matches(self):
        data = uniform_floats(1 << 12, seed=3)
        observation, result = _observed_topk(data, 16)
        document = obs.to_chrome_trace(observation.tracer, observation.metrics)
        assert obs.kernel_sim_total_ms(document) == pytest.approx(
            result.simulated_ms(), rel=1e-9
        )

    def test_metrics_total_matches(self):
        data = uniform_floats(1 << 12, seed=3)
        observation, result = _observed_topk(data, 16)
        total = observation.metrics.value("gpu.simulated_ms_total")
        assert total == pytest.approx(result.simulated_ms(), rel=1e-9)

    def test_span_hierarchy_query_to_kernel(self):
        data = uniform_floats(1 << 12, seed=3)
        observation, _ = _observed_topk(data, 16)
        (root,) = observation.tracer.roots
        assert root.name == "topk"
        categories = {span.category for span in observation.tracer.walk()}
        assert {"api", "planner", "algorithm", "kernel"} <= categories


class TestSchedulers:
    def test_hybrid_accounts_once(self):
        from repro.hybrid.cpu_gpu import HybridTopK

        data = uniform_floats(1 << 13, seed=5)
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = HybridTopK().run(data, 32)
        assert observation.tracer.total_sim_ms("kernel") == pytest.approx(
            result.simulated_ms(), rel=1e-9
        )
        assert observation.metrics.value("hybrid.gpu_fraction") is not None

    def test_multi_gpu_accounts_once(self):
        from repro.hybrid.multi_gpu import MultiGpuTopK

        data = uniform_floats(1 << 13, seed=5)
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = MultiGpuTopK().run(data, 32)
        assert observation.tracer.total_sim_ms("kernel") == pytest.approx(
            result.simulated_ms(get_device()), rel=1e-9
        )

    def test_chunked_accounts_once(self):
        from repro.core.chunked import chunked_topk

        data = uniform_floats(1 << 13, seed=5)
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = chunked_topk(data, 32, memory_budget_bytes=1 << 15)
        assert observation.tracer.total_sim_ms("kernel") == pytest.approx(
            result.simulated_ms(), rel=1e-9
        )

    def test_adaptive_nests_inner_algorithm(self):
        from repro.hybrid.adaptive import AdaptiveTopK

        data = uniform_floats(1 << 13, seed=5)
        observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
        with observation.activate():
            result = AdaptiveTopK().run(data, 32)
        assert observation.tracer.total_sim_ms("kernel") == pytest.approx(
            result.simulated_ms(), rel=1e-9
        )
        (root,) = observation.tracer.roots
        assert root.name == "adaptive"


class TestSession:
    def test_session_trace_accumulates_across_queries(self):
        from repro.engine.session import Session
        from repro.engine.twitter import generate_tweets

        session = Session(trace=True)
        session.register(generate_tweets(1 << 12, seed=1))
        first = session.sql(
            "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10"
        )
        second = session.sql(
            "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 10"
        )
        roots = session.tracer.roots
        assert [root.name for root in roots] == ["query", "query"]
        expected = first.simulated_ms() + second.simulated_ms()
        assert session.tracer.total_sim_ms("kernel") == pytest.approx(
            expected, rel=1e-9
        )
        assert session.metrics.value("engine.queries", strategy="fused") == 2

    def test_untraced_session_has_no_observation(self):
        from repro.engine.session import Session

        session = Session()
        assert session.tracer is None
        assert session.metrics is None


class TestDisabledOverhead:
    def test_no_tracer_leaks_into_untraced_runs(self):
        data = uniform_floats(1 << 12, seed=9)
        _observed_topk(data, 16)  # populate and discard
        assert obs.current_tracer() is None
        result = topk(data, 16)
        assert result.values is not None


class TestCli:
    def test_trace_command_chrome(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(["trace", "--n", "4096", "--k", "8", "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "kernel spans sum to" in stdout
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert obs.kernel_sim_total_ms(document) > 0

    def test_trace_command_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--n", "4096", "--k", "8",
             "--format", "jsonl", "--out", str(out)]
        )
        assert code == 0
        restored, _ = obs.load_jsonl(out.read_text())
        assert restored.num_spans > 0

    def test_trace_command_sql(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(
            ["trace",
             "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 10",
             "--rows", "4096", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()

    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "--n", "4096", "--k", "8"]) == 0
        stdout = capsys.readouterr().out
        assert "topk" in stdout
        assert "gpu.kernel_launches" in stdout
        assert "simulated total" in stdout
