"""Cross-module integration tests.

These exercise the full stack — workload generators, all algorithms, the
planner, the engine, and the simulated timing pipeline — together on one
realistic scenario each, the way a downstream user would compose the
library.
"""

import numpy as np
import pytest

from repro import TopKPlanner, get_device, topk
from repro.algorithms.base import reference_topk
from repro.algorithms.registry import EVALUATED_ALGORITHMS, create
from repro.data.distributions import (
    bucket_killer,
    decreasing,
    increasing,
    uniform_floats,
    uniform_uints,
)
from repro.engine import Session, generate_tweets


class TestAllAlgorithmsAllDistributions:
    """Every algorithm must agree with the oracle on every distribution."""

    @pytest.mark.parametrize("name", EVALUATED_ALGORITHMS)
    @pytest.mark.parametrize(
        "generator", [uniform_floats, increasing, decreasing, bucket_killer]
    )
    def test_agreement(self, name, generator, device):
        data = generator(6000, seed=11)
        algorithm = create(name, device)
        for k in (1, 13, 128):
            if not algorithm.supports(len(data), k, data.dtype):
                continue
            result = algorithm.run(data, k)
            expected, _ = reference_topk(data, k)
            assert np.array_equal(np.sort(result.values)[::-1], expected), (
                name,
                generator.__name__,
                k,
            )


class TestPlannerAgainstMeasurements:
    def test_planned_choice_is_near_optimal(self, device):
        """The planner's pick should be within 2x of the best measured
        algorithm — the property that makes the cost models useful."""
        data = uniform_floats(1 << 16, seed=5)
        planner = TopKPlanner(device)
        for k in (8, 64, 256):
            measured = {}
            for name in EVALUATED_ALGORITHMS:
                algorithm = create(name, device)
                if not algorithm.supports(1 << 29, k, data.dtype):
                    continue
                result = algorithm.run(data, k, model_n=1 << 29)
                measured[name] = result.simulated_time(device).total
            best = min(measured.values())
            chosen = planner.choose(1 << 29, k, data.dtype).algorithm
            assert measured[chosen] <= 2 * best


class TestDeviceProfiles:
    def test_faster_devices_run_faster(self):
        data = uniform_floats(1 << 14)
        times = {}
        for name in ("titan-x-maxwell", "v100"):
            device = get_device(name)
            result = topk(
                data, 64, algorithm="bitonic", device=device, model_n=1 << 29
            )
            times[name] = result.simulated_time(device).total
        assert times["v100"] < times["titan-x-maxwell"] / 2


class TestEndToEndQuery:
    def test_sql_results_stable_across_strategies(self, device):
        session = Session(device)
        session.register(generate_tweets(1 << 13, seed=2))
        sql = (
            "SELECT id FROM tweets WHERE lang = 'en' "
            "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 20"
        )
        ranks = []
        table = session.table("tweets")
        rank = table.column("retweet_count") + 0.5 * table.column("likes_count")
        for strategy in ("sort", "topk", "fused"):
            result = session.sql(sql, strategy=strategy)
            ranks.append(np.sort(rank[result.column("id")])[::-1])
        assert np.allclose(ranks[0], ranks[1])
        assert np.allclose(ranks[0], ranks[2])


class TestUintPipeline:
    def test_uint_crossover_story(self, device):
        """Figure 11b end to end: radix select beats bitonic at k = 1024 on
        uniform uints, and both beat sort."""
        data = uniform_uints(1 << 16)
        bitonic = create("bitonic", device).run(data, 1024, model_n=1 << 29)
        radix = create("radix-select", device).run(data, 1024, model_n=1 << 29)
        sort = create("sort", device).run(data, 1024, model_n=1 << 29)
        radix_time = radix.simulated_time(device).total
        bitonic_time = bitonic.simulated_time(device).total
        sort_time = sort.simulated_time(device).total
        assert radix_time < bitonic_time < sort_time
