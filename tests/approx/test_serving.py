"""Serving integration: recall_target in plan-cache keys, batch grouping,
and end-to-end approximate serving."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.serving import PlanCache, TopKServer
from repro.serving.batcher import ServingRequest

N, K = 1 << 16, 64


class TestPlanCacheKeys:
    def test_recall_target_is_part_of_the_key(self, device):
        cache = PlanCache(device=device)
        cache.choose(N, K, np.dtype(np.float32), recall_target=1.0)
        cache.choose(N, K, np.dtype(np.float32), recall_target=0.95)
        assert cache.misses == 2 and cache.hits == 0
        cache.choose(N, K, np.dtype(np.float32), recall_target=0.95)
        assert cache.hits == 1

    def test_cached_approx_plan_keeps_its_config(self, device):
        cache = PlanCache(device=device)
        first = cache.choose(N, K, np.dtype(np.float32), recall_target=0.95)
        again = cache.choose(N, K, np.dtype(np.float32), recall_target=0.95)
        assert first is again
        assert first.algorithm == "approx-bucket"
        assert first.approx_config is not None


class TestBatchGrouping:
    def test_different_targets_never_share_a_group(self, rng, device):
        data = rng.random(512).astype(np.float32)
        exact = ServingRequest(data=data, k=8)
        relaxed = ServingRequest(data=data, k=8, recall_target=0.95)
        assert exact.key != relaxed.key

    def test_same_target_shares_a_key(self, rng):
        data = rng.random(512).astype(np.float32)
        first = ServingRequest(data=data, k=8, recall_target=0.95)
        second = ServingRequest(data=data, k=8, recall_target=0.95)
        assert first.key == second.key


class TestServer:
    def test_submit_validates_the_target(self, rng, device):
        data = rng.random(1024).astype(np.float32)
        with TopKServer(device=device) as server:
            with pytest.raises(InvalidParameterError):
                server.submit(data, 8, recall_target=1.5)

    def test_relaxed_query_is_served_approximately(self, rng, device):
        data = rng.random(N).astype(np.float32)
        with TopKServer(device=device) as server:
            outcome = server.query(data, K, recall_target=0.95)
        assert outcome.algorithm == "approx-bucket"
        assert outcome.plan.approx_config is not None
        assert outcome.plan.expected_recall >= 0.95

    def test_exact_query_stays_bit_equal(self, rng, device):
        from repro.core.topk import topk

        data = rng.random(N).astype(np.float32)
        solo = topk(data, K, device=device)
        with TopKServer(device=device) as server:
            outcome = server.query(data, K)
        assert np.array_equal(outcome.values, solo.values)
        assert np.array_equal(outcome.indices, solo.indices)

    def test_mixed_stream_is_partitioned_by_target(self, rng, device):
        data = rng.random(N).astype(np.float32)
        with TopKServer(device=device, auto_start=False) as server:
            futures = [
                server.submit(data, K, recall_target=target)
                for target in (1.0, 0.95, 1.0, 0.95)
            ]
            server.start()
            outcomes = [future.result() for future in futures]
        algorithms = [outcome.algorithm for outcome in outcomes]
        assert algorithms[0] == algorithms[2] != "approx-bucket"
        assert algorithms[1] == algorithms[3] == "approx-bucket"
        # The approximate answers are simulated-cheaper than the exact ones.
        assert outcomes[1].simulated_ms < outcomes[0].simulated_ms
