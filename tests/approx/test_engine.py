"""SQL surface: the APPROX_TOPK clause and the session-wide default."""

import numpy as np
import pytest

from repro.engine.session import Session
from repro.engine.sql import parse
from repro.engine.twitter import generate_tweets
from repro.errors import InvalidParameterError, SqlSyntaxError

QUERY = (
    "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 50"
)


class TestParsing:
    def test_clause_sets_the_target(self):
        query = parse(QUERY + " APPROX_TOPK(0.9)")
        assert query.recall_target == 0.9

    def test_absent_clause_leaves_target_unset(self):
        assert parse(QUERY).recall_target is None

    def test_case_insensitive(self):
        assert parse(QUERY + " approx_topk(0.95)").recall_target == 0.95

    @pytest.mark.parametrize("literal", ["0", "0.0", "1.5", "-0.5"])
    def test_out_of_range_target_rejected(self, literal):
        with pytest.raises(SqlSyntaxError):
            parse(QUERY + f" APPROX_TOPK({literal})")

    def test_non_numeric_target_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse(QUERY + " APPROX_TOPK(high)")


class TestExecution:
    @pytest.fixture()
    def session(self, device):
        session = Session(device)
        session.register(generate_tweets(1 << 14, seed=3))
        return session

    def test_approx_clause_runs_the_approx_plan(self, session):
        result = session.sql(
            QUERY + " APPROX_TOPK(0.95)", model_rows=50_000_000
        )
        assert len(result.columns["id"]) == 50
        notes = result.trace.notes
        assert notes["approx.recall_target"] == 0.95
        assert any(
            kernel.name.endswith("approx-bucket-scan")
            for kernel in result.trace.kernels
        )

    def test_exact_query_carries_no_approx_kernels(self, session):
        result = session.sql(QUERY, model_rows=50_000_000)
        assert "approx.recall_target" not in result.trace.notes
        assert all(
            "approx" not in kernel.name for kernel in result.trace.kernels
        )

    def test_approx_is_simulated_faster_at_scale(self, session):
        exact = session.sql(QUERY, model_rows=50_000_000)
        approx = session.sql(
            QUERY + " APPROX_TOPK(0.99)", model_rows=50_000_000
        )
        assert approx.simulated_ms() < exact.simulated_ms()

    def test_answers_match_on_this_workload(self, session):
        # At the functional table size the candidate set covers the true
        # top 50, so the ids agree as sets with the exact plan.
        exact = session.sql(QUERY, model_rows=50_000_000)
        approx = session.sql(
            QUERY + " APPROX_TOPK(0.99)", model_rows=50_000_000
        )
        exact_ids = set(exact.columns["id"].tolist())
        approx_ids = set(approx.columns["id"].tolist())
        assert len(approx_ids & exact_ids) >= 49

    def test_session_default_applies_to_every_query(self, device):
        session = Session(device, recall_target=0.95)
        session.register(generate_tweets(1 << 14, seed=3))
        result = session.sql(QUERY, model_rows=50_000_000)
        assert result.trace.notes["approx.recall_target"] == 0.95

    def test_per_query_clause_overrides_session_default(self, device):
        session = Session(device, recall_target=0.95)
        session.register(generate_tweets(1 << 14, seed=3))
        result = session.sql(
            QUERY + " APPROX_TOPK(0.9)", model_rows=50_000_000
        )
        assert result.trace.notes["approx.recall_target"] == 0.9

    def test_invalid_session_default_raises(self, device):
        with pytest.raises(InvalidParameterError):
            Session(device, recall_target=0.0)

    def test_target_one_is_bit_identical_to_default(self, device):
        exact_session = Session(device)
        exact_session.register(generate_tweets(1 << 13, seed=5))
        pinned_session = Session(device, recall_target=1.0)
        pinned_session.register(generate_tweets(1 << 13, seed=5))
        exact = exact_session.sql(QUERY, model_rows=10_000_000)
        pinned = pinned_session.sql(QUERY, model_rows=10_000_000)
        assert np.array_equal(exact.columns["id"], pinned.columns["id"])
        assert exact.simulated_ms() == pinned.simulated_ms()
