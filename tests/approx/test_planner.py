"""Planner policy: recall_target = 1.0 is bit-exact and approx-free;
lower targets route to the approximate operator only on a predicted win."""

import numpy as np
import pytest

from repro.core.planner import TopKPlanner
from repro.core.topk import topk
from repro.costmodel import ApproxTopKModel, choose_config
from repro.errors import InvalidParameterError


class TestExactTarget:
    def test_default_plan_never_mentions_approx(self, device):
        choice = TopKPlanner(device).choose(1 << 20, 256, np.dtype(np.float32))
        assert choice.algorithm != "approx-bucket"
        assert choice.approx_config is None
        assert choice.expected_recall == 1.0
        assert all(name != "approx-bucket" for name, _ in choice.candidates)

    def test_explicit_target_one_matches_default_bit_for_bit(self, rng, device):
        data = rng.random(1 << 16).astype(np.float32)
        plain = topk(data, 64, device=device)
        pinned = topk(data, 64, device=device, recall_target=1.0)
        assert plain.algorithm == pinned.algorithm
        assert np.array_equal(plain.values, pinned.values)
        assert np.array_equal(plain.indices, pinned.indices)

    def test_choose_config_refuses_target_one(self, device):
        assert choose_config(1 << 20, 256, 1.0, np.dtype(np.float32), device) is None


class TestRelaxedTarget:
    def test_planner_picks_approx_when_it_wins(self, device):
        choice = TopKPlanner(device).choose(
            1 << 20, 256, np.dtype(np.float32), recall_target=0.99
        )
        assert choice.algorithm == "approx-bucket"
        assert choice.approx_config is not None
        assert choice.expected_recall >= 0.99
        # The approximate plan leads the ranking only because it is
        # predicted faster than the best exact plan.
        exact_best = min(
            seconds
            for name, seconds in choice.candidates
            if name != "approx-bucket"
        )
        assert choice.predicted_seconds < exact_best

    def test_recall_target_is_honored_functionally(self, rng, device):
        from repro.algorithms.base import reference_topk
        from repro.approx import measured_recall

        data = rng.random(1 << 18).astype(np.float32)
        result = topk(data, 256, device=device, recall_target=0.99)
        assert result.algorithm == "approx-bucket"
        reference, _ = reference_topk(data, 256)
        assert measured_recall(result.values, reference) >= 0.99

    def test_chosen_config_never_spills_registers(self, device):
        plan = choose_config(1 << 22, 512, 0.95, np.dtype(np.float32), device)
        assert plan is not None
        config, seconds, recall = plan
        assert recall >= 0.95
        assert seconds > 0.0
        # The search discards configurations over the 64-register budget.
        itemsize_words = max(1, np.dtype(np.float32).itemsize // 4)
        assert config.khat(512) * itemsize_words + 24 <= 64


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_out_of_range_target_raises(self, device, bad):
        with pytest.raises(InvalidParameterError):
            TopKPlanner(device).choose(
                1 << 16, 64, np.dtype(np.float32), recall_target=bad
            )

    @pytest.mark.parametrize("bad", [0.0, 2.0])
    def test_topk_rejects_bad_target(self, rng, device, bad):
        data = rng.random(1024).astype(np.float32)
        with pytest.raises(InvalidParameterError):
            topk(data, 8, device=device, recall_target=bad)


class TestApproxModel:
    def test_model_tracks_the_operator_within_2x(self, rng, device):
        from repro.approx import ApproxBucketTopK
        from repro.gpu.timing import trace_time

        config_model = ApproxTopKModel(device)
        data = rng.random(1 << 16).astype(np.float32)
        model_n, k = 1 << 22, 256
        predicted_ms = config_model.predict_seconds(model_n, k) * 1e3
        result = ApproxBucketTopK(
            device, config=config_model.config
        ).run(data, k, model_n=model_n)
        measured_ms = trace_time(result.trace, device).total_ms
        # Predictive models use peak bandwidths (see docs/cost_model.md):
        # systematic underestimation is expected, gross divergence is not.
        assert predicted_ms <= measured_ms
        assert measured_ms / predicted_ms < 2.0
