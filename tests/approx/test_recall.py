"""The analytic recall model: edge cases, degeneracies, and calibration."""

import numpy as np
import pytest

from repro.approx import (
    ApproxConfig,
    default_config,
    delegate_expected_recall,
    expected_recall,
    measured_recall,
)
from repro.errors import InvalidParameterError


class TestDegenerateConfigurations:
    def test_k_equals_n_is_exact(self):
        # Everything must be kept, so nothing can be lost.
        for buckets in (1, 4, 32):
            config = ApproxConfig(buckets=buckets)
            assert expected_recall(256, 256, config) == 1.0

    def test_single_bucket_is_exact(self):
        config = ApproxConfig(buckets=1, oversample=1)
        assert expected_recall(1 << 20, 64, config) == 1.0

    def test_khat_at_least_k_is_exact(self):
        # khat = ceil(8/4) * 4 = 8 >= k.
        config = ApproxConfig(buckets=4, oversample=4)
        assert expected_recall(1 << 16, 8, config) == 1.0

    def test_khat_at_bucket_capacity_is_exact(self):
        # Each bucket holds <= 4 elements and keeps 4: a full sort.
        config = ApproxConfig(buckets=256, oversample=4)
        assert expected_recall(1024, 256, config) == 1.0


class TestSmallK:
    def test_k_below_bucket_count(self):
        # khat = ceil(4/16) * 1 = 1: every bucket keeps one candidate.
        config = ApproxConfig(buckets=16, oversample=1)
        recall = expected_recall(1024, 4, config)
        assert 0.0 < recall < 1.0

    def test_k_one_with_many_buckets_is_exact(self):
        # The global max always survives its bucket's top-1.
        config = ApproxConfig(buckets=64, oversample=1)
        assert expected_recall(1 << 16, 1, config) == 1.0


class TestModelShape:
    def test_oversampling_monotonically_improves_recall(self):
        recalls = [
            expected_recall(1 << 16, 64, ApproxConfig(buckets=32, oversample=m))
            for m in (1, 2, 3)
        ]
        assert recalls == sorted(recalls)
        assert recalls[-1] > recalls[0]

    def test_default_config_is_near_exact_at_headline_k(self):
        config = default_config(1 << 24, 256)
        assert expected_recall(1 << 24, 256, config) > 1.0 - 1e-6

    def test_matches_monte_carlo(self, rng):
        # Exchangeable assignment, small enough to simulate directly.
        n, k, config = 64, 8, ApproxConfig(buckets=4, oversample=1)
        khat = config.khat(k)
        trials = 4000
        kept = 0
        for _ in range(trials):
            positions = rng.permutation(n)[:k]  # the top-k's positions
            buckets = positions % config.buckets
            counts = np.bincount(buckets, minlength=config.buckets)
            kept += np.minimum(counts, khat).sum()
        empirical = kept / (trials * k)
        assert expected_recall(n, k, config) == pytest.approx(
            empirical, abs=0.02
        )

    def test_invalid_shapes_raise(self):
        config = ApproxConfig()
        with pytest.raises(InvalidParameterError):
            expected_recall(0, 1, config)
        with pytest.raises(InvalidParameterError):
            expected_recall(16, 0, config)
        with pytest.raises(InvalidParameterError):
            expected_recall(16, 17, config)


class TestDelegateRecall:
    def test_disabled_filter_matches_plain_model(self):
        config = ApproxConfig(buckets=16)
        assert delegate_expected_recall(1 << 16, 32, config) == expected_recall(
            1 << 16, 32, config
        )

    def test_grouping_reduces_effective_population(self):
        plain = ApproxConfig(buckets=16, oversample=1)
        grouped = ApproxConfig(buckets=16, oversample=1, delegate_group=128)
        # Same bucket structure over far fewer items: recall can only be
        # the group-level hypergeometric, still in (0, 1].
        recall = delegate_expected_recall(1 << 20, 64, grouped)
        assert 0.0 < recall <= 1.0
        assert recall == expected_recall(
            (1 << 20) // 128, 64, plain
        )


class TestMeasuredRecall:
    def test_identical_answers_score_one(self, rng):
        values = rng.random(64).astype(np.float32)
        assert measured_recall(values, values.copy()) == 1.0

    def test_counts_misses(self):
        exact = np.array([5.0, 4.0, 3.0, 2.0], dtype=np.float32)
        approx = np.array([5.0, 4.0, 1.0, 0.5], dtype=np.float32)
        assert measured_recall(approx, exact) == 0.5

    def test_duplicates_at_boundary_count_with_multiplicity(self):
        # The exact top-4 holds the value 3.0 twice; recovering it once
        # scores one hit, not two.
        exact = np.array([5.0, 3.0, 3.0, 2.0], dtype=np.float32)
        approx = np.array([5.0, 3.0, 2.0, 1.0], dtype=np.float32)
        assert measured_recall(approx, exact) == 0.75

    def test_special_values_match_radix_ordering(self):
        # Same policy as tests/test_special_values.py: +/-inf are ordinary
        # order extremes, NaN is a distinct code above +inf.
        exact = np.array([np.inf, 1.0, -np.inf], dtype=np.float32)
        assert measured_recall(exact.copy(), exact) == 1.0
        with_nan = np.array([np.nan, np.inf, 1.0], dtype=np.float32)
        assert measured_recall(with_nan.copy(), with_nan) == 1.0
        # NaN is not +inf: swapping one for the other is a miss.
        assert measured_recall(
            np.array([np.inf], dtype=np.float32),
            np.array([np.nan], dtype=np.float32),
        ) == 0.0

    def test_dtype_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            measured_recall(
                np.zeros(4, dtype=np.float64), np.zeros(4, dtype=np.float32)
            )

    def test_empty_reference_scores_one(self):
        assert measured_recall(
            np.array([], dtype=np.float32), np.array([], dtype=np.float32)
        ) == 1.0
