"""The bucketed approximate operator: exactness boundaries, determinism,
special values, the delegate pre-filter, and trace accounting."""

import numpy as np
import pytest

from repro.algorithms.base import reference_topk
from repro.approx import (
    ApproxBucketTopK,
    ApproxConfig,
    default_config,
    exact_delegate_filter,
    expected_recall,
    measured_recall,
)
from repro.bitonic.topk import BitonicTopK


class TestExactDegeneracies:
    def test_single_bucket_is_bit_equal_to_exact(self, rng, device):
        data = rng.random(1 << 12).astype(np.float32)
        exact = BitonicTopK(device).run(data, 32)
        approx = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=1, oversample=1)
        ).run(data, 32)
        assert np.array_equal(exact.values, approx.values)
        assert np.array_equal(exact.indices, approx.indices)
        assert approx.trace.notes["approx.expected_recall"] == 1.0

    def test_k_equals_n_recovers_everything(self, rng, device):
        data = rng.random(256).astype(np.float32)
        result = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=8)
        ).run(data, 256)
        reference, _ = reference_topk(data, 256)
        assert measured_recall(result.values, reference) == 1.0


class TestRecallOnRandomData:
    def test_default_config_meets_its_own_prediction(self, rng, device):
        data = rng.random(1 << 16).astype(np.float32)
        config = default_config(len(data), 64)
        result = ApproxBucketTopK(device, config=config).run(data, 64)
        reference, _ = reference_topk(data, 64)
        predicted = expected_recall(len(data), 64, config)
        assert measured_recall(result.values, reference) >= predicted - 0.05

    def test_k_below_bucket_count(self, rng, device):
        data = rng.random(4096).astype(np.float32)
        config = ApproxConfig(buckets=64, oversample=1)
        result = ApproxBucketTopK(device, config=config).run(data, 4)
        assert len(result.values) == 4
        reference, _ = reference_topk(data, 4)
        assert measured_recall(result.values, reference) > 0.0

    def test_duplicate_values_at_the_boundary(self, device):
        # Many copies of the k-th value: multiset recall still reaches 1.0
        # because every bucket's copies outrank the filler below them.
        data = np.concatenate(
            [np.full(64, 7.0), np.arange(960, dtype=np.float32) / 1000.0]
        ).astype(np.float32)
        config = ApproxConfig(buckets=16, oversample=3)
        result = ApproxBucketTopK(device, config=config).run(data, 32)
        reference, _ = reference_topk(data, 32)
        assert measured_recall(result.values, reference) == 1.0


class TestDeterminism:
    def test_same_seed_same_answer(self, rng, device):
        data = rng.random(1 << 14).astype(np.float32)
        config = ApproxConfig(buckets=16, seed=7)
        first = ApproxBucketTopK(device, config=config).run(data, 64)
        second = ApproxBucketTopK(device, config=config).run(data, 64)
        assert np.array_equal(first.values, second.values)
        assert np.array_equal(first.indices, second.indices)
        assert first.trace.notes == second.trace.notes

    def test_strided_default_is_deterministic(self, rng, device):
        data = rng.random(1 << 14).astype(np.float32)
        config = ApproxConfig(buckets=16)
        runs = [
            ApproxBucketTopK(device, config=config).run(data, 64)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].values, runs[1].values)


class TestSpecialValues:
    """The policy of tests/test_special_values.py holds for the
    approximate operator too — per-bucket selection uses the same
    order-preserving codes as the radix family."""

    def test_positive_infinity_wins(self, rng, device):
        data = rng.random(2048).astype(np.float32)
        data[100] = np.inf
        result = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=8)
        ).run(data, 5)
        assert result.values[0] == np.inf
        assert 100 in result.indices.tolist()

    def test_negative_infinity_never_surfaces(self, rng, device):
        data = rng.random(2048).astype(np.float32)
        data[7] = -np.inf
        result = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=8)
        ).run(data, 10)
        assert -np.inf not in result.values
        assert 7 not in result.indices.tolist()

    def test_nan_orders_above_inf_as_documented(self, device):
        # The *bucketed scan* selects on radix codes, which place NaN above
        # +inf; a non-degenerate configuration therefore surfaces NaN first
        # (a degenerate one delegates to the bitonic network, whose NaN
        # behaviour is undefined — see tests/test_special_values.py).
        data = np.ones(512, dtype=np.float32)
        data[3] = np.nan
        result = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=8, oversample=1)
        ).run(data, 8)
        assert result.indices[0] == 3
        assert np.isnan(result.values[0])

    def test_denormals_and_huge_values(self, rng, device):
        data = rng.random(1024).astype(np.float32)
        data[0] = np.float32(1e-40)
        data[1] = np.float32(3e38)
        result = ApproxBucketTopK(
            device, config=ApproxConfig(buckets=4)
        ).run(data, 4)
        assert result.values[0] == np.float32(3e38)


class TestDelegateFilter:
    def test_exact_filter_keeps_every_topk_member(self, rng):
        data = rng.random(1 << 12).astype(np.float32)
        groups, members = exact_delegate_filter(data, 32, 64)
        _, exact_indices = reference_topk(data, 32)
        assert set(exact_indices.tolist()) <= set(members.tolist())
        # Each surviving group contributes its full member run.
        assert len(members) == len(groups) * 64

    def test_delegate_mode_still_finds_the_top(self, rng, device):
        data = rng.random(1 << 14).astype(np.float32)
        config = ApproxConfig(buckets=16, delegate_group=32)
        result = ApproxBucketTopK(device, config=config).run(
            data, 16, model_n=1 << 22
        )
        reference, _ = reference_topk(data, 16)
        assert measured_recall(result.values, reference) >= 0.9
        # At model scale the n-to-(b * khat * g) merge cut dominates the
        # bookkeeping the pre-filter adds.
        assert result.trace.notes["approx.global_bytes_saved"] > 0.0


class TestTraceAccounting:
    def test_notes_describe_the_configuration(self, rng, device):
        data = rng.random(1 << 12).astype(np.float32)
        config = ApproxConfig(buckets=16, oversample=2)
        result = ApproxBucketTopK(device, config=config).run(data, 32)
        notes = result.trace.notes
        assert notes["approx.buckets"] == 16
        assert notes["approx.khat"] == config.khat(32)
        assert notes["approx.candidates"] == config.candidates(32)
        assert 0.0 < notes["approx.expected_recall"] <= 1.0

    def test_model_n_scales_the_trace_not_the_answer(self, rng, device):
        data = rng.random(1 << 12).astype(np.float32)
        config = ApproxConfig(buckets=16)
        small = ApproxBucketTopK(device, config=config).run(data, 32)
        large = ApproxBucketTopK(device, config=config).run(
            data, 32, model_n=1 << 24
        )
        assert np.array_equal(small.values, large.values)
        assert large.trace.global_bytes > small.trace.global_bytes

    def test_faster_than_exact_at_headline_shape(self, rng, device):
        data = rng.random(1 << 16).astype(np.float32)
        model_n, k = 1 << 24, 256
        exact_ms = (
            BitonicTopK(device)
            .run(data, k, model_n=model_n)
            .simulated_ms(device)
        )
        approx_ms = (
            ApproxBucketTopK(device, config=default_config(model_n, k))
            .run(data, k, model_n=model_n)
            .simulated_ms(device)
        )
        assert exact_ms / approx_ms >= 2.0
