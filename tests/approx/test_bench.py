"""The approx-bench sweep: report structure, gates, baseline checking,
and the committed headline claim."""

import json
from pathlib import Path

import pytest

from repro.approx import (
    ApproxWorkload,
    check_baseline,
    run_approx_benchmark,
)
from repro.approx.bench import (
    DEFAULT_BUCKETS,
    HEADLINE_K,
    HEADLINE_N,
    MIN_HEADLINE_RECALL,
    MIN_HEADLINE_SPEEDUP,
    REPORT_FORMAT,
)
from repro.errors import InvalidParameterError

BASELINE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "baselines"
    / "BENCH_approx.json"
)

SMALL = ApproxWorkload(
    ns=(1 << 16,), ks=(32,), buckets=(DEFAULT_BUCKETS, 8), functional_cap=1 << 14
)


@pytest.fixture(scope="module")
def small_report():
    from repro.gpu.device import get_device

    return run_approx_benchmark(SMALL, device=get_device("titan-x-maxwell"))


class TestSweep:
    def test_covers_the_grid(self, small_report):
        assert len(small_report.points) == 2
        for point in small_report.points:
            assert point.exact_ms > 0 and point.approx_ms > 0
            assert 0.0 <= point.measured <= 1.0
            assert 0.0 < point.expected <= 1.0

    def test_headline_absent_from_small_sweep(self, small_report):
        assert small_report.headline is None
        assert not small_report.passed

    def test_deterministic_per_seed(self, device):
        again = run_approx_benchmark(SMALL, device=device)
        first = [p.to_dict() for p in run_approx_benchmark(SMALL, device=device).points]
        second = [p.to_dict() for p in again.points]
        assert first == second

    def test_render_and_dict_round(self, small_report):
        doc = small_report.to_dict()
        assert doc["format"] == REPORT_FORMAT
        assert doc["workload"] == SMALL.to_dict()
        assert len(doc["points"]) == 2
        text = small_report.render()
        assert "headline" in text

    def test_invalid_workloads_raise(self):
        with pytest.raises(InvalidParameterError):
            ApproxWorkload(ns=())
        with pytest.raises(InvalidParameterError):
            ApproxWorkload(ks=(0,))
        with pytest.raises(InvalidParameterError):
            ApproxWorkload(functional_cap=16, ks=(64,))


class TestBaselineGate:
    def test_round_trip_is_clean(self, small_report):
        assert check_baseline(small_report, small_report.to_dict()) == []

    def test_wrong_format_rejected(self, small_report):
        assert check_baseline(small_report, {"format": "other"}) == [
            f"baseline is not a {REPORT_FORMAT} document"
        ]

    def test_workload_mismatch_rejected(self, small_report):
        baseline = small_report.to_dict()
        baseline["workload"] = dict(baseline["workload"], seed=99)
        problems = check_baseline(small_report, baseline)
        assert len(problems) == 1 and "workload" in problems[0]

    def test_simulated_regression_detected(self, small_report):
        baseline = small_report.to_dict()
        baseline["points"][0]["approx_ms"] /= 2.0
        problems = check_baseline(small_report, baseline)
        assert any("approx_ms" in p for p in problems)

    def test_recall_regression_detected(self, small_report):
        baseline = small_report.to_dict()
        baseline["points"][1]["measured_recall"] = 1.1
        problems = check_baseline(small_report, baseline)
        assert any("recall" in p for p in problems)

    def test_missing_point_detected(self, small_report):
        baseline = small_report.to_dict()
        baseline["points"].append(dict(baseline["points"][0], k=48))
        problems = check_baseline(small_report, baseline)
        assert any("missing" in p for p in problems)


class TestCommittedBaseline:
    def test_baseline_exists_and_carries_a_passing_headline(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        assert baseline["format"] == REPORT_FORMAT
        assert baseline["passed"] is True
        head = baseline["headline"]
        assert head["model_n"] == HEADLINE_N and head["k"] == HEADLINE_K
        assert head["speedup"] >= MIN_HEADLINE_SPEEDUP
        assert head["measured_recall"] >= MIN_HEADLINE_RECALL

    def test_regenerated_sweep_matches_the_committed_baseline(self, device):
        baseline = json.loads(BASELINE_PATH.read_text())
        report = run_approx_benchmark(
            ApproxWorkload(**baseline["workload"]), device=device
        )
        assert report.passed
        assert check_baseline(report, baseline) == []
