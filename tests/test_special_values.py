"""Special-value handling policy across algorithms.

Float inputs may contain infinities and signed zeros; the library's policy
(documented in repro.algorithms.keys) is:

* +inf / -inf participate normally (they are ordinary IEEE-754 order
  extremes);
* -0.0 ties with 0.0 (numeric equality governs; the radix bit transform
  places -0.0 immediately below +0.0, which is consistent with a stable
  numeric order);
* NaN-free inputs are assumed, as in the paper's workloads.  The radix
  transform orders NaN above +inf (a documented artifact); comparison
  networks propagate them unpredictably.  These tests pin down the
  *documented* behaviours, not accidental ones.
"""

import numpy as np
import pytest

from repro.algorithms import keys as keycodec
from repro.algorithms.base import reference_topk
from repro.algorithms.registry import EVALUATED_ALGORITHMS, create


class TestInfinities:
    @pytest.mark.parametrize("name", EVALUATED_ALGORITHMS)
    def test_positive_infinity_wins(self, name, rng):
        data = rng.random(2048).astype(np.float32)
        data[100] = np.inf
        algorithm = create(name)
        if not algorithm.supports(len(data), 5, data.dtype):
            pytest.skip("unsupported configuration")
        result = algorithm.run(data, 5)
        assert result.values[0] == np.inf
        assert 100 in result.indices.tolist()

    @pytest.mark.parametrize("name", EVALUATED_ALGORITHMS)
    def test_negative_infinity_never_surfaces(self, name, rng):
        data = rng.random(2048).astype(np.float32)
        data[7] = -np.inf
        algorithm = create(name)
        if not algorithm.supports(len(data), 10, data.dtype):
            pytest.skip("unsupported configuration")
        result = algorithm.run(data, 10)
        assert -np.inf not in result.values
        assert 7 not in result.indices.tolist()

    def test_all_infinities(self):
        data = np.full(256, -np.inf, dtype=np.float32)
        data[:4] = np.inf
        result = create("radix-select").run(data, 4)
        assert (result.values == np.inf).all()


class TestSignedZero:
    @pytest.mark.parametrize("name", ["sort", "radix-select", "bitonic"])
    def test_negative_zero_ties_with_zero(self, name):
        data = np.array([-0.0, 0.0, -1.0, 1.0], dtype=np.float32)
        result = create(name).run(data, 3)
        expected, _ = reference_topk(data, 3)
        # Values compare equal numerically: 1.0, 0.0, 0.0.
        assert np.array_equal(np.sort(result.values)[::-1], expected)

    def test_radix_codes_order_signed_zero_consistently(self):
        values = np.array([-0.0, 0.0], dtype=np.float32)
        codes = keycodec.encode(values)
        assert codes[0] < codes[1]  # -0.0 immediately below +0.0


class TestNanDocumentedArtifact:
    def test_radix_transform_puts_nan_above_inf(self):
        values = np.array([np.nan, np.inf, 1.0], dtype=np.float32)
        codes = keycodec.encode(values)
        assert codes[0] > codes[1] > codes[2]

    def test_radix_select_surfaces_nan_first(self):
        """Consequence of the bit ordering — documented, exercised here so
        a behaviour change is noticed."""
        data = np.ones(512, dtype=np.float32)
        data[3] = np.nan
        result = create("radix-select").run(data, 1)
        assert result.indices[0] == 3


class TestExtremeMagnitudes:
    @pytest.mark.parametrize("name", ["sort", "radix-select", "bucket-select",
                                      "bitonic"])
    def test_denormals_and_huge_values(self, name, rng):
        data = rng.random(1024).astype(np.float32)
        data[0] = np.float32(1e-40)  # denormal
        data[1] = np.float32(3e38)  # near float32 max
        data[2] = np.float32(-3e38)
        result = create(name).run(data, 4)
        expected, _ = reference_topk(data, 4)
        assert np.array_equal(np.sort(result.values)[::-1], expected)
        assert result.values[0] == np.float32(3e38)

    def test_int64_extremes(self):
        data = np.array(
            [np.iinfo(np.int64).min, -1, 0, 1, np.iinfo(np.int64).max],
            dtype=np.int64,
        )
        for name in ("sort", "radix-select", "bitonic"):
            result = create(name).run(data, 2)
            assert result.values.tolist() == [np.iinfo(np.int64).max, 1]
