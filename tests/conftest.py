"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.gpu.device import get_device


@pytest.fixture
def rng():
    """A deterministic random generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    """The paper's evaluation GPU profile."""
    return get_device("titan-x-maxwell")
