"""DecayedTopK: the carried candidate set vs full-history rescoring."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.streaming.window import DecayedTopK, StreamChunk


def make_chunks(values_per_chunk):
    chunks = []
    next_gid = 0
    for values in values_per_chunk:
        values = np.asarray(values)
        gids = np.arange(next_gid, next_gid + len(values), dtype=np.int64)
        next_gid += len(values)
        chunks.append(StreamChunk(values=values, gids=gids))
    return chunks


def drive_pair(k, decay, chunks, shards=1):
    """Tick the incremental arm against the full-history oracle; assert
    bit-equality of scores and gids on every tick."""
    incremental = DecayedTopK(k, decay, shards=shards, mode="incremental")
    oracle = DecayedTopK(k, decay, shards=shards, mode="recompute")
    incremental.open()
    oracle.open()
    answers = []
    for tick, chunk in enumerate(chunks):
        incremental.advance(chunk)
        oracle.advance(chunk)
        inc_scores, inc_gids = incremental.emit()
        ora_scores, ora_gids = oracle.emit()
        assert np.array_equal(inc_scores, ora_scores, equal_nan=True), (
            f"scores diverged at tick {tick}"
        )
        assert np.array_equal(inc_gids, ora_gids), (
            f"gids diverged at tick {tick}"
        )
        answers.append((inc_scores, inc_gids))
    incremental.close()
    oracle.close()
    return answers


class TestValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            DecayedTopK(0, 0.9)

    @pytest.mark.parametrize("decay", [0.0, -0.5, 1.5])
    def test_rejects_decay_outside_unit_interval(self, decay):
        with pytest.raises(InvalidParameterError):
            DecayedTopK(4, decay)

    def test_rejects_bad_shards(self):
        with pytest.raises(InvalidParameterError):
            DecayedTopK(4, 0.9, shards=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(InvalidParameterError):
            DecayedTopK(4, 0.9, mode="lazy")

    def test_auto_resolves_to_incremental(self):
        assert DecayedTopK(4, 0.9, mode="auto").mode == "incremental"


class TestProtocol:
    def test_advance_before_open_raises(self):
        chunk = make_chunks([np.arange(4, dtype=np.float32)])[0]
        with pytest.raises(InvalidParameterError):
            DecayedTopK(2, 0.9).advance(chunk)

    def test_emit_before_open_raises(self):
        with pytest.raises(InvalidParameterError):
            DecayedTopK(2, 0.9).emit()

    def test_empty_emit_before_first_chunk(self):
        maintainer = DecayedTopK(2, 0.9)
        maintainer.open()
        scores, gids = maintainer.emit()
        assert len(scores) == 0 and len(gids) == 0
        maintainer.close()


class TestParity:
    @pytest.mark.parametrize("decay", [0.5, 0.9, 0.99, 1.0])
    def test_decay_factors(self, rng, decay):
        chunks = [rng.standard_normal(48).astype(np.float32)
                  for _ in range(12)]
        drive_pair(6, decay, make_chunks(chunks))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int64])
    def test_dtypes(self, rng, dtype):
        chunks = []
        for _ in range(8):
            if np.dtype(dtype).kind == "f":
                chunks.append(rng.standard_normal(32).astype(dtype))
            else:
                chunks.append(rng.integers(0, 100, size=32).astype(dtype))
        drive_pair(5, 0.8, make_chunks(chunks))

    def test_cross_tick_ties(self):
        # value 10 arriving at tick t scores exactly like value 9 at
        # tick t+... no — engineer an exact collision instead: a row of
        # value v at tick 1 scores v*0.5 at tick 2, colliding with a
        # fresh row of value v*0.5.  Ties must break to the lower gid in
        # both arms identically.
        chunks = make_chunks(
            [
                np.array([8.0, 2.0], dtype=np.float64),
                np.array([4.0, 1.0], dtype=np.float64),
                np.array([2.0, 0.5], dtype=np.float64),
            ]
        )
        answers = drive_pair(4, 0.5, chunks)
        # At tick 2: gid 0 scores 8*0.25 = 2.0, gid 2 scores 4*0.5 = 2.0,
        # gid 4 scores 2.0 — a three-way collision resolved by gid.
        scores, gids = answers[2]
        assert np.array_equal(scores[:3], np.array([2.0, 2.0, 2.0]))
        assert np.array_equal(gids[:3], np.array([0, 2, 4]))

    def test_nan_and_inf(self, rng):
        chunks = []
        for _ in range(6):
            values = rng.standard_normal(24).astype(np.float32)
            values[0] = np.nan
            values[1] = np.inf
            chunks.append(values)
        answers = drive_pair(4, 0.9, make_chunks(chunks))
        # The newest Inf always wins (Inf * decay**0 vs decayed elders is
        # still Inf; ties between Infs break to the lower gid).
        assert np.isposinf(answers[-1][0][0])

    def test_duplicate_values_within_chunk(self):
        chunks = make_chunks(
            [np.full(8, 3.0, dtype=np.float32) for _ in range(4)]
        )
        answers = drive_pair(3, 0.7, chunks)
        # Fresh duplicates outscore decayed ones; within the fresh chunk
        # ties break to the lower gid.
        assert np.array_equal(answers[-1][1], np.array([24, 25, 26]))

    def test_no_decay_reduces_to_running_topk(self, rng):
        chunks = [rng.random(32).astype(np.float32) for _ in range(5)]
        answers = drive_pair(4, 1.0, make_chunks(chunks))
        everything = np.concatenate(chunks).astype(np.float64)
        expected = np.sort(everything)[::-1][:4]
        assert np.array_equal(answers[-1][0], expected)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_summaries(self, rng, shards):
        chunks = [rng.standard_normal(40).astype(np.float32)
                  for _ in range(6)]
        sharded = drive_pair(5, 0.9, make_chunks(chunks), shards=shards)
        unsharded = drive_pair(5, 0.9, make_chunks(chunks), shards=1)
        for tick in range(len(chunks)):
            assert np.array_equal(sharded[tick][0], unsharded[tick][0])
            assert np.array_equal(sharded[tick][1], unsharded[tick][1])


class TestStateBounds:
    def test_carried_set_stays_bounded(self, rng):
        # The incremental arm's whole point: state is O(k), not O(stream).
        maintainer = DecayedTopK(8, 0.9)
        maintainer.open()
        for chunk in make_chunks(
            [rng.random(64).astype(np.float32) for _ in range(50)]
        ):
            maintainer.advance(chunk)
            maintainer.emit()
            assert len(maintainer._values) <= 8 + 8  # winners + new summary
        maintainer.close()

    def test_emitted_scores_are_float64(self, rng):
        maintainer = DecayedTopK(4, 0.9)
        maintainer.open()
        chunk = make_chunks([rng.random(16).astype(np.float32)])[0]
        maintainer.advance(chunk)
        scores, _ = maintainer.emit()
        assert scores.dtype == np.float64
        maintainer.close()

    def test_trace_notes(self, device):
        maintainer = DecayedTopK(8, 0.9, device=device, shards=3)
        trace = maintainer.tick_trace(1024)
        assert trace.notes["streaming.mode"] == "incremental"
        assert trace.notes["streaming.shards"] == 3
