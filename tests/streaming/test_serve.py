"""serve_stream: the per-tick deadline ladder (degrade, shed, breaker)."""

import numpy as np
import pytest

from repro.data.stream import stream_chunk
from repro.errors import InvalidParameterError
from repro.resilience.breaker import BreakerPolicy
from repro.slo.qos import QoSClass, SloPolicy
from repro.streaming.serve import (
    TICK_STATUSES,
    StreamServeReport,
    TickOutcome,
    serve_stream,
)
from repro.streaming.subscription import Subscription
from repro.streaming.window import StreamChunk


def chunk_source(chunk_rows, seed=0):
    """The seeded tweet stream as StreamChunks, like Session.subscribe."""
    tick = 0
    while True:
        chunk = stream_chunk(tick, chunk_rows, seed)
        yield StreamChunk(values=chunk["score"], gids=chunk["id"])
        tick += 1


def subscription(chunk_rows=256, window_chunks=4, mode="incremental"):
    return Subscription(
        8,
        chunk_rows,
        window=window_chunks * chunk_rows,
        mode=mode,
        source_chunks=chunk_source(chunk_rows),
    )


def policy_with(
    deadline_ms,
    degradable,
    sheddable,
    initial_service_ms=0.05,
    failure_threshold=3,
):
    tenant = QoSClass(
        "tenant", priority=0, deadline_ms=deadline_ms, queue_budget=8,
        degradable=degradable, sheddable=sheddable,
    )
    return SloPolicy(
        classes=(tenant,),
        initial_service_ms=initial_service_ms,
        breaker=BreakerPolicy(failure_threshold=failure_threshold),
    )


class TestHappyPath:
    def test_generous_deadline_delivers_every_tick(self):
        with subscription() as stream:
            report = serve_stream(
                stream, 12,
                policy=policy_with(1000.0, False, False),
                qos="tenant",
            )
        assert report.ticks == 12
        assert report.delivered == 12
        assert report.deadline_hit_rate == 1.0
        assert not report.breaker_tripped
        assert all(outcome.status == "ok" for outcome in report.outcomes)

    def test_rejects_zero_ticks(self):
        with subscription() as stream:
            with pytest.raises(InvalidParameterError):
                serve_stream(stream, 0)

    def test_unknown_qos_class_raises(self):
        with subscription() as stream:
            with pytest.raises(InvalidParameterError):
                serve_stream(stream, 4, qos="platinum")


class TestDegrade:
    def test_recompute_window_degrades_in_place(self):
        # Projection starts far over the deadline; the class consents to
        # degradation, so rung 1 flips the maintainer to incremental and
        # serving continues exactly.
        with subscription(mode="recompute") as stream:
            policy = policy_with(
                1.0, degradable=True, sheddable=False,
                initial_service_ms=50.0,
            )
            report = serve_stream(stream, 10, policy=policy, qos="tenant")
            assert stream.mode == "incremental"
            assert stream.maintainer.mode == "incremental"
        assert report.degraded_ticks == 1
        assert report.outcomes[0].status == "degraded"
        assert report.delivered == 10
        assert report.shed_ticks == 0

    def test_degraded_answers_stay_exact(self):
        # Serve a recompute stream into degradation, then replay the same
        # chunks through an undegraded incremental subscription.
        with subscription(mode="recompute") as degraded:
            policy = policy_with(
                1.0, degradable=True, sheddable=False,
                initial_service_ms=50.0,
            )
            serve_stream(degraded, 8, policy=policy, qos="tenant")
            degraded_answer = degraded.maintainer.emit()
        with subscription(mode="incremental") as oracle:
            for _ in range(8):
                oracle.step()
            oracle_answer = oracle.maintainer.emit()
        assert np.array_equal(
            degraded_answer[0], oracle_answer[0], equal_nan=True
        )
        assert np.array_equal(degraded_answer[1], oracle_answer[1])

    def test_non_degradable_class_never_degrades(self):
        with subscription(mode="recompute") as stream:
            policy = policy_with(
                1.0, degradable=False, sheddable=False,
                initial_service_ms=50.0, failure_threshold=100,
            )
            serve_stream(stream, 6, policy=policy, qos="tenant")
            assert stream.maintainer.mode == "recompute"


class TestShed:
    def test_projected_overrun_sheds_then_recovers(self):
        # Incremental already (nothing to degrade), projection starts high
        # and EWMA-decays below the deadline: early ticks shed, later
        # ticks deliver.
        with subscription() as stream:
            policy = policy_with(
                1.0, degradable=True, sheddable=True,
                initial_service_ms=10.0, failure_threshold=100,
            )
            report = serve_stream(stream, 20, policy=policy, qos="tenant")
        assert report.shed_ticks > 0
        assert report.delivered > 0
        assert not report.breaker_tripped
        sheds = [o for o in report.outcomes if o.status == "shed"]
        assert all(o.error == "DeadlineExceededError" for o in sheds)
        assert all(o.missed for o in sheds)
        # Sheds front-load: once projection recovers it stays recovered.
        statuses = [o.status for o in report.outcomes]
        assert statuses[0] == "shed"
        assert statuses[-1] == "ok"

    def test_shed_ticks_still_advance_the_window(self):
        with subscription() as stream:
            policy = policy_with(
                1.0, degradable=False, sheddable=True,
                initial_service_ms=10.0, failure_threshold=100,
            )
            serve_stream(stream, 5, policy=policy, qos="tenant")
            # Every chunk was absorbed whether or not its emit was paid.
            assert stream.maintainer.ticks == 5


class TestBreaker:
    def test_consecutive_misses_trip_the_breaker(self):
        # An impossible deadline on a rigid class: every tick misses, and
        # after failure_threshold misses the stream stops serving.
        with subscription() as stream:
            policy = policy_with(
                1e-6, degradable=False, sheddable=False,
                failure_threshold=3,
            )
            report = serve_stream(stream, 50, policy=policy, qos="tenant")
        assert report.breaker_tripped
        assert report.ticks == 4  # 3 misses + the breaker-open record
        assert report.outcomes[-1].status == "breaker-open"
        assert report.outcomes[-1].error == "DeadlineExceededError"
        assert report.deadline_hit_rate == 0.0


class TestReport:
    def outcome(self, tick, status, ms=0.1, missed=False):
        return TickOutcome(
            tick=tick, status=status, simulated_ms=ms,
            deadline_ms=1.0, projected_ms=ms, missed=missed,
        )

    def test_summary_counters(self):
        report = StreamServeReport(qos="tenant", deadline_ms=1.0)
        report.outcomes = [
            self.outcome(0, "ok"),
            self.outcome(1, "degraded"),
            self.outcome(2, "shed", missed=True),
            self.outcome(3, "breaker-open", ms=0.0, missed=True),
        ]
        assert report.ticks == 4
        assert report.delivered == 2
        assert report.degraded_ticks == 1
        assert report.shed_ticks == 1
        assert report.breaker_tripped
        assert report.deadline_hit_rate == 0.5

    def test_p99_excludes_breaker_ticks(self):
        report = StreamServeReport(qos="tenant", deadline_ms=1.0)
        report.outcomes = [
            self.outcome(0, "ok", ms=2.0),
            self.outcome(1, "breaker-open", ms=0.0, missed=True),
        ]
        assert report.p99_tick_ms == 2.0

    def test_to_dict_and_render(self):
        report = StreamServeReport(qos="tenant", deadline_ms=1.0)
        report.outcomes = [self.outcome(0, "ok")]
        payload = report.to_dict()
        assert payload["qos"] == "tenant"
        assert payload["outcomes"][0]["status"] == "ok"
        assert "deadline hit rate" in report.render()

    def test_statuses_cover_the_ladder(self):
        assert TICK_STATUSES == ("ok", "degraded", "shed", "breaker-open")
