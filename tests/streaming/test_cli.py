"""The stream-bench command and the streaming EXPLAIN flags."""

import json

from repro.cli import main

FAST = [
    "--k", "8",
    "--chunk-rows", "256",
    "--model-chunk-rows", str(1 << 20),
    "--window-chunks", "8",
    "--ticks", "12",
]


class TestStreamBench:
    def test_text_report(self, capsys):
        assert main(["stream-bench", *FAST]) == 0
        out = capsys.readouterr().out
        assert "window-incremental" in out
        assert "PASS" in out

    def test_json_report(self, capsys):
        assert main(["stream-bench", *FAST, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-streaming-bench"
        assert payload["passed"] is True
        assert payload["workload"]["k"] == 8

    def test_out_writes_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_streaming.json"
        assert main(["stream-bench", *FAST, "--out", str(artifact)]) == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "repro-streaming-bench"

    def test_self_baseline_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_streaming.json"
        assert main(["stream-bench", *FAST, "--out", str(artifact)]) == 0
        assert main(
            ["stream-bench", *FAST, "--baseline", str(artifact)]
        ) == 0
        capsys.readouterr()

    def test_baseline_workload_mismatch_fails(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_streaming.json"
        assert main(["stream-bench", *FAST, "--out", str(artifact)]) == 0
        other = [*FAST[:1], "16", *FAST[2:]]  # k 8 -> 16
        assert main(
            ["stream-bench", *other, "--baseline", str(artifact)]
        ) == 1
        assert "baseline regression" in capsys.readouterr().err

    def test_failed_speedup_gate_exits_nonzero(self, capsys):
        # One chunk per window = full churn: incremental cannot beat
        # recompute, so the speedup gate must trip.
        assert main(
            [
                "stream-bench",
                "--k", "8",
                "--chunk-rows", "256",
                "--model-chunk-rows", str(1 << 20),
                "--window-chunks", "1",
                "--ticks", "4",
            ]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_workload_is_a_typed_error(self, capsys):
        assert main(
            ["stream-bench", "--k", "512", "--chunk-rows", "256"]
        ) == 3
        assert "InvalidParameterError" in capsys.readouterr().err


class TestExplainStream:
    def test_window_explain(self, capsys):
        assert main(
            ["explain", "--k", "64",
             "--window", str(1 << 18), "--chunk-rows", str(1 << 14)]
        ) == 0
        out = capsys.readouterr().out
        assert "Stream" in out
        assert "incremental" in out and "recompute" in out

    def test_decay_explain(self, capsys):
        assert main(
            ["explain", "--k", "64",
             "--decay", "0.9", "--chunk-rows", str(1 << 14)]
        ) == 0
        out = capsys.readouterr().out
        assert "DECAY 0.9" in out

    def test_json_shape(self, capsys):
        assert main(
            ["explain", "--k", "64",
             "--window", str(1 << 18), "--chunk-rows", str(1 << 14),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-plan"
        kinds = {s["plan"]["kind"] for s in payload["strategies"]}
        assert kinds == {"TopK"}

    def test_explain_without_sql_or_stream_flags_errors(self, capsys):
        assert main(["explain"]) == 3
        assert "InvalidParameterError" in capsys.readouterr().err
