"""WindowTopK: the summary ring vs the recompute oracle, bit for bit."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.gpu.timing import trace_time
from repro.streaming.window import MODES, StreamChunk, WindowTopK


def make_chunks(values_per_chunk):
    """Wrap a list of per-chunk value arrays into StreamChunks with
    globally increasing row ids."""
    chunks = []
    next_gid = 0
    for values in values_per_chunk:
        values = np.asarray(values)
        gids = np.arange(next_gid, next_gid + len(values), dtype=np.int64)
        next_gid += len(values)
        chunks.append(StreamChunk(values=values, gids=gids))
    return chunks


def drive_pair(k, window_chunks, chunks, shards=1):
    """Tick both maintenance arms over the same chunks; assert bit-equality
    on every tick and return the per-tick answers."""
    incremental = WindowTopK(
        k, window_chunks, len(chunks[0]), shards=shards, mode="incremental"
    )
    recompute = WindowTopK(
        k, window_chunks, len(chunks[0]), shards=shards, mode="recompute"
    )
    incremental.open()
    recompute.open()
    answers = []
    for tick, chunk in enumerate(chunks):
        incremental.advance(chunk)
        recompute.advance(chunk)
        inc_values, inc_gids = incremental.emit()
        rec_values, rec_gids = recompute.emit()
        assert np.array_equal(inc_values, rec_values, equal_nan=True), (
            f"values diverged at tick {tick}"
        )
        assert np.array_equal(inc_gids, rec_gids), (
            f"gids diverged at tick {tick}"
        )
        answers.append((inc_values, inc_gids))
    incremental.close()
    recompute.close()
    return answers


class TestValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            WindowTopK(0, 4, 64)

    def test_rejects_bad_window_chunks(self):
        with pytest.raises(InvalidParameterError):
            WindowTopK(4, 0, 64)

    def test_rejects_bad_chunk_rows(self):
        with pytest.raises(InvalidParameterError):
            WindowTopK(4, 4, 0)

    def test_rejects_bad_shards(self):
        with pytest.raises(InvalidParameterError):
            WindowTopK(4, 4, 64, shards=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(InvalidParameterError):
            WindowTopK(4, 4, 64, mode="lazy")

    def test_chunk_alignment_enforced(self):
        with pytest.raises(InvalidParameterError):
            StreamChunk(
                values=np.zeros(4, dtype=np.float32),
                gids=np.arange(3, dtype=np.int64),
            )


class TestProtocol:
    def test_advance_before_open_raises(self):
        maintainer = WindowTopK(4, 4, 8, mode="incremental")
        chunk = make_chunks([np.arange(8, dtype=np.float32)])[0]
        with pytest.raises(InvalidParameterError):
            maintainer.advance(chunk)

    def test_emit_before_open_raises(self):
        maintainer = WindowTopK(4, 4, 8, mode="incremental")
        with pytest.raises(InvalidParameterError):
            maintainer.emit()

    def test_emit_after_close_raises(self):
        maintainer = WindowTopK(4, 4, 8, mode="incremental")
        maintainer.open()
        maintainer.close()
        with pytest.raises(InvalidParameterError):
            maintainer.emit()

    def test_empty_emit_before_first_chunk(self):
        maintainer = WindowTopK(4, 4, 8, mode="incremental")
        maintainer.open()
        values, gids = maintainer.emit()
        assert len(values) == 0 and len(gids) == 0
        maintainer.close()

    def test_reopen_resets_state(self):
        maintainer = WindowTopK(2, 4, 4, mode="incremental")
        chunk = make_chunks([np.array([1.0, 2.0, 3.0, 4.0], np.float32)])[0]
        maintainer.open()
        maintainer.advance(chunk)
        maintainer.close()
        maintainer.open()
        assert maintainer.ticks == 0
        assert len(maintainer.emit()[0]) == 0
        maintainer.close()


class TestParityMatrix:
    """Incremental vs recompute bit-equality across the value-type and
    k-edge matrix, including eviction boundaries (ticks > window)."""

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint64]
    )
    def test_dtypes(self, rng, dtype):
        chunks = []
        for _ in range(10):
            if np.dtype(dtype).kind == "f":
                chunks.append(rng.standard_normal(64).astype(dtype))
            else:
                chunks.append(
                    rng.integers(0, 50, size=64).astype(dtype)
                )
        drive_pair(7, 3, make_chunks(chunks))

    @pytest.mark.parametrize("k", [1, 3, 64, 100])
    def test_k_edges(self, rng, k):
        # k of 64 saturates a chunk; 100 exceeds every chunk, so the
        # summary is the chunk itself and the merge sees everything.
        chunks = [rng.standard_normal(64).astype(np.float32)
                  for _ in range(9)]
        drive_pair(k, 4, make_chunks(chunks))

    def test_nan_inf_mix(self, rng):
        chunks = []
        for _ in range(12):
            values = rng.standard_normal(48).astype(np.float32)
            values[rng.integers(0, 48, size=6)] = np.nan
            values[rng.integers(0, 48, size=3)] = np.inf
            values[rng.integers(0, 48, size=3)] = -np.inf
            chunks.append(values)
        answers = drive_pair(8, 3, make_chunks(chunks))
        # Inf must win, NaN must rank after every finite value.
        final_values = answers[-1][0]
        assert np.isposinf(final_values[0])

    def test_all_nan_window(self):
        chunks = [np.full(16, np.nan, dtype=np.float32) for _ in range(6)]
        drive_pair(4, 2, make_chunks(chunks))

    def test_duplicate_ties_resolve_to_lower_gid(self):
        # Every chunk is the same constant: winners must be the oldest
        # surviving rows, i.e. the lowest gids still inside the window.
        chunks = make_chunks(
            [np.full(8, 5.0, dtype=np.float32) for _ in range(7)]
        )
        answers = drive_pair(4, 3, chunks)
        # Window covers chunks 4..6 (rows 32..55): ties break low.
        assert np.array_equal(
            answers[-1][1], np.array([32, 33, 34, 35], dtype=np.int64)
        )

    def test_eviction_boundary(self, rng):
        # A huge value must vanish the tick its chunk leaves the window.
        chunks = [rng.random(32).astype(np.float32) for _ in range(8)]
        chunks[0][5] = 1e6
        answers = drive_pair(1, 3, make_chunks(chunks))
        assert answers[2][1][0] == 5       # still live in window [0, 2]
        assert answers[3][1][0] != 5       # evicted at tick 3

    def test_window_of_one_chunk(self, rng):
        # Full churn: every tick replaces the whole window.
        chunks = [rng.random(32).astype(np.float32) for _ in range(5)]
        answers = drive_pair(4, 1, make_chunks(chunks))
        for tick, chunk in enumerate(chunks):
            expected = np.sort(chunk)[::-1][:4]
            assert np.array_equal(answers[tick][0], expected)

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_sharded_summaries(self, rng, shards):
        chunks = [rng.standard_normal(60).astype(np.float32)
                  for _ in range(8)]
        sharded = drive_pair(6, 3, make_chunks(chunks), shards=shards)
        unsharded = drive_pair(6, 3, make_chunks(chunks), shards=1)
        for tick in range(len(chunks)):
            assert np.array_equal(
                sharded[tick][0], unsharded[tick][0], equal_nan=True
            )
            assert np.array_equal(sharded[tick][1], unsharded[tick][1])


class TestDegrade:
    def test_degrade_mid_stream_stays_exact(self, rng):
        chunks = make_chunks(
            [rng.standard_normal(48).astype(np.float32) for _ in range(10)]
        )
        degrading = WindowTopK(5, 4, 48, mode="recompute")
        oracle = WindowTopK(5, 4, 48, mode="recompute")
        degrading.open()
        oracle.open()
        for tick, chunk in enumerate(chunks):
            degrading.advance(chunk)
            oracle.advance(chunk)
            if tick == 5:
                assert degrading.degrade_to_incremental()
                assert degrading.mode == "incremental"
            assert np.array_equal(
                degrading.emit()[0], oracle.emit()[0], equal_nan=True
            )
        degrading.close()
        oracle.close()

    def test_degrade_is_idempotent(self):
        maintainer = WindowTopK(4, 4, 16, mode="incremental")
        assert not maintainer.degrade_to_incremental()


class TestModeAndTrace:
    def test_auto_picks_incremental_at_low_churn(self, device):
        maintainer = WindowTopK(
            64, 16, 1 << 20, device=device, mode="auto"
        )
        assert maintainer.mode == "incremental"

    def test_auto_picks_recompute_at_full_churn(self, device):
        maintainer = WindowTopK(64, 1, 1 << 20, device=device, mode="auto")
        assert maintainer.mode == "recompute"

    def test_modes_constant_lists_both(self):
        assert MODES == ("incremental", "recompute")

    def test_incremental_trace_cheaper_at_steady_state(self, device):
        shared = dict(device=device)
        incremental = WindowTopK(
            64, 16, 1 << 20, mode="incremental", **shared
        )
        recompute = WindowTopK(64, 16, 1 << 20, mode="recompute", **shared)
        inc_ms = trace_time(incremental.tick_trace(live=16), device).total_ms
        rec_ms = trace_time(recompute.tick_trace(live=16), device).total_ms
        assert rec_ms > 2.0 * inc_ms

    def test_trace_notes_mode_and_shards(self, device):
        maintainer = WindowTopK(
            8, 4, 1024, device=device, shards=2, mode="incremental"
        )
        trace = maintainer.tick_trace(live=4)
        assert trace.notes["streaming.mode"] == "incremental"
        assert trace.notes["streaming.shards"] == 2

    def test_live_rows_tracks_warmup_and_cap(self):
        maintainer = WindowTopK(2, 3, 10, mode="incremental")
        maintainer.open()
        chunk = make_chunks([np.arange(10, dtype=np.float32)])[0]
        assert maintainer.live_rows() == 0
        for expected in (10, 20, 30, 30, 30):
            maintainer.advance(chunk)
            assert maintainer.live_rows() == expected
        maintainer.close()
