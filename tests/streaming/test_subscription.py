"""Subscriptions: ticking, identity (plans/fingerprints), and EXPLAIN."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.streaming.subscription import Subscription, explain_stream


class TestConstruction:
    def test_requires_exactly_one_semantics(self):
        with pytest.raises(InvalidParameterError):
            Subscription(4, 64)
        with pytest.raises(InvalidParameterError):
            Subscription(4, 64, window=256, decay=0.9)

    def test_window_must_be_chunk_multiple(self):
        with pytest.raises(InvalidParameterError):
            Subscription(4, 64, window=100)
        with pytest.raises(InvalidParameterError):
            Subscription(4, 64, window=32)

    def test_rejects_bad_chunk_rows(self):
        with pytest.raises(InvalidParameterError):
            Subscription(4, 0, window=256)

    def test_decay_forces_incremental_under_auto(self):
        subscription = Subscription(4, 64, decay=0.9, mode="auto")
        assert subscription.mode == "incremental"
        subscription.close()


class TestTicking:
    def test_tick_emits_current_topk(self, rng):
        with Subscription(
            3, 16, window=64, mode="incremental"
        ) as subscription:
            values = rng.random(16).astype(np.float32)
            result = subscription.tick(values)
            assert result.tick == 0
            assert np.array_equal(
                result.values, np.sort(values)[::-1][:3]
            )
            assert result.simulated_ms > 0
            assert result.mode == "incremental"
            assert result.emitted

    def test_auto_gids_are_contiguous_across_ticks(self, rng):
        with Subscription(
            16, 16, window=64, mode="incremental"
        ) as subscription:
            subscription.tick(rng.random(16).astype(np.float32))
            result = subscription.tick(
                np.full(16, 1e9, dtype=np.float32)
            )
            # The second chunk's rows got gids 16..31 and all win.
            assert np.array_equal(
                result.gids, np.arange(16, 32, dtype=np.int64)
            )

    def test_shed_tick_absorbs_but_emits_nothing(self, rng):
        with Subscription(
            3, 16, window=64, mode="incremental"
        ) as subscription:
            big = np.full(16, 1e9, dtype=np.float32)
            shed = subscription.tick(big, emit=False)
            assert not shed.emitted
            assert len(shed.values) == 0
            # The shed chunk still entered the window.
            follow = subscription.tick(rng.random(16).astype(np.float32))
            assert follow.values[0] == 1e9

    def test_step_without_source_raises(self):
        with Subscription(3, 16, window=64) as subscription:
            with pytest.raises(InvalidParameterError):
                subscription.step()

    def test_closed_subscription_rejects_ticks(self, rng):
        subscription = Subscription(3, 16, window=64)
        subscription.close()
        with pytest.raises(InvalidParameterError):
            subscription.tick(rng.random(16).astype(np.float32))


class TestIdentity:
    def test_plan_roots_topk_over_stream(self):
        with Subscription(
            8, 32, window=128, mode="incremental"
        ) as subscription:
            plan = subscription.plan()
            assert plan.kind == "TopK"
            assert plan.algorithm == "incremental-window"
            (stream,) = plan.children
            assert stream.kind == "Stream"
            assert stream.chunk_rows == 32
            assert stream.window == 128

    def test_modes_fingerprint_distinctly(self):
        fingerprints = set()
        for mode in ("incremental", "recompute"):
            with Subscription(
                8, 32, window=128, mode=mode
            ) as subscription:
                fingerprints.add(subscription.fingerprint())
        assert len(fingerprints) == 2

    def test_window_and_decay_fingerprint_distinctly(self):
        with Subscription(8, 32, window=128) as windowed:
            with Subscription(8, 32, decay=0.9) as decayed:
                assert windowed.fingerprint() != decayed.fingerprint()

    def test_different_windows_fingerprint_distinctly(self):
        with Subscription(8, 32, window=128) as narrow:
            with Subscription(8, 32, window=256) as wide:
                assert narrow.fingerprint() != wide.fingerprint()


class TestExplainStream:
    def test_window_prices_both_modes(self, device):
        plan = explain_stream(64, 1 << 14, window=1 << 18, device=device)
        modes = [strategy.strategy for strategy in plan.strategies]
        assert sorted(modes) == ["incremental", "recompute"]
        # Sorted cheapest first; at 6% churn incremental must win.
        assert plan.strategies[0].strategy == "incremental"
        assert (
            plan.strategies[0].simulated_ms
            < plan.strategies[1].simulated_ms
        )

    def test_decay_prices_only_incremental(self, device):
        plan = explain_stream(64, 1 << 14, decay=0.9, device=device)
        assert [s.strategy for s in plan.strategies] == ["incremental"]

    def test_sql_summary_line(self, device):
        plan = explain_stream(8, 128, window=512, device=device)
        assert plan.sql == (
            "SUBSCRIBE TOP 8 BY score FROM stream EVERY 128 OVER WINDOW 512"
        )

    def test_render_includes_plan_tree(self, device):
        rendered = explain_stream(
            64, 1 << 14, window=1 << 18, device=device
        ).render()
        assert "Stream" in rendered
        assert "TopK" in rendered
