"""stream-bench: workload validation, the report, gates, and baselines."""

import pytest

from repro.errors import InvalidParameterError
from repro.gpu.device import get_device
from repro.streaming.bench import (
    GATE_SPEEDUP,
    StreamBenchReport,
    StreamPoint,
    StreamWorkload,
    check_baseline,
    run_streaming_benchmark,
)

SMALL = StreamWorkload(
    k=8,
    chunk_rows=256,
    model_chunk_rows=1 << 20,
    window_chunks=8,
    ticks=12,
    decay=0.9,
)


@pytest.fixture(scope="module")
def report():
    return run_streaming_benchmark(SMALL, get_device("titan-x-maxwell"))


class TestWorkloadValidation:
    def test_defaults_are_valid(self):
        workload = StreamWorkload()
        assert workload.window == workload.window_chunks * workload.chunk_rows
        assert workload.model_window == (
            workload.window_chunks * workload.model_chunk_rows
        )

    def test_rejects_k_above_chunk(self):
        with pytest.raises(InvalidParameterError):
            StreamWorkload(k=300, chunk_rows=256)

    def test_rejects_model_chunk_below_functional(self):
        with pytest.raises(InvalidParameterError):
            StreamWorkload(chunk_rows=1 << 12, model_chunk_rows=1 << 10)

    def test_rejects_ticks_short_of_a_window(self):
        # The stream must outlive the window so evictions are exercised.
        with pytest.raises(InvalidParameterError):
            StreamWorkload(window_chunks=16, ticks=8)

    @pytest.mark.parametrize("decay", [0.0, 1.0001])
    def test_rejects_decay_outside_unit_interval(self, decay):
        with pytest.raises(InvalidParameterError):
            StreamWorkload(decay=decay)

    def test_chunks_are_deterministic(self):
        first = SMALL.chunks()
        second = SMALL.chunks()
        assert len(first) == SMALL.ticks
        for a, b in zip(first, second):
            assert (a.values == b.values).all()
            assert (a.gids == b.gids).all()

    def test_to_dict_round_trips(self):
        assert StreamWorkload(**SMALL.to_dict()).to_dict() == SMALL.to_dict()


class TestReport:
    def test_three_arms(self, report):
        arms = {point.arm for point in report.points}
        assert arms == {
            "window-incremental", "window-recompute", "decay-incremental",
        }

    def test_every_arm_bit_equal(self, report):
        assert report.identical
        assert all(point.identical for point in report.points)

    def test_speedup_clears_gate_at_model_scale(self, report):
        assert report.measured_speedup >= GATE_SPEEDUP
        assert report.fast_enough
        assert report.passed

    def test_prediction_present(self, report):
        assert report.predicted_speedup > 1.0

    def test_to_dict_shape(self, report):
        payload = report.to_dict()
        assert payload["format"] == "repro-streaming-bench"
        assert payload["workload"] == SMALL.to_dict()
        assert payload["gates"]["speedup_at_least"] == GATE_SPEEDUP
        assert payload["identical"] is True
        assert payload["passed"] is True
        assert len(payload["points"]) == 3

    def test_render_mentions_verdict(self, report):
        rendered = report.render()
        assert "PASS" in rendered
        assert "speedup" in rendered

    def test_missing_arm_yields_zero_speedup(self):
        empty = StreamBenchReport(workload=SMALL, device="x")
        assert empty.measured_speedup == 0.0
        assert not empty.identical
        assert not empty.passed


class TestBaseline:
    def test_self_baseline_is_clean(self, report):
        assert check_baseline(report, report.to_dict()) == []

    def test_rejects_foreign_format(self, report):
        problems = check_baseline(report, {"format": "repro-serve-bench"})
        assert problems and "not a repro-streaming-bench" in problems[0]

    def test_rejects_workload_mismatch(self, report):
        baseline = report.to_dict()
        baseline["workload"] = dict(baseline["workload"], k=99)
        problems = check_baseline(report, baseline)
        assert problems and "workload differs" in problems[0]

    def test_flags_drifted_milliseconds(self, report):
        baseline = report.to_dict()
        baseline["points"][0]["total_simulated_ms"] *= 2.0
        problems = check_baseline(report, baseline)
        assert any("deviates" in problem for problem in problems)

    def test_flags_drifted_speedup(self, report):
        baseline = report.to_dict()
        baseline["measured_speedup"] *= 3.0
        problems = check_baseline(report, baseline)
        assert any("speedup" in problem for problem in problems)

    def test_flags_missing_arm(self, report):
        baseline = report.to_dict()
        baseline["points"].append(
            StreamPoint(
                arm="window-quantum", ticks=1,
                total_simulated_ms=1.0, mean_tick_ms=1.0, identical=True,
            ).to_dict()
        )
        problems = check_baseline(report, baseline)
        assert any("missing baseline arm" in problem for problem in problems)

    def test_flags_equality_regression(self, report):
        # A report that lost bit-equality against a baseline that had it.
        broken = StreamBenchReport(
            workload=SMALL, device=report.device,
            predicted_speedup=report.predicted_speedup,
        )
        for point in report.points:
            broken.points.append(
                StreamPoint(
                    arm=point.arm, ticks=point.ticks,
                    total_simulated_ms=point.total_simulated_ms,
                    mean_tick_ms=point.mean_tick_ms, identical=False,
                )
            )
        problems = check_baseline(broken, report.to_dict())
        assert any("no longer bit-equal" in problem for problem in problems)
        assert any("gate regressed" in problem for problem in problems)
