"""Streaming test package."""
