"""CI gate: EXPLAIN plan trees must match the committed goldens.

Renders ``repro explain`` (the CLI) and SQL ``EXPLAIN SELECT ...`` (the
session prefix) for a set of representative queries and diffs the plan
trees against the goldens committed under ``tests/plan/goldens/explain/``.
Both surfaces must agree with each other *and* with the goldens; the
``--json`` emission is additionally validated for shape (every strategy
carries a Fallback-rooted plan tree, the approximate query's tree
contains an ApproxTopK node, and the sharded queries' trees contain a
Merge node over per-shard subtrees).

Run from the repository root::

    PYTHONPATH=src python tools/check_plan_goldens.py          # check
    PYTHONPATH=src python tools/check_plan_goldens.py --update # regenerate

Regenerate only with a deliberate planner or EXPLAIN change; the diff is
the review artifact.
"""

from __future__ import annotations

import argparse
import difflib
import io
import json
import sys
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "plan" / "goldens" / "explain"

ROWS = 4096
SEED = 3
MODEL_ROWS = 250_000_000

#: (golden name, query, shard budget) — one per EXPLAIN-relevant query
#: shape; a budget above 1 plans a Merge over per-shard subtrees.
CASES = [
    (
        "order-by",
        "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 50",
        1,
    ),
    (
        "filtered",
        "SELECT id, likes_count FROM tweets WHERE tweet_time < 0.5 "
        "ORDER BY likes_count DESC LIMIT 25",
        1,
    ),
    (
        "group-by",
        "SELECT uid, COUNT() AS num_tweets FROM tweets "
        "GROUP BY uid ORDER BY num_tweets DESC LIMIT 10",
        1,
    ),
    (
        "approx",
        "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 64 "
        "APPROX_TOPK(0.9)",
        1,
    ),
    (
        # Past the radix crossover: the planner must pick the RadiK-style
        # adaptive kernel over bitonic at LIMIT 2048 on the modeled table.
        "large-k",
        "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 2048",
        1,
    ),
    (
        "shard-2",
        "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 50",
        2,
    ),
    (
        "shard-4",
        "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 25",
        4,
    ),
]

#: (golden name, k, chunk_rows, window, decay) — subscription EXPLAINs
#: rooted on a Stream node; window prices both maintenance modes, decay
#: only the incremental arm.
STREAM_CASES = [
    ("stream-window", 64, 16384, 262144, None),
    ("stream-decay", 64, 16384, None, 0.9),
]


def cli_explain(sql: str, as_json: bool = False, shards: int = 1) -> str:
    """``repro explain`` output, captured."""
    from repro.cli import main

    argv = [
        "explain", sql,
        "--rows", str(ROWS),
        "--seed", str(SEED),
        "--model-rows", str(MODEL_ROWS),
    ]
    if shards > 1:
        argv.extend(["--shards", str(shards)])
    if as_json:
        argv.append("--json")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = main(argv)
    if status != 0:
        raise SystemExit(f"repro explain failed with status {status}: {sql}")
    return buffer.getvalue()


def sql_explain(sql: str, shards: int = 1) -> str:
    """``Session.sql("EXPLAIN ...")`` rendering."""
    from repro.engine import Session, generate_tweets

    session = Session(shards=shards)
    session.register(generate_tweets(ROWS, seed=SEED))
    return session.sql(f"EXPLAIN {sql}", model_rows=MODEL_ROWS).render()


def cli_explain_stream(
    k: int,
    chunk_rows: int,
    window: int | None,
    decay: float | None,
    as_json: bool = False,
) -> str:
    """``repro explain --window/--decay`` output, captured."""
    from repro.cli import main

    argv = ["explain", "--k", str(k), "--chunk-rows", str(chunk_rows)]
    if window is not None:
        argv.extend(["--window", str(window)])
    if decay is not None:
        argv.extend(["--decay", str(decay)])
    if as_json:
        argv.append("--json")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = main(argv)
    if status != 0:
        raise SystemExit(
            f"repro explain (stream) failed with status {status}"
        )
    return buffer.getvalue()


def session_explain_stream(
    k: int, chunk_rows: int, window: int | None, decay: float | None
) -> str:
    """``Session.explain_stream`` rendering."""
    from repro.engine import Session

    session = Session()
    return session.explain_stream(
        k, chunk_rows, window=window, decay=decay
    ).render()


def check_stream_json_shape(
    name: str,
    k: int,
    chunk_rows: int,
    window: int | None,
    decay: float | None,
    problems: list[str],
) -> None:
    doc = json.loads(
        cli_explain_stream(k, chunk_rows, window, decay, as_json=True)
    )
    if doc.get("format") != "repro-plan":
        problems.append(f"{name}: --json format tag is {doc.get('format')!r}")
        return
    expected_modes = {"incremental", "recompute"} if window else {"incremental"}
    modes = {strategy["strategy"] for strategy in doc["strategies"]}
    if modes != expected_modes:
        problems.append(
            f"{name}: strategies are {sorted(modes)}, "
            f"expected {sorted(expected_modes)}"
        )
    for strategy in doc["strategies"]:
        tree = strategy.get("plan")
        if tree is None:
            problems.append(
                f"{name}: strategy {strategy['strategy']!r} has no plan tree"
            )
            continue
        if tree["kind"] != "TopK":
            problems.append(
                f"{name}: {strategy['strategy']!r} plan root is "
                f"{tree['kind']!r}, expected TopK"
            )
        children = tree.get("children", [])
        if not children or children[0]["kind"] != "Stream":
            problems.append(
                f"{name}: {strategy['strategy']!r} plan is not rooted on a "
                "Stream source"
            )


def check_json_shape(
    name: str, sql: str, shards: int, problems: list[str]
) -> None:
    doc = json.loads(cli_explain(sql, as_json=True, shards=shards))
    if doc.get("format") != "repro-plan":
        problems.append(f"{name}: --json format tag is {doc.get('format')!r}")
        return
    kinds: set[str] = set()
    for strategy in doc["strategies"]:
        tree = strategy.get("plan")
        if tree is None:
            problems.append(
                f"{name}: strategy {strategy['strategy']!r} has no plan tree"
            )
            continue
        if tree["kind"] != "Fallback":
            problems.append(
                f"{name}: {strategy['strategy']!r} plan root is "
                f"{tree['kind']!r}, expected Fallback"
            )
        stack = [tree]
        while stack:
            node = stack.pop()
            kinds.add(node["kind"])
            stack.extend(node.get("children", []))
    if "TopK" not in kinds or "Scan" not in kinds:
        problems.append(f"{name}: plan trees missing TopK/Scan nodes ({kinds})")
    if name == "approx" and "ApproxTopK" not in kinds:
        problems.append(f"{name}: approximate query rendered no ApproxTopK node")
    if shards > 1 and "Merge" not in kinds:
        problems.append(
            f"{name}: sharded query (budget {shards}) rendered no Merge node"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the goldens from the current EXPLAIN output",
    )
    arguments = parser.parse_args(argv)

    problems: list[str] = []
    for name, sql, shards in CASES:
        rendered = cli_explain(sql, shards=shards)
        via_sql = sql_explain(sql, shards=shards)
        if via_sql.rstrip("\n") != rendered.rstrip("\n"):
            problems.append(
                f"{name}: SQL EXPLAIN and `repro explain` disagree:\n"
                + "\n".join(
                    difflib.unified_diff(
                        via_sql.splitlines(),
                        rendered.splitlines(),
                        "sql-explain",
                        "repro-explain",
                        lineterm="",
                    )
                )
            )
        golden_path = GOLDEN_DIR / f"{name}.txt"
        if arguments.update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(rendered)
            print(f"wrote {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            problems.append(f"{name}: missing golden {golden_path}")
            continue
        golden = golden_path.read_text()
        if golden != rendered:
            diff = "\n".join(
                difflib.unified_diff(
                    golden.splitlines(),
                    rendered.splitlines(),
                    f"goldens/explain/{name}.txt",
                    "current",
                    lineterm="",
                )
            )
            problems.append(f"{name}: plan tree changed:\n{diff}")
        check_json_shape(name, sql, shards, problems)

    for name, k, chunk_rows, window, decay in STREAM_CASES:
        rendered = cli_explain_stream(k, chunk_rows, window, decay)
        via_session = session_explain_stream(k, chunk_rows, window, decay)
        if via_session.rstrip("\n") != rendered.rstrip("\n"):
            problems.append(
                f"{name}: Session.explain_stream and `repro explain` "
                "disagree:\n"
                + "\n".join(
                    difflib.unified_diff(
                        via_session.splitlines(),
                        rendered.splitlines(),
                        "session-explain-stream",
                        "repro-explain",
                        lineterm="",
                    )
                )
            )
        golden_path = GOLDEN_DIR / f"{name}.txt"
        if arguments.update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(rendered)
            print(f"wrote {golden_path.relative_to(REPO)}")
            continue
        if not golden_path.exists():
            problems.append(f"{name}: missing golden {golden_path}")
            continue
        golden = golden_path.read_text()
        if golden != rendered:
            diff = "\n".join(
                difflib.unified_diff(
                    golden.splitlines(),
                    rendered.splitlines(),
                    f"goldens/explain/{name}.txt",
                    "current",
                    lineterm="",
                )
            )
            problems.append(f"{name}: plan tree changed:\n{diff}")
        check_stream_json_shape(name, k, chunk_rows, window, decay, problems)

    if arguments.update:
        return 0
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if not problems:
        print(
            f"ok: {len(CASES) + len(STREAM_CASES)} EXPLAIN plan trees "
            "match the goldens"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
