#!/usr/bin/env python
"""Documentation checker behind the CI ``docs`` job.

Three families of checks over ``README.md`` and ``docs/*.md``:

1. **Links** — every intra-repo markdown link ``[text](target)`` must
   resolve to an existing file or directory (anchors are stripped;
   ``http(s)``/``mailto`` targets are skipped).
2. **CLI examples** — every ``python -m repro ...`` line inside a fenced
   ``bash`` block must name a real subcommand: the named command is
   smoke-run with ``--help`` and must exit 0.  This catches renamed or
   removed commands without paying for full example runs.
3. **Coverage** — ``README.md`` must link every file under ``docs/``
   (the docs index stays complete), ``docs/architecture.md`` must
   mention every package under ``src/repro/`` (the module table stays
   complete), and ``docs/cost_model.md`` must mention every
   ``src/repro/costmodel/*_model.py`` module (no kernel ships an
   undocumented cost model).

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 = clean; 1 = problems (one per line on stderr).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — target captured up to the closing parenthesis.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
#: Fenced code blocks with their info string.
_FENCE = re.compile(r"^```(\w*)\s*$")
#: Targets that are not repository paths.
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def _label(path: Path) -> str:
    """Repo-relative label when possible (tests pass tmp paths)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def _iter_links(text: str):
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_links(paths: list[Path] | None = None) -> list[str]:
    """Every relative link in every document resolves on disk."""
    problems = []
    for path in paths or doc_files():
        base = path.parent
        for target in _iter_links(path.read_text()):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (base / relative).exists():
                problems.append(
                    f"{_label(path)}: broken link -> {target}"
                )
    return problems


def _bash_blocks(text: str) -> list[str]:
    """The concatenated lines of every fenced ``bash``/``sh`` block."""
    lines, in_block, block_lang = [], False, ""
    for line in text.splitlines():
        fence = _FENCE.match(line)
        if fence:
            in_block = not in_block
            block_lang = fence.group(1).lower()
            continue
        if in_block and block_lang in ("bash", "sh", "shell", "console"):
            lines.append(line.strip())
    return lines


def cli_invocations(paths: list[Path] | None = None) -> list[tuple[str, str]]:
    """All ``python -m repro...`` invocations found in bash blocks, as
    ``(document, module-and-subcommand)`` pairs."""
    found = []
    pattern = re.compile(r"python -m (repro[.\w]*)(?:\s+([\w-]+))?")
    for path in paths or doc_files():
        for line in _bash_blocks(path.read_text()):
            match = pattern.search(line)
            if not match:
                continue
            module, first_arg = match.group(1), match.group(2)
            command = module
            # A non-flag first token is a subcommand (repro topk, ...).
            if first_arg and not first_arg.startswith("-"):
                command = f"{module} {first_arg}"
            found.append((_label(path), command))
    return found


def check_cli_examples(paths: list[Path] | None = None) -> list[str]:
    """Smoke-run each distinct quoted CLI command with ``--help``."""
    problems = []
    seen: dict[str, bool] = {}
    for document, command in cli_invocations(paths):
        if command not in seen:
            environment = dict(os.environ)
            environment["PYTHONPATH"] = str(REPO_ROOT / "src")
            completed = subprocess.run(
                [sys.executable, "-m", *command.split(), "--help"],
                capture_output=True,
                cwd=REPO_ROOT,
                env=environment,
            )
            seen[command] = completed.returncode == 0
        if not seen[command]:
            problems.append(
                f"{document}: quoted command 'python -m {command}' does "
                f"not answer --help"
            )
    return problems


def check_docs_index() -> list[str]:
    """README links every docs/*.md file."""
    readme = (REPO_ROOT / "README.md").read_text()
    linked = {
        target.split("#", 1)[0]
        for target in _iter_links(readme)
        if not target.startswith(_EXTERNAL)
    }
    problems = []
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        relative = f"docs/{doc.name}"
        if relative not in linked and f"`{relative}`" not in readme:
            problems.append(
                f"README.md: docs index is missing a link to {relative}"
            )
    return problems


def check_architecture_coverage() -> list[str]:
    """docs/architecture.md mentions every src/repro/* package."""
    architecture = REPO_ROOT / "docs" / "architecture.md"
    if not architecture.exists():
        return ["docs/architecture.md does not exist"]
    text = architecture.read_text()
    problems = []
    for entry in sorted((REPO_ROOT / "src" / "repro").iterdir()):
        if entry.name.startswith("_") or entry.name.endswith(".pyc"):
            continue
        name = entry.name if entry.is_dir() else entry.name.removesuffix(".py")
        if entry.is_file() and not entry.name.endswith(".py"):
            continue
        if f"{name}/" not in text and f"{name}.py" not in text:
            problems.append(
                f"docs/architecture.md does not cover src/repro/{entry.name}"
            )
    return problems


def check_costmodel_coverage() -> list[str]:
    """docs/cost_model.md mentions every costmodel ``*_model.py`` module.

    A new kernel ships with a cost model; this keeps it from shipping
    with an undocumented one — the module's filename (``radik_model``)
    must appear in the cost-model reference.
    """
    reference = REPO_ROOT / "docs" / "cost_model.md"
    if not reference.exists():
        return ["docs/cost_model.md does not exist"]
    text = reference.read_text()
    problems = []
    modules = sorted(
        (REPO_ROOT / "src" / "repro" / "costmodel").glob("*_model.py")
    )
    for module in modules:
        if module.stem not in text:
            problems.append(
                f"docs/cost_model.md does not cover "
                f"src/repro/costmodel/{module.name}"
            )
    return problems


def run_all() -> list[str]:
    return (
        check_links()
        + check_cli_examples()
        + check_docs_index()
        + check_architecture_coverage()
        + check_costmodel_coverage()
    )


def main() -> int:
    problems = run_all()
    for problem in problems:
        print(f"docs: {problem}", file=sys.stderr)
    if not problems:
        checked = len(doc_files())
        commands = {command for _, command in cli_invocations()}
        print(
            f"docs OK: {checked} documents, links resolve, "
            f"{len(commands)} distinct CLI commands answer --help"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
