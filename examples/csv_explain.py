"""Load a CSV, EXPLAIN a query, run it — the analyst's loop.

Combines three engine features beyond the paper's evaluation queries:
CSV ingestion with type inference, EXPLAIN with per-strategy costs, and
GROUP BY aggregates ordered by a computed aggregate.

Run with::

    python examples/csv_explain.py
"""

import numpy as np

from repro.engine import Session
from repro.engine.loader import from_csv_text


def synthetic_orders_csv(rows: int = 5000, seed: int = 0) -> str:
    """A small e-commerce orders CSV (the intro's motivating example:
    'the most expensive products on an e-commerce site')."""
    rng = np.random.default_rng(seed)
    regions = ("north", "south", "east", "west")
    lines = ["order_id,region,price,quantity"]
    prices = np.round(rng.pareto(1.5, rows) * 20 + 5, 2)
    quantities = rng.integers(1, 9, rows)
    region_picks = rng.integers(0, len(regions), rows)
    for order_id in range(rows):
        lines.append(
            f"{order_id},{regions[region_picks[order_id]]},"
            f"{prices[order_id]},{quantities[order_id]}"
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    table = from_csv_text("orders", synthetic_orders_csv())
    print(f"loaded table 'orders': {table.num_rows} rows, "
          f"columns {table.column_names}\n")

    session = Session()
    session.register(table)

    sql = (
        "SELECT order_id FROM orders WHERE region = 'north' "
        "ORDER BY price * quantity DESC LIMIT 10"
    )
    print(session.explain(sql, model_rows=250_000_000).render())
    print()

    result = session.sql(sql)
    revenue = table.column("price") * table.column("quantity")
    print("top-10 north-region orders by revenue:")
    for order_id in result.column("order_id"):
        print(f"  order {order_id:>5}: revenue {revenue[order_id]:8.2f}")
    print()

    aggregate_sql = (
        "SELECT region, COUNT() AS orders, SUM(price) AS revenue, "
        "AVG(quantity) AS avg_items FROM orders "
        "GROUP BY region ORDER BY revenue DESC LIMIT 4"
    )
    grouped = session.sql(aggregate_sql, strategy="topk")
    print("revenue by region:")
    dictionary = table.dictionaries["region"]
    for code, orders, total, items in zip(
        grouped.column("region"),
        grouped.column("orders"),
        grouped.column("revenue"),
        grouped.column("avg_items"),
    ):
        print(f"  {dictionary[int(code)]:>6}: {orders:5d} orders, "
              f"revenue {total:10.2f}, avg items {items:.2f}")


if __name__ == "__main__":
    main()
