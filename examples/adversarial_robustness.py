"""Robustness against input distributions (Section 6.4).

Selection-based algorithms have identifiable worst-case inputs: sorted
data forces a heap update on every element of the per-thread method, and
the "bucket killer" makes every radix pass eliminate a single element.
Bitonic top-k executes a data-independent comparison network, so its cost
is identical on every distribution.  This example measures all algorithms
across the distributions and prints the slowdown factors.

Run with::

    python examples/adversarial_robustness.py
"""

from repro.algorithms.registry import EVALUATED_ALGORITHMS, create
from repro.data.distributions import (
    bucket_killer,
    decreasing,
    increasing,
    uniform_floats,
)
from repro.gpu.device import get_device

FUNCTIONAL_N = 1 << 18
MODEL_N = 1 << 29
K = 64

DISTRIBUTIONS = {
    "uniform": uniform_floats,
    "increasing": increasing,
    "decreasing": decreasing,
    "bucket-killer": bucket_killer,
}


def main() -> None:
    device = get_device()
    print(
        f"simulated ms on {device.name}, n = 2^29 floats, k = {K} "
        f"(functional runs at n = 2^{FUNCTIONAL_N.bit_length() - 1})\n"
    )
    header = f"{'algorithm':>14} " + " ".join(
        f"{name:>14}" for name in DISTRIBUTIONS
    )
    print(header)
    baseline = {}
    for algorithm_name in EVALUATED_ALGORITHMS:
        algorithm = create(algorithm_name, device)
        row = [f"{algorithm_name:>14}"]
        for distribution_name, generator in DISTRIBUTIONS.items():
            data = generator(FUNCTIONAL_N, seed=1)
            if not algorithm.supports(MODEL_N, K, data.dtype):
                row.append(f"{'n/a':>14}")
                continue
            result = algorithm.run(data, K, model_n=MODEL_N)
            milliseconds = result.simulated_ms(device)
            baseline.setdefault(algorithm_name, milliseconds)
            slowdown = milliseconds / baseline[algorithm_name]
            row.append(f"{milliseconds:>9.1f}x{slowdown:4.1f}")
        print(" ".join(row))

    print(
        "\n(each cell: simulated ms, and slowdown vs that algorithm's "
        "uniform case)\n"
        "Takeaways: sort and bitonic are flat across distributions; "
        "per-thread suffers on increasing input; radix select collapses "
        "to sort's cost on the bucket killer; bitonic has no adversarial "
        "input."
    )


if __name__ == "__main__":
    main()
