"""Database integration: the four Section 6.8 queries on synthetic tweets.

Builds the synthetic twitter table, runs each evaluation query under the
three execution strategies (MapD-default Filter/Project+Sort, separate
bitonic top-k kernel, and the Section 5 fused kernel), and prints the
results next to the simulated kernel times at the paper's 250M-row scale.

Run with::

    python examples/twitter_analytics.py
"""

from repro.engine import Session, generate_tweets, time_threshold_for_selectivity

MODEL_ROWS = 250_000_000
STRATEGY_LABELS = {
    "sort": "Filter/Project+Sort (MapD default)",
    "topk": "+ bitonic top-k kernel",
    "fused": "+ fusion into the SortReducer",
}


def run_query(session: Session, title: str, sql: str) -> None:
    print(f"--- {title} ---")
    print(f"    {sql.strip()}")
    for strategy, label in STRATEGY_LABELS.items():
        result = session.sql(sql, strategy=strategy, model_rows=MODEL_ROWS)
        print(
            f"  {label:<38} {result.simulated_ms():8.2f} ms "
            f"({result.num_result_rows} rows)"
        )
    print()


def main() -> None:
    print("generating synthetic tweets (May 2017 corpus stand-in)...")
    tweets = generate_tweets(1 << 18, seed=42)
    session = Session()
    session.register(tweets)
    print(f"table 'tweets': {tweets.num_rows} rows, columns "
          f"{tweets.column_names} (traces model {MODEL_ROWS:,} rows)\n")

    threshold = time_threshold_for_selectivity(0.5)
    run_query(
        session,
        "Q1: top-50 retweeted in a time range (selectivity 0.5)",
        f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
        "ORDER BY retweet_count DESC LIMIT 50",
    )
    run_query(
        session,
        "Q2: most popular by custom ranking function",
        "SELECT id FROM tweets "
        "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 50",
    )
    run_query(
        session,
        "Q3: top tweets in English or Spanish (selectivity ~0.8)",
        "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'es' "
        "ORDER BY retweet_count DESC LIMIT 50",
    )
    run_query(
        session,
        "Q4: top-50 users by tweet count (GROUP BY)",
        "SELECT uid, COUNT() AS num_tweets FROM tweets "
        "GROUP BY uid ORDER BY num_tweets DESC LIMIT 50",
    )

    # Peek at the Q4 answer itself.
    result = session.sql(
        "SELECT uid, COUNT() AS num_tweets FROM tweets "
        "GROUP BY uid ORDER BY num_tweets DESC LIMIT 5",
        strategy="topk",
    )
    print("top-5 most active users:")
    for uid, count in zip(result.column("uid"), result.column("num_tweets")):
        print(f"  uid {uid:>8}: {count} tweets")


if __name__ == "__main__":
    main()
