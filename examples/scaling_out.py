"""Beyond the paper's evaluated scope: out-of-core, hybrid, adaptive, batched.

Four extensions the paper sketches (Section 4.3 discussion and the
conclusion's future work) or motivates (the TensorFlow/ArrayFire feature
requests in the introduction):

1. out-of-core top-k streaming a 32 GiB input through the 12 GiB card with
   transfer/compute overlap;
2. a hybrid CPU+GPU split balanced by the cost models;
3. adaptive algorithm selection that sniffs a sample and dodges every
   adversarial distribution;
4. batched per-row top-k with a single fused launch pipeline.

Run with::

    python examples/scaling_out.py
"""

import numpy as np

from repro import AdaptiveTopK, HybridTopK, batched_topk, chunked_topk
from repro.core.chunked import ChunkedTopK
from repro.data.distributions import bucket_killer, increasing, uniform_floats
from repro.gpu.device import get_device

FUNCTIONAL_N = 1 << 18


def out_of_core() -> None:
    device = get_device()
    model_n = 1 << 33  # 32 GiB of floats on a 12 GiB card
    print("1) out-of-core: 2^33 floats through the 12 GiB Titan X")
    plan = ChunkedTopK(device).plan(model_n, 64, np.dtype(np.float32))
    print(f"   chunks: {plan.num_chunks}, "
          f"transfer/chunk: {plan.transfer_seconds_per_chunk * 1e3:.1f} ms, "
          f"compute/chunk: {plan.compute_seconds_per_chunk * 1e3:.1f} ms")
    data = uniform_floats(FUNCTIONAL_N)
    for overlap in (False, True):
        result = chunked_topk(data, 64, overlap=overlap, model_n=model_n)
        label = "overlapped" if overlap else "serial    "
        print(f"   {label}: {result.simulated_ms():9.1f} ms "
              f"(efficiency {result.trace.notes['overlap_efficiency']:.2f})")
    bound = model_n * 4 / device.pcie_bandwidth * 1e3
    print(f"   PCIe lower bound: {bound:.1f} ms\n")


def hybrid() -> None:
    print("2) hybrid CPU+GPU split (top-64 of 2^29 floats)")
    runner = HybridTopK()
    split = runner.plan_split(1 << 29, 64, np.dtype(np.float32))
    print(f"   GPU share: {split.gpu_fraction:.1%}  "
          f"(GPU {split.gpu_seconds * 1e3:.1f} ms, "
          f"CPU {split.cpu_seconds * 1e3:.1f} ms, "
          f"makespan {split.makespan * 1e3:.1f} ms)")
    result = runner.run(uniform_floats(FUNCTIONAL_N), 64, model_n=1 << 29)
    print(f"   hybrid simulated total: {result.simulated_ms():.1f} ms\n")


def adaptive() -> None:
    print("3) adaptive selection (k = 1024, model n = 2^29)")
    selector = AdaptiveTopK()
    for label, generator in (
        ("uniform floats", uniform_floats),
        ("sorted ascending", increasing),
        ("bucket killer", bucket_killer),
    ):
        data = generator(FUNCTIONAL_N, seed=1)
        choice = selector.choose(data, 1024, model_n=1 << 29)
        print(f"   {label:>18}: {choice.algorithm:>13} "
              f"({choice.predicted_ms:.1f} ms predicted)")
    print()


def batched() -> None:
    print("4) batched top-16 over 64 rows of 4096 floats")
    rng = np.random.default_rng(0)
    matrix = rng.random((64, 4096)).astype(np.float32)
    result = batched_topk(matrix, 16, model_rows=4096)
    print(f"   one fused pipeline, {result.trace.num_launches} launches, "
          f"{result.simulated_ms():.2f} ms for a 4096-row batch")
    print(f"   row 0 top-3: {np.array2string(result.values[0][:3], precision=5)}")


def main() -> None:
    out_of_core()
    hybrid()
    adaptive()
    batched()


if __name__ == "__main__":
    main()
