"""Cost-model-driven algorithm selection — the paper's query-planner use case.

Section 7 closes with the argument that accurate cost models let a query
planner choose the right top-k implementation per query.  This example
sweeps k, shows the planner's ranking, locates the bitonic/radix-select
crossover, and asks the what-if question the models make cheap: where does
the crossover move on a newer GPU?

Run with::

    python examples/query_planner.py
"""

import numpy as np

from repro import TopKPlanner, get_device
from repro.costmodel import UNIFORM_FLOAT, UNIFORM_UINT

N = 1 << 29


def sweep(planner: TopKPlanner, dtype, profile, label: str) -> None:
    print(f"--- {label} (n = 2^29) ---")
    print(f"{'k':>6} {'choice':>14} {'predicted':>12}  ranking")
    for exponent in range(0, 12):
        k = 1 << exponent
        choice = planner.choose(N, k, dtype, profile)
        ranking = ", ".join(
            f"{name}={seconds * 1e3:.1f}ms" for name, seconds in choice.candidates[:3]
        )
        print(
            f"{k:>6} {choice.algorithm:>14} {choice.predicted_ms:>10.2f}ms  {ranking}"
        )
    crossover = planner.crossover_k(N, np.dtype(dtype), profile)
    if crossover is None:
        print("bitonic/radix-select crossover: none up to k = 2048")
    else:
        print(f"bitonic/radix-select crossover: k = {crossover}")
    print()


def main() -> None:
    titan = get_device("titan-x-maxwell")
    planner = TopKPlanner(titan)
    sweep(planner, np.dtype(np.float32), UNIFORM_FLOAT, "uniform floats, Titan X")
    sweep(planner, np.dtype(np.uint32), UNIFORM_UINT, "uniform uints, Titan X")

    # What-if: the same models parameterized with a Volta-generation card.
    volta_planner = TopKPlanner(get_device("v100"))
    sweep(
        volta_planner, np.dtype(np.float32), UNIFORM_FLOAT, "uniform floats, V100"
    )


if __name__ == "__main__":
    main()
