"""Quickstart: find the top-k elements of an array.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import bottomk, get_device, topk
from repro.algorithms.registry import EVALUATED_ALGORITHMS


def main() -> None:
    rng = np.random.default_rng(0)
    values = rng.random(1 << 20, dtype=np.float32)
    k = 32

    # The simplest call: the cost-model planner picks the algorithm.
    result = topk(values, k)
    print(f"top-{k} via {result.algorithm!r}:")
    print(f"  largest value  : {result.values[0]:.6f}")
    print(f"  k-th value     : {result.values[-1]:.6f}")
    print(f"  row of largest : {result.indices[0]}")
    print(f"  simulated time : {result.simulated_ms():.3f} ms "
          f"(on {get_device().name}, at this input size)")
    print()

    # Every algorithm of the paper's evaluation is available by name and
    # returns the same answer; they differ in simulated execution cost.
    # model_n extrapolates the execution trace to the paper's 2^29 keys.
    print(f"algorithm comparison at the paper's scale (n = 2^29, k = {k}):")
    for name in EVALUATED_ALGORITHMS:
        candidate = topk(values, k, algorithm=name, model_n=1 << 29)
        agrees = np.array_equal(
            np.sort(candidate.values), np.sort(result.values)
        )
        print(
            f"  {name:>14}: {candidate.simulated_ms():8.2f} ms  "
            f"(matches: {agrees})"
        )
    print()

    # Bottom-k works the same way.
    smallest = bottomk(values, 5)
    print("bottom-5 values:", np.array2string(smallest.values, precision=6))


if __name__ == "__main__":
    main()
