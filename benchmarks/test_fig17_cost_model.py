"""Figure 17: cost model predictions vs measured (simulated) runtimes.

Paper: the Section 7 models track the measurements across k, keep the same
bitonic/radix-select ordering structure, and consistently *underestimate*
because kernels do not achieve peak bandwidth (the first radix kernel runs
at 9.8 ms against a predicted 8.6; the SortReducer reaches 2.5 TB/s of the
2.9 TB/s peak).
"""

from repro.bench.figures import figure_17
from repro.bench.report import record_figure
from repro.core.planner import TopKPlanner


def test_fig17(benchmark, functional_n):
    figure = figure_17(functional_n=functional_n)
    record_figure(benchmark, figure)

    bitonic_measured = figure.series_by_name("bitonic-measured").points
    bitonic_predicted = figure.series_by_name("bitonic-predicted").points
    radix_measured = figure.series_by_name("radix-measured").points
    radix_predicted = figure.series_by_name("radix-predicted").points

    for k in bitonic_measured:
        # Both models underestimate, but stay within 40%.
        assert bitonic_predicted[k] < bitonic_measured[k]
        assert bitonic_predicted[k] > 0.6 * bitonic_measured[k]
        assert radix_predicted[k] < radix_measured[k]
        assert radix_predicted[k] > 0.6 * radix_measured[k]
        # Predicted and measured agree on who wins at this k.
        predicted_winner = bitonic_predicted[k] < radix_predicted[k]
        measured_winner = bitonic_measured[k] < radix_measured[k]
        assert predicted_winner == measured_winner

    benchmark(lambda: TopKPlanner().choose(1 << 29, 64))
