"""Ablation: the bank-conflict model behind the delta_i factors.

Regenerates the conflict-factor story of Figures 6/7/10 as a table —
contiguous chunks conflict B-way without padding, padding fixes them,
strided combined steps stay 2-way under padding alone, and chunk
permutation removes the rest — and cross-validates one configuration
against the micro SIMT executor's measured conflicts.
"""

import numpy as np

from repro.bench.report import Figure, record_figure
from repro.bitonic.simt_kernels import block_topk_kernel
from repro.gpu.banks import ChunkShape, chunk_conflict_factor
from repro.gpu.memory import GlobalMemory
from repro.gpu.simt import ThreadBlock


def test_bank_conflict_model(benchmark):
    figure = Figure(
        "ablX-banks",
        "Combined-step bank-conflict factors (delta_i of Section 7.2)",
        "chunk shape",
        "serialization factor",
        paper_expectation=(
            "Figure 6: unpadded contiguous chunks conflict B-way; Figure 7: "
            "padding fixes them; Figure 10: strided steps need chunk "
            "permutation."
        ),
    )
    unpadded = figure.add_series("no-optimization")
    padded = figure.add_series("+padding")
    permuted = figure.add_series("+chunk-permutation")
    shapes = {
        "contig-4": ChunkShape((0, 1)),
        "contig-16": ChunkShape((0, 1, 2, 3)),
        "runs@16": ChunkShape((0, 1, 2, 4)),
        "runs@64": ChunkShape((0, 1, 2, 6)),
        "runs@256": ChunkShape((0, 1, 2, 8)),
    }
    for label, shape in shapes.items():
        unpadded.add(label, chunk_conflict_factor(shape, padding=False))
        padded.add(label, chunk_conflict_factor(shape, padding=True))
        permuted.add(
            label,
            chunk_conflict_factor(shape, padding=True, chunk_permutation=True),
        )
    record_figure(benchmark, figure)

    for label in shapes:
        assert permuted.points[label] <= padded.points[label] <= (
            unpadded.points[label]
        )
        assert permuted.points[label] == 1.0
    assert unpadded.points["contig-16"] == 16.0
    assert padded.points["contig-16"] == 1.0
    assert padded.points["runs@64"] > 1.0

    # Cross-validation: the micro SIMT kernel's measured average factor
    # stays within the single-step model's bounds.
    def run_micro():
        data = list(np.random.default_rng(0).random(256))
        memory = GlobalMemory(data + [0.0] * 8)
        block = ThreadBlock(128, shared_words=256, global_memory=memory)
        block.run(lambda ctx: block_topk_kernel(ctx, 256, 8))
        return block.shared.stats.average_conflict_factor

    factor = run_micro()
    assert 1.0 <= factor <= 2.0
    benchmark(run_micro)
