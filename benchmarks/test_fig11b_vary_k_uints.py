"""Figure 11b: performance with varying K — 2^29 uniform uint32 keys.

Paper: identical to 11a for every method except radix select, which
improves because uniformly distributed integer keys give the maximal 256x
reduction per 8-bit pass; the bitonic/radix crossover moves down to the
low hundreds.
"""

from repro.bench.figures import figure_11a, figure_11b
from repro.bench.report import record_figure
from repro.algorithms.radix_select import RadixSelectTopK
from repro.data.distributions import uniform_uints


def test_fig11b(benchmark, functional_n):
    figure = figure_11b(functional_n=functional_n)
    record_figure(benchmark, figure)

    radix = figure.series_by_name("radix-select").points
    bitonic = figure.series_by_name("bitonic").points
    floats = figure_11a(functional_n=functional_n)
    radix_floats = floats.series_by_name("radix-select").points

    # Radix select improves on uints relative to floats.
    assert radix[64] < radix_floats[64] * 0.7
    # The crossover: radix select overtakes bitonic by k = 512.
    assert bitonic[32] < radix[32]
    assert radix[512] < bitonic[512]

    data = uniform_uints(functional_n)
    benchmark(lambda: RadixSelectTopK().run(data, 64))
