"""Ablation: hardware what-if — where the crossover moves.

Section 7's motivation is portability: "to predict the performance on
different hardware".  We sweep the shared-to-global bandwidth ratio around
the Titan X's ~11.6 and tabulate every registered device profile's planner
choices.  Bitonic's shared-bound kernels mean relatively faster shared
memory (the Maxwell -> Volta trend) widens its winning range.
"""

from repro.bench.report import Figure, record_figure
from repro.costmodel.whatif import crossover_vs_bandwidth_ratio, sweep_devices
from repro.core.planner import TopKPlanner
from repro.gpu.device import get_device

RATIOS = (1.0, 3.0, 6.0, 11.6, 15.3, 24.0)


def test_hardware_whatif(benchmark):
    figure = Figure(
        "ablX-whatif",
        "Bitonic/radix-select crossover vs shared:global bandwidth ratio",
        "B_S / B_G",
        "crossover k (uniform floats, n = 2^29)",
        paper_expectation=(
            "Faster shared memory relative to global widens bitonic's "
            "winning range (Section 7's portability argument)."
        ),
    )
    series = figure.add_series("crossover-k")
    points = crossover_vs_bandwidth_ratio(list(RATIOS))
    ceiling = 8192
    for point in points:
        series.add(
            point.shared_to_global_ratio,
            float(point.crossover_k if point.crossover_k is not None else ceiling),
        )
    choices = figure.add_series("v100-choice-at-k256")
    table = sweep_devices(ks=(256,))
    for device_name, per_k in table.items():
        choices.add(device_name, 1.0 if per_k[256] == "bitonic" else 0.0)
    record_figure(benchmark, figure)

    crossovers = [series.points[r] for r in RATIOS]
    assert crossovers == sorted(crossovers)
    assert crossovers[0] < crossovers[-1]
    # Every registered device picks bitonic in the mid range.
    assert all(value == 1.0 for value in choices.points.values())

    benchmark(lambda: TopKPlanner(get_device()).choose(1 << 29, 256))
