"""Section 4.3 ablation: the optimization ladder for top-32 on 2^29 floats.

Paper progression: 521 ms (naive) -> 122 (shared memory) -> 48.15 (kernel
fusion) -> 33.7 (combined steps) -> 22.3 (padding) -> 17.8 (B = 16) ->
16 (chunk permutation) -> 15.4 ms (partition reassignment).

We assert the reproduction's ladder is monotone and within 2x of the paper
at every rung, and that the fully optimized configuration improves over
naive by more than an order of magnitude.
"""

import pytest

from repro.bench.figures import ablation_43
from repro.bench.report import record_figure
from repro.bitonic.optimizations import ABLATION_LADDER
from repro.bitonic.topk import BitonicTopK
from repro.data.distributions import uniform_floats


def test_ablation(benchmark, functional_n):
    figure = ablation_43()
    record_figure(benchmark, figure)

    model = figure.series_by_name("model").points
    paper = figure.series_by_name("paper").points
    names = list(model)

    values = [model[name] for name in names]
    assert values == sorted(values, reverse=True)
    for name in names:
        assert model[name] == pytest.approx(paper[name], rel=1.0), name
    assert model[names[0]] / model[names[-1]] > 10

    data = uniform_floats(functional_n)
    flags = ABLATION_LADDER[-1][1]
    benchmark(lambda: BitonicTopK(flags=flags).run(data, 32))
