"""Ablation: batched per-row top-k vs repeated single launches.

The TensorFlow/ArrayFire feature requests the introduction cites want a
*batched* top-k (one per row of a [batch, n] tensor).  The bitonic network
applies elementwise along rows, so a single fused launch pipeline covers
the whole batch; this bench quantifies the launch-amortization win over
running the single-row algorithm per row.
"""

import numpy as np

from repro.bench.report import Figure, record_figure
from repro.bitonic.topk import BitonicTopK
from repro.core.batched import batched_topk
from repro.gpu.device import get_device

ROW_LENGTH = 4096
K = 16


def test_batched_amortization(benchmark):
    device = get_device()
    figure = Figure(
        "ablX-batched",
        f"Batched top-{K} (rows of {ROW_LENGTH} floats)",
        "batch size",
        "simulated ms",
        paper_expectation=(
            "One fused launch pipeline per batch: per-row cost falls as the "
            "batch grows, while per-row launches pay fixed overhead each."
        ),
    )
    batched_series = figure.add_series("batched")
    per_row_series = figure.add_series("row-at-a-time")
    rng = np.random.default_rng(0)
    single = BitonicTopK(device).run(
        rng.random(ROW_LENGTH).astype(np.float32), K
    )
    single_ms = single.simulated_ms(device)
    for batch in (1, 16, 256, 4096):
        matrix = rng.random((min(batch, 64), ROW_LENGTH)).astype(np.float32)
        result = batched_topk(matrix, K, device=device, model_rows=batch)
        batched_series.add(batch, result.simulated_ms(device))
        per_row_series.add(batch, batch * single_ms)
    record_figure(benchmark, figure)

    assert batched_series.points[256] < per_row_series.points[256]
    # The advantage grows with the batch.
    gain_small = per_row_series.points[16] / batched_series.points[16]
    gain_large = per_row_series.points[4096] / batched_series.points[4096]
    assert gain_large >= gain_small

    matrix = rng.random((64, ROW_LENGTH)).astype(np.float32)
    benchmark(lambda: batched_topk(matrix, K, device=device))
