"""Shared fixtures for the figure benchmarks.

Each benchmark module regenerates one table/figure of the paper:

* the *simulated* series (milliseconds on the modeled Titan X Maxwell at
  the paper's data scale) is computed by the experiment functions in
  :mod:`repro.bench.figures`, printed as an ASCII table, and attached to
  the pytest-benchmark record via ``extra_info``;
* the *wall-clock* number measured by pytest-benchmark times a
  representative functional run of the reproduction itself (reduced input
  size), which tracks performance regressions of this codebase.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture(scope="session")
def functional_n():
    """Functional input size for the wall-clock measurement paths."""
    return 1 << 16
