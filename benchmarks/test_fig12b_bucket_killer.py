"""Figure 12b: the bucket-killer adversarial distribution.

Paper: radix select degrades to the cost of a full Sort (each pass
eliminates a single element, so every pass reads and writes the whole
dataset); bucket select suffers a ~2x slowdown; bitonic top-k performs
precisely the same operations as always — there is no adversarial input
for it.
"""

from repro.bench.figures import figure_11a, figure_12b
from repro.bench.report import record_figure
from repro.algorithms.radix_select import RadixSelectTopK
from repro.data.distributions import bucket_killer


def test_fig12b(benchmark, functional_n):
    figure = figure_12b(functional_n=functional_n)
    record_figure(benchmark, figure)

    uniform = figure_11a(functional_n=functional_n)
    radix = figure.series_by_name("radix-select").points
    sort = figure.series_by_name("sort").points
    bucket = figure.series_by_name("bucket-select").points
    bucket_uniform = uniform.series_by_name("bucket-select").points
    bitonic = figure.series_by_name("bitonic").points
    bitonic_uniform = uniform.series_by_name("bitonic").points

    # Radix select collapses to Sort.
    assert radix[64] > 0.9 * sort[64]
    # Bucket select: a 2-4x slowdown.
    assert 1.5 < bucket[64] / bucket_uniform[64] < 4.0
    # Bitonic: bit-for-bit identical cost.
    assert bitonic[64] == bitonic_uniform[64]

    data = bucket_killer(functional_n)
    benchmark(lambda: RadixSelectTopK().run(data, 64))
