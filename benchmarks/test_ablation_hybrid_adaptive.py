"""Ablation: the paper's future-work directions — hybrid and adaptive top-k.

* **Hybrid CPU+GPU** (conclusion: "hybrid solutions could either involve
  multiple devices"): a cost-model-balanced split should finish before
  either device alone.
* **Adaptive selection** (conclusion: "as well as hybrids of the presented
  algorithms"): sniffing a sample protects against the adversarial cases
  of Section 6.4 — the static uniform-profile planner walks radix select
  into the bucket killer; the adaptive one does not.
"""

from repro.algorithms.registry import create
from repro.bench.report import Figure, record_figure
from repro.bitonic.topk import BitonicTopK
from repro.cpu.pq_topk import HandPqTopK
from repro.core.planner import TopKPlanner
from repro.data.distributions import bucket_killer, increasing, uniform_floats
from repro.gpu.device import get_device
from repro.hybrid.adaptive import AdaptiveTopK
from repro.hybrid.cpu_gpu import HybridTopK

MODEL_N = 1 << 29
K = 64


def test_hybrid_and_adaptive(benchmark, functional_n):
    device = get_device()
    figure = Figure(
        "ablX-hybrid",
        "Hybrid CPU+GPU and adaptive selection (top-64, 2^29 floats)",
        "configuration",
        "simulated ms",
        paper_expectation=(
            "Future work of the conclusion: a balanced split beats either "
            "device; adaptive selection avoids every adversarial trap."
        ),
    )
    data = uniform_floats(functional_n)
    devices = figure.add_series("uniform")
    gpu = BitonicTopK(device).run(data, K, model_n=MODEL_N)
    cpu = HandPqTopK(device).run(data, K, model_n=MODEL_N)
    hybrid = HybridTopK(device).run(data, K, model_n=MODEL_N)
    devices.add("gpu-only", gpu.simulated_ms(device))
    devices.add("cpu-only", cpu.simulated_ms(device))
    devices.add("hybrid", hybrid.simulated_ms(device))

    adaptive_series = figure.add_series("static-vs-adaptive")
    planner = TopKPlanner(device)
    selector = AdaptiveTopK(device)
    for label, generator in (
        ("uniform", uniform_floats),
        ("increasing", increasing),
        ("bucket-killer", bucket_killer),
    ):
        workload = generator(functional_n, seed=1)
        static_name = planner.choose(MODEL_N, K, workload.dtype).algorithm
        static = create(static_name, device).run(workload, K, model_n=MODEL_N)
        adaptive = selector.run(workload, K, model_n=MODEL_N)
        adaptive_series.add(f"{label}-static", static.simulated_ms(device))
        adaptive_series.add(f"{label}-adaptive", adaptive.simulated_ms(device))
    record_figure(benchmark, figure)

    # Hybrid beats both single devices.
    points = devices.points
    assert points["hybrid"] < points["gpu-only"]
    assert points["hybrid"] < points["cpu-only"]
    # Adaptive never loses badly on any distribution; on at least one
    # adversarial workload it strictly beats the static choice.
    adaptive_points = adaptive_series.points
    for label in ("uniform", "increasing", "bucket-killer"):
        assert (
            adaptive_points[f"{label}-adaptive"]
            <= adaptive_points[f"{label}-static"] * 1.3
        )

    benchmark(lambda: HybridTopK(device).run(data, K))
