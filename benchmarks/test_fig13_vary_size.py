"""Figure 13: performance with varying data size (k = 64, uniform floats).

Paper: bitonic and Sort grow linearly with n; radix and bucket select also
become linear at large n but flatten below ~2^24 where constant per-pass
costs (prefix sums, kernel launches) dominate; the per-thread heap shows an
outward bulge at small n where its fixed thread count is underutilized.
"""

from repro.bench.figures import figure_13
from repro.bench.report import record_figure
from repro.bitonic.topk import BitonicTopK
from repro.data.distributions import uniform_floats


def test_fig13(benchmark, functional_n):
    figure = figure_13()
    record_figure(benchmark, figure)

    bitonic = figure.series_by_name("bitonic").points
    sort = figure.series_by_name("sort").points
    radix = figure.series_by_name("radix-select").points

    # Linear growth at large n: doubling n doubles the time.
    assert bitonic["2^29"] / bitonic["2^28"] == 2.0 or (
        1.8 < bitonic["2^29"] / bitonic["2^28"] < 2.2
    )
    assert 1.8 < sort["2^29"] / sort["2^28"] < 2.2
    # Sub-linear scaling at the small end (fixed costs dominate).
    assert radix["2^22"] / radix["2^21"] < 1.8
    # Ordering holds at full scale.
    assert bitonic["2^29"] < radix["2^29"] < sort["2^29"]

    data = uniform_floats(functional_n)
    benchmark(lambda: BitonicTopK().run(data, 64))
