"""Figure 15a: CPU vs GPU top-k on 2^29 uniform floats.

Paper: with uniform data almost every element is rejected by the heap-root
comparison (about 500 insertions per core over 67M elements), so the CPU
priority queues are memory-bound; GPU bitonic is ~3x faster than the
hand-optimized PQ at k = 32; CPU bitonic does far more work and loses
badly.
"""

from repro.bench.figures import figure_15
from repro.bench.report import record_figure
from repro.cpu.pq_topk import HandPqTopK
from repro.data.distributions import uniform_floats


def test_fig15a(benchmark, functional_n):
    figure = figure_15(sorted_input=False, functional_n=functional_n)
    record_figure(benchmark, figure)

    gpu = figure.series_by_name("bitonic").points
    hand = figure.series_by_name("cpu-hand-pq").points
    stl = figure.series_by_name("cpu-stl-pq").points
    cpu_bitonic = figure.series_by_name("cpu-bitonic").points

    # GPU bitonic ~3-4x faster than Hand PQ at k = 32 (paper: 3x).
    assert 2.5 < hand[32] / gpu[32] < 6.0
    # The PQ variants are close on uniform data (both memory-bound).
    assert stl[32] / hand[32] < 1.5
    # CPU bitonic is far worse than the heap methods on uniform data.
    assert cpu_bitonic[32] > 5 * hand[32]

    data = uniform_floats(functional_n)
    benchmark(lambda: HandPqTopK().run(data, 32))
