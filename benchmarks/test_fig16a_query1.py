"""Figure 16a: MapD query 1 — time-range filter + top-50, selectivity sweep.

    SELECT id FROM tweets WHERE tweet_time < X
    ORDER BY retweet_count DESC LIMIT 50

Paper: bitonic-top-k-based plans beat the default Filter+Sort everywhere;
fusing the filter into the SortReducer (Combined) additionally saves the
write + read of the filtered (id, retweet_count) pairs — about 30% of
kernel time at selectivity 1.
"""

from repro.bench.figures import figure_16a
from repro.bench.report import record_figure
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets, time_threshold_for_selectivity


def test_fig16a(benchmark, functional_n):
    figure = figure_16a(functional_rows=functional_n)
    record_figure(benchmark, figure)

    sort = figure.series_by_name("Filter+Sort").points
    topk = figure.series_by_name("Filter+BitonicTopK").points
    combined = figure.series_by_name("Combined").points

    for selectivity in (0.5, 1.0):
        assert combined[selectivity] < topk[selectivity] < sort[selectivity]
    # Fusion saving at selectivity 1 (paper: ~30% of kernel time).
    saving = 1 - combined[1.0] / topk[1.0]
    assert 0.2 < saving < 0.7
    # Sort grows with selectivity; Combined stays nearly flat.
    assert sort[1.0] > 2 * sort[0.1]
    assert combined[1.0] < 1.5 * combined[0.1]

    session = Session()
    session.register(generate_tweets(functional_n))
    threshold = time_threshold_for_selectivity(0.5)
    sql = (
        f"SELECT id FROM tweets WHERE tweet_time < {threshold} "
        "ORDER BY retweet_count DESC LIMIT 50"
    )
    benchmark(lambda: session.sql(sql, strategy="fused"))
