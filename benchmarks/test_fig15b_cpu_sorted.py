"""Figure 15b: CPU vs GPU top-k on 2^29 sorted-ascending floats.

Paper: every element triggers a heap pop/insert — close to the CPU worst
case.  GPU bitonic is 60x faster than the hand-optimized PQ and 120x
faster than the STL PQ at k = 32; CPU bitonic lands close to the Hand PQ
despite doing more comparisons, thanks to SIMD.
"""

from repro.bench.figures import figure_15
from repro.bench.report import record_figure
from repro.cpu.bitonic_cpu import CpuBitonicTopK
from repro.data.distributions import increasing


def test_fig15b(benchmark, functional_n):
    figure = figure_15(sorted_input=True, functional_n=functional_n)
    record_figure(benchmark, figure)

    gpu = figure.series_by_name("bitonic").points
    hand = figure.series_by_name("cpu-hand-pq").points
    stl = figure.series_by_name("cpu-stl-pq").points
    cpu_bitonic = figure.series_by_name("cpu-bitonic").points

    # The headline ratios at k = 32 (paper: 60x and 120x).
    assert 40 < hand[32] / gpu[32] < 120
    assert 80 < stl[32] / gpu[32] < 250
    # STL is about twice the hand-optimized PQ (pop+push vs replace).
    assert 1.7 < stl[32] / hand[32] < 2.3
    # CPU bitonic tracks the Hand PQ (SIMD compensates).
    assert 0.5 < cpu_bitonic[32] / hand[32] < 2.0

    data = increasing(functional_n)
    benchmark(lambda: CpuBitonicTopK().run(data, 32))
