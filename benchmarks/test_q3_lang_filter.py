"""Section 6.8 query 3: language filter at ~80% selectivity, varying K.

    SELECT id FROM tweets WHERE lang='en' OR lang='es'
    ORDER BY retweet_count DESC LIMIT K

Paper: the same trend as query 1 at a fixed selectivity around 0.8 — the
combined kernel saves the round trip of the filtered (id, retweet_count)
entries (~16 ms at 250M rows) across all K.
"""

from repro.bench.figures import query_3
from repro.bench.report import record_figure
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets


def test_q3(benchmark, functional_n):
    figure = query_3(functional_rows=functional_n)
    record_figure(benchmark, figure)

    sort = figure.series_by_name("Filter+Sort").points
    topk = figure.series_by_name("Filter+BitonicTopK").points
    combined = figure.series_by_name("Combined").points

    for k in (16, 64, 256):
        assert combined[k] < topk[k] < sort[k]
    # A roughly constant fusion saving across K.
    savings = [topk[k] - combined[k] for k in (16, 64, 256)]
    assert max(savings) - min(savings) < 8
    assert all(saving > 5 for saving in savings)

    session = Session()
    session.register(generate_tweets(functional_n))
    sql = (
        "SELECT id FROM tweets WHERE lang = 'en' OR lang = 'es' "
        "ORDER BY retweet_count DESC LIMIT 64"
    )
    benchmark(lambda: session.sql(sql, strategy="fused"))
