"""Figure 8: varying the number of elements per thread (B).

Paper: performance improves up to B = 16; there is virtually no benefit
from 16 to 32 (deeper combined windows just double bank conflicts); B = 64
is a detriment because register/shared pressure forces occupancy down.
"""

import pytest

from repro.bench.figures import figure_08
from repro.bench.report import record_figure
from repro.bitonic.optimizations import FULL
from repro.bitonic.topk import BitonicTopK
from repro.data.distributions import uniform_floats


def test_fig08(benchmark, functional_n):
    figure = figure_08()
    record_figure(benchmark, figure)

    points = figure.series_by_name("bitonic").points
    # Monotone improvement up to 16.
    assert points[2] > points[4] > points[8] > points[16]
    # Flat from 16 to 32.
    assert points[32] == pytest.approx(points[16], rel=0.1)
    # Detriment at 64.
    assert points[64] > 1.3 * points[16]

    data = uniform_floats(functional_n)
    algorithm = BitonicTopK(flags=FULL.with_elements_per_thread(16))
    benchmark(lambda: algorithm.run(data, 32))
