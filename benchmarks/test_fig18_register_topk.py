"""Figure 18 (Appendix A): register-based vs shared-memory per-thread top-k.

Paper: the register variant is competitive for small k but collapses past
k = 32 when the buffer spills to local memory (the sharp slope from 32 to
64).  On the increasing distribution the gap to the shared-memory variant
widens (list updates cost k vs the heap's log k); on the decreasing
distribution there are no updates after warm-up and the gap closes.
"""

from repro.bench.figures import figure_18
from repro.bench.report import record_figure
from repro.algorithms.per_thread_registers import PerThreadRegisterTopK
from repro.data.distributions import uniform_floats


def test_fig18(benchmark, functional_n):
    figure = figure_18(functional_n=functional_n)
    record_figure(benchmark, figure)

    registers_uniform = figure.series_by_name("registers-uniform").points
    shared_uniform = figure.series_by_name("shared-uniform").points

    # The spill knee: 32 -> 64 jumps much harder than 16 -> 32.
    knee = registers_uniform[64] / registers_uniform[32]
    before = registers_uniform[32] / registers_uniform[16]
    assert knee > before * 1.2
    # Registers lose to shared memory at large k.
    assert registers_uniform[256] > shared_uniform[256]

    def gap(label, k):
        registers = figure.series_by_name(f"registers-{label}").points[k]
        shared = figure.series_by_name(f"shared-{label}").points[k]
        return registers / shared

    # Increasing widens the register/shared gap; decreasing closes it.
    assert gap("increasing", 64) > gap("uniform", 64)
    assert gap("decreasing", 64) < gap("increasing", 64)

    data = uniform_floats(functional_n)
    benchmark(lambda: PerThreadRegisterTopK().run(data, 32))
