"""Figure 11a: performance with varying K — 2^29 uniform floats.

Paper: bitonic wins for k <= 256; radix select wins beyond; Sort is flat
around 100 ms; the per-thread heap rises steeply from k = 32 and fails for
k > 256; bucket select trails radix select.
"""

from repro.bench.figures import figure_11a
from repro.bench.report import record_figure
from repro.bitonic.topk import BitonicTopK
from repro.data.distributions import uniform_floats


def test_fig11a(benchmark, functional_n):
    figure = figure_11a(functional_n=functional_n)
    record_figure(benchmark, figure)

    sort = figure.series_by_name("sort").points
    bitonic = figure.series_by_name("bitonic").points
    radix = figure.series_by_name("radix-select").points
    per_thread = figure.series_by_name("per-thread").points
    bandwidth = figure.series_by_name("memory-bandwidth").points

    # Who wins, and by roughly what factor.
    assert bitonic[32] < radix[32] / 2
    assert bitonic[256] < radix[256]
    assert sort[32] > 10 * bandwidth[32]
    assert sort[256] > 4 * bitonic[256]
    # Per-thread: steep slope past 32, hard failure past 256.
    assert per_thread[256] > 3 * per_thread[32]
    assert 512 not in per_thread
    # Sort is flat across k.
    assert max(sort.values()) / min(sort.values()) < 1.05

    data = uniform_floats(functional_n)
    benchmark(lambda: BitonicTopK().run(data, 32))
