"""Figure 16b: MapD query 2 — custom ranking function, varying K.

    SELECT id FROM tweets
    ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT K

Paper: computing the ranking function inside the SortReducer (Combined)
saves writing out and re-reading the projected rank column — about 10 ms
over Project+BitonicTopK — and both beat Project+Sort decisively.
"""

from repro.bench.figures import figure_16b
from repro.bench.report import record_figure
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets


def test_fig16b(benchmark, functional_n):
    figure = figure_16b(functional_rows=functional_n)
    record_figure(benchmark, figure)

    sort = figure.series_by_name("Project+Sort").points
    topk = figure.series_by_name("Project+BitonicTopK").points
    combined = figure.series_by_name("Combined").points

    for k in (32, 256):
        assert combined[k] < topk[k] < sort[k]
    # The fusion saving is a constant offset across K (the projected
    # column round trip), in the 5-30 ms range at 250M rows.
    savings = [topk[k] - combined[k] for k in (16, 64, 256)]
    assert all(5 < saving < 40 for saving in savings)
    spread = max(savings) - min(savings)
    assert spread < 10

    session = Session()
    session.register(generate_tweets(functional_n))
    sql = (
        "SELECT id FROM tweets "
        "ORDER BY retweet_count + 0.5 * likes_count DESC LIMIT 64"
    )
    benchmark(lambda: session.sql(sql, strategy="fused"))
