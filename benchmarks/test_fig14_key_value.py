"""Figure 14: key+value tuple configurations (KV, KKV, KKKV) at n = 2^28.

Paper: both radix select and bitonic rise linearly in the row width as key
columns are added; the cutoff point between them stays at the same k.
"""

import numpy as np

from repro.bench.figures import figure_14
from repro.bench.report import record_figure
from repro.bitonic.topk import BitonicTopK
from repro.data.records import make_batch


def test_fig14(benchmark, functional_n):
    figure = figure_14(functional_n=functional_n)
    record_figure(benchmark, figure)

    bitonic_kv = figure.series_by_name("bitonic-KV").points
    bitonic_kkkv = figure.series_by_name("bitonic-KKKV").points
    radix_kv = figure.series_by_name("radix-select-KV").points
    radix_kkkv = figure.series_by_name("radix-select-KKKV").points

    # Linear growth with row width: KV is 8 B/row, KKKV is 16 B/row.
    assert 1.7 < bitonic_kkkv[64] / bitonic_kv[64] < 2.3
    assert 1.7 < radix_kkkv[64] / radix_kv[64] < 2.3
    # Bitonic wins at small k for every configuration.
    for label in ("KV", "KKV", "KKKV"):
        bitonic_series = figure.series_by_name(f"bitonic-{label}").points
        radix_series = figure.series_by_name(f"radix-select-{label}").points
        assert bitonic_series[32] < radix_series[32]

    batch = make_batch(functional_n, num_keys=2)
    rank = batch.composite_rank().astype(np.float32)
    benchmark(lambda: BitonicTopK().run(rank, 64))
