"""Figure 11c: performance with varying K — 2^28 uniform doubles.

Same total bytes as Figure 11a but 8-byte keys.  Paper: Sort doubles its
passes (8 instead of 4); the per-thread heap fails past k = 128 (twice the
shared memory per key); bitonic is largely unchanged because its cost is
dominated by the total bytes moved.
"""

from repro.bench.figures import figure_11a, figure_11c
from repro.bench.report import record_figure
from repro.algorithms.radix_sort import SortTopK
from repro.data.distributions import uniform_doubles


def test_fig11c(benchmark, functional_n):
    figure = figure_11c(functional_n=functional_n)
    record_figure(benchmark, figure)

    floats = figure_11a(functional_n=functional_n)
    sort_doubles = figure.series_by_name("sort").points
    sort_floats = floats.series_by_name("sort").points
    bitonic_doubles = figure.series_by_name("bitonic").points
    bitonic_floats = floats.series_by_name("bitonic").points
    per_thread = figure.series_by_name("per-thread").points

    # Sort: same bytes, twice the passes -> about 2x.
    assert 1.6 < sort_doubles[64] / sort_floats[64] < 2.4
    # Per-thread fails earlier: k = 128 works, k = 256 does not.
    assert 128 in per_thread
    assert 256 not in per_thread
    # Bitonic: roughly unchanged (same bytes through the kernels).
    assert 0.7 < bitonic_doubles[64] / bitonic_floats[64] < 1.5

    data = uniform_doubles(functional_n // 2)
    benchmark(lambda: SortTopK().run(data, 64))
