"""Ablation: out-of-core top-k over PCIe (Section 4.3 discussion).

The paper argues top-k's reductive nature makes oversized inputs easy to
stream "in memory-size chunks and overlap computation with transfer".
This bench quantifies that on the simulated card: a 2^33-key input
(32 GiB, 2.7x the Titan X's memory) streamed with and without overlap,
plus the chunk-size sweep showing the pipeline is transfer-bound at PCIe
speeds.
"""

import numpy as np

from repro.bench.report import Figure, record_figure
from repro.core.chunked import ChunkedTopK, chunked_topk
from repro.data.distributions import uniform_floats
from repro.gpu.device import get_device

MODEL_N = 1 << 33  # 32 GiB of floats, larger than the 12 GiB card


def test_chunked_pipeline(benchmark, functional_n):
    device = get_device()
    figure = Figure(
        "ablX-chunked",
        "Out-of-core top-64 over PCIe (2^33 floats, 12 GiB card)",
        "configuration",
        "simulated ms",
        paper_expectation=(
            "Section 4.3: chunking with transfer/compute overlap makes "
            "oversized inputs nearly transfer-bound."
        ),
    )
    data = uniform_floats(functional_n)
    series = figure.add_series("pipeline")
    results = {}
    for overlap, label in ((False, "serial"), (True, "overlapped")):
        result = chunked_topk(
            data, 64, device=device, overlap=overlap, model_n=MODEL_N
        )
        results[label] = result.simulated_ms(device)
        series.add(label, results[label])
    transfer_bound = MODEL_N * 4 / device.pcie_bandwidth * 1e3
    series.add("pcie-lower-bound", transfer_bound)
    record_figure(benchmark, figure)

    assert results["overlapped"] < results["serial"]
    # Overlap hides compute almost entirely behind the transfers.
    assert results["overlapped"] < transfer_bound * 1.25
    # The plan reports near-ideal pipeline efficiency.
    plan = ChunkedTopK(device).plan(MODEL_N, 64, np.dtype(np.float32))
    assert plan.overlap_efficiency > 0.8

    benchmark(lambda: chunked_topk(data, 64, memory_budget_bytes=1 << 20))
