"""Section 6.8 query 4: top-50 users by tweet count (GROUP BY).

    SELECT uid, COUNT() AS num_tweets FROM tweets
    GROUP BY uid ORDER BY num_tweets DESC LIMIT 50

Paper: in MapD the query takes 97 ms, of which the sort over the ~57M
per-user counts takes 44 ms; replacing it with bitonic top-k removes 38 ms
(a 39% end-to-end reduction).  The group-by itself is untouched, which is
why a query grouping on a low-cardinality column would not benefit as much.
"""

from repro.bench.figures import query_4
from repro.bench.report import record_figure
from repro.engine.session import Session
from repro.engine.twitter import generate_tweets


def test_q4(benchmark, functional_n):
    figure = query_4(functional_rows=functional_n)
    record_figure(benchmark, figure)

    totals = figure.series_by_name("simulated-ms").points
    sort_total = totals["GroupBy+Sort"]
    topk_total = totals["GroupBy+BitonicTopK"]
    # Replacing the sort step reduces the total; the group-by share
    # remains, so the reduction is meaningful but not total (paper: 39%).
    reduction = 1 - topk_total / sort_total
    assert 0.1 < reduction < 0.7

    session = Session()
    session.register(generate_tweets(functional_n))
    sql = (
        "SELECT uid, COUNT() AS num_tweets FROM tweets GROUP BY uid "
        "ORDER BY num_tweets DESC LIMIT 50"
    )
    benchmark(lambda: session.sql(sql, strategy="topk"))
