"""Figure 12a: sorted-increasing input distribution.

Paper: the per-thread heap degrades up to 3x because every element beats
the heap minimum and triggers an update; Sort and bitonic perform exactly
the same operations as on uniform data and are unchanged.
"""

from repro.bench.figures import figure_11a, figure_12a
from repro.bench.report import record_figure
from repro.algorithms.per_thread import PerThreadTopK
from repro.data.distributions import increasing


def test_fig12a(benchmark, functional_n):
    figure = figure_12a(functional_n=functional_n)
    record_figure(benchmark, figure)

    uniform = figure_11a(functional_n=functional_n)
    per_thread = figure.series_by_name("per-thread").points
    per_thread_uniform = uniform.series_by_name("per-thread").points
    for k in (16, 32):
        slowdown = per_thread[k] / per_thread_uniform[k]
        assert 1.2 < slowdown < 4.0, k
    # Sort and bitonic are distribution-blind.
    for name in ("sort", "bitonic"):
        adversarial = figure.series_by_name(name).points
        baseline = uniform.series_by_name(name).points
        assert abs(adversarial[64] - baseline[64]) / baseline[64] < 0.02, name

    data = increasing(functional_n)
    benchmark(lambda: PerThreadTopK().run(data, 32))
