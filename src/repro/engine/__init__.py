"""Columnar query engine with fused top-k operators (the MapD study)."""

from repro.engine.executor import STRATEGIES, QueryExecutor, QueryResult
from repro.engine.explain import QueryPlan, StrategyPlan, explain
from repro.engine.expressions import BinaryOp, Column, Expression, Literal, Not
from repro.engine.loader import from_csv, from_csv_text, from_rows
from repro.engine.session import Session
from repro.engine.sql import Query, parse
from repro.engine.table import Table, make_table
from repro.engine.twitter import generate_tweets, time_threshold_for_selectivity

__all__ = [
    "STRATEGIES",
    "QueryPlan",
    "StrategyPlan",
    "explain",
    "QueryExecutor",
    "QueryResult",
    "BinaryOp",
    "Column",
    "Expression",
    "Literal",
    "Not",
    "from_csv",
    "from_csv_text",
    "from_rows",
    "Session",
    "Query",
    "parse",
    "Table",
    "make_table",
    "generate_tweets",
    "time_threshold_for_selectivity",
]
