"""EXPLAIN: per-strategy cost preview and recommendation.

A database exposes its planner's reasoning through EXPLAIN; ours reports,
for a top-k query, the physical pipeline of each execution strategy with
its simulated cost at the modeled table size, and recommends the cheapest —
which, per Section 5, is the fused kernel whenever the query has a filter
or computed ranking.

Each strategy's entry carries the *typed physical plan tree* the executor
actually walked (``repro.plan``): the Fallback node over the selection
operator (TopK or ApproxTopK, ending on the CPU heap) rooted on the
query's Scan/Filter input.  ``render`` prints it; ``to_dict`` emits it
for ``repro explain --json`` and external tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import STRATEGIES, QueryExecutor
from repro.engine.sql import Query, parse
from repro.plan import PLAN_FORMAT, PLAN_VERSION, PlanNode

_PIPELINES = {
    "sort": ["scan + filter/project -> materialize (rank, id)",
             "radix sort (4 passes)", "gather top-k"],
    "topk": ["scan + filter/project -> materialize (rank, id)",
             "bitonic top-k (SortReducer + BitonicReducers)"],
    "fused": ["FusedSortReducer (scan + filter/rank + local sort + merges)",
              "BitonicReducers"],
}


@dataclass(frozen=True)
class StrategyPlan:
    """One strategy's pipeline, simulated cost, and physical plan tree."""

    strategy: str
    pipeline: tuple[str, ...]
    simulated_ms: float
    kernel_launches: int
    #: The typed plan tree the executor walked for this strategy (the
    #: Fallback over TopK/ApproxTopK operators on the Scan/Filter input).
    plan: PlanNode | None = None

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "pipeline": list(self.pipeline),
            "simulated_ms": self.simulated_ms,
            "kernel_launches": self.kernel_launches,
            "plan": self.plan.to_dict() if self.plan is not None else None,
        }


@dataclass(frozen=True)
class QueryPlan:
    """The EXPLAIN result: all strategies, cheapest first."""

    sql: str
    model_rows: int
    strategies: tuple[StrategyPlan, ...]

    @property
    def recommended(self) -> str:
        return self.strategies[0].strategy

    def render(self) -> str:
        """Human-readable EXPLAIN output, plan trees included."""
        lines = [f"EXPLAIN (model_rows = {self.model_rows:,})", f"  {self.sql}"]
        for plan in self.strategies:
            marker = "->" if plan.strategy == self.recommended else "  "
            lines.append(
                f"{marker} {plan.strategy:<6} {plan.simulated_ms:9.2f} ms  "
                f"({plan.kernel_launches} launches)"
            )
            for stage in plan.pipeline:
                lines.append(f"       . {stage}")
            if plan.plan is not None:
                lines.append(f"       plan {plan.plan.fingerprint()}")
                for row in plan.plan.render().splitlines():
                    lines.append(f"       {row}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable EXPLAIN (``repro explain --json``)."""
        return {
            "format": PLAN_FORMAT,
            "version": PLAN_VERSION,
            "sql": self.sql,
            "model_rows": self.model_rows,
            "recommended": self.recommended,
            "strategies": [plan.to_dict() for plan in self.strategies],
        }


def explain(
    executor: QueryExecutor,
    sql: str,
    model_rows: int | None = None,
) -> QueryPlan:
    """Cost out every strategy for ``sql`` on the executor's table."""
    query: Query = parse(sql)
    model = model_rows or len(executor.table)
    group_by_strategies = ("sort", "topk")
    candidates = group_by_strategies if query.group_by else STRATEGIES
    plans = []
    for strategy in candidates:
        result = executor.execute(query, strategy=strategy, model_rows=model)
        pipeline = list(_PIPELINES.get(strategy, ()))
        if (
            strategy == "topk"
            and result.plan is not None
            and getattr(result.plan, "chain", None) is not None
            and result.plan.chain()[:1] == ["radik"]
        ):
            # Past the radix crossover the separate-kernel strategy runs
            # the adaptive radix select instead of the bitonic network.
            pipeline[1] = "radix top-k (RadiK adaptive passes)"
        plans.append(
            StrategyPlan(
                strategy=strategy,
                pipeline=tuple(pipeline),
                simulated_ms=result.simulated_ms(),
                kernel_launches=result.trace.num_launches,
                plan=result.plan,
            )
        )
    plans.sort(key=lambda plan: plan.simulated_ms)
    return QueryPlan(sql=sql, model_rows=model, strategies=tuple(plans))
