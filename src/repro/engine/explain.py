"""EXPLAIN: per-strategy cost preview and recommendation.

A database exposes its planner's reasoning through EXPLAIN; ours reports,
for a top-k query, the physical pipeline of each execution strategy with
its simulated cost at the modeled table size, and recommends the cheapest —
which, per Section 5, is the fused kernel whenever the query has a filter
or computed ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import STRATEGIES, QueryExecutor
from repro.engine.sql import Query, parse

_PIPELINES = {
    "sort": ["scan + filter/project -> materialize (rank, id)",
             "radix sort (4 passes)", "gather top-k"],
    "topk": ["scan + filter/project -> materialize (rank, id)",
             "bitonic top-k (SortReducer + BitonicReducers)"],
    "fused": ["FusedSortReducer (scan + filter/rank + local sort + merges)",
              "BitonicReducers"],
}


@dataclass(frozen=True)
class StrategyPlan:
    """One strategy's pipeline and simulated cost."""

    strategy: str
    pipeline: tuple[str, ...]
    simulated_ms: float
    kernel_launches: int


@dataclass(frozen=True)
class QueryPlan:
    """The EXPLAIN result: all strategies, cheapest first."""

    sql: str
    model_rows: int
    strategies: tuple[StrategyPlan, ...]

    @property
    def recommended(self) -> str:
        return self.strategies[0].strategy

    def render(self) -> str:
        """Human-readable EXPLAIN output."""
        lines = [f"EXPLAIN (model_rows = {self.model_rows:,})", f"  {self.sql}"]
        for plan in self.strategies:
            marker = "->" if plan.strategy == self.recommended else "  "
            lines.append(
                f"{marker} {plan.strategy:<6} {plan.simulated_ms:9.2f} ms  "
                f"({plan.kernel_launches} launches)"
            )
            for stage in plan.pipeline:
                lines.append(f"       . {stage}")
        return "\n".join(lines)


def explain(
    executor: QueryExecutor,
    sql: str,
    model_rows: int | None = None,
) -> QueryPlan:
    """Cost out every strategy for ``sql`` on the executor's table."""
    query: Query = parse(sql)
    model = model_rows or len(executor.table)
    group_by_strategies = ("sort", "topk")
    candidates = group_by_strategies if query.group_by else STRATEGIES
    plans = []
    for strategy in candidates:
        result = executor.execute(query, strategy=strategy, model_rows=model)
        plans.append(
            StrategyPlan(
                strategy=strategy,
                pipeline=tuple(_PIPELINES.get(strategy, ())),
                simulated_ms=result.simulated_ms(),
                kernel_launches=result.trace.num_launches,
            )
        )
    plans.sort(key=lambda plan: plan.simulated_ms)
    return QueryPlan(sql=sql, model_rows=model, strategies=tuple(plans))
