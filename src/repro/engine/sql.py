"""SQL subset parser for the Section 6.8 evaluation queries.

Grammar (case-insensitive keywords)::

    query     := SELECT select_list FROM name
                 [WHERE disjunction]
                 [GROUP BY column_list]
                 [ORDER BY expression [ASC | DESC] (, expression [ASC | DESC])*]
                 [LIMIT integer]
                 [APPROX_TOPK '(' number ')']
    select    := expression [AS name]
               | COUNT([*]) [AS name]
               | (SUM | MIN | MAX | AVG) '(' expression ')' [AS name]
    disjunction := conjunction (OR conjunction)*
    conjunction := predicate (AND predicate)*
    predicate := NOT predicate | '(' disjunction ')' | sum (cmp sum)?
    sum       := product (('+'|'-') product)*
    product   := atom (('*'|'/') atom)*
    atom      := number | string | column | '(' sum ')'

This covers all four Section 6.8 queries, e.g.::

    SELECT id FROM tweets WHERE tweet_time < 0.5
        ORDER BY retweet_count DESC LIMIT 50
    SELECT uid, COUNT() AS num_tweets FROM tweets
        GROUP BY uid ORDER BY num_tweets DESC LIMIT 50
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.engine.expressions import BinaryOp, Column, Expression, Literal, Not
from repro.errors import SqlSyntaxError

_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<string>'[^']*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|[-+*/()=<>,])"
    r"|(?P<star>\*)"
    r")"
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "order",
    "by",
    "limit",
    "asc",
    "desc",
    "and",
    "or",
    "not",
    "as",
    "count",
    "sum",
    "min",
    "max",
    "avg",
    "approx_topk",
}


#: Aggregate functions usable in GROUP BY select lists.
AGGREGATES = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list.

    ``aggregate`` names the aggregate function when the item is one
    (COUNT/SUM/MIN/MAX/AVG); COUNT takes no argument expression.
    """

    expression: Expression | None
    alias: str
    aggregate: str | None = None

    @property
    def is_count(self) -> bool:
        return self.aggregate == "count"

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None


@dataclass
class Query:
    """Parsed representation of a query.

    ``order_by_keys`` holds every ORDER BY key as (expression, descending)
    in priority order; ``order_by`` / ``order_desc`` mirror the first key
    for the common single-key case.
    """

    table: str
    select: list[SelectItem]
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: Expression | None = None
    order_desc: bool = False
    limit: int | None = None
    order_by_keys: list[tuple[Expression, bool]] = field(default_factory=list)
    #: Minimum acceptable recall from an APPROX_TOPK(r) clause; None means
    #: the query did not opt in (the session default applies).
    recall_target: float | None = None


class _Tokens:
    def __init__(self, text: str):
        self.items: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_PATTERN.match(text, position)
            if match is None:
                raise SqlSyntaxError(
                    f"cannot tokenize SQL at position {position}: "
                    f"{text[position:position + 20]!r}"
                )
            token = match.group().strip()
            if token:
                self.items.append(token)
            position = match.end()
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.items):
            return self.items[self.position]
        return None

    def peek_keyword(self) -> str | None:
        token = self.peek()
        return token.lower() if token and token.lower() in _KEYWORDS else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of query")
        self.position += 1
        return token

    def expect(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise SqlSyntaxError(f"expected {keyword.upper()!r}, got {token!r}")

    def accept(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == keyword:
            self.position += 1
            return True
        return False


def parse(sql: str) -> Query:
    """Parse a SQL string into a :class:`Query`."""
    tokens = _Tokens(sql.strip().rstrip(";"))
    tokens.expect("select")
    select = _parse_select_list(tokens)
    tokens.expect("from")
    table = tokens.next()

    where = None
    group_by: list[str] = []
    order_by_keys: list[tuple] = []
    limit = None
    recall_target = None
    while tokens.peek() is not None:
        keyword = tokens.next().lower()
        if keyword == "where":
            where = _parse_disjunction(tokens)
        elif keyword == "group":
            tokens.expect("by")
            group_by = [tokens.next()]
            while tokens.accept(","):
                group_by.append(tokens.next())
        elif keyword == "order":
            tokens.expect("by")
            order_by_keys.append(_parse_order_key(tokens))
            while tokens.accept(","):
                order_by_keys.append(_parse_order_key(tokens))
        elif keyword == "limit":
            # "-1" tokenizes as "-", "1"; reassemble so the executor can
            # reject negative limits with a typed InvalidParameterError
            # instead of this parser leaking a bare ValueError.
            sign = -1 if tokens.accept("-") else 1
            token = tokens.next()
            try:
                limit = sign * int(token)
            except ValueError:
                raise SqlSyntaxError(
                    f"LIMIT expects an integer, got {token!r}"
                ) from None
        elif keyword == "approx_topk":
            tokens.expect("(")
            token = tokens.next()
            try:
                recall_target = float(token)
            except ValueError:
                raise SqlSyntaxError(
                    f"APPROX_TOPK expects a number, got {token!r}"
                ) from None
            if not 0.0 < recall_target <= 1.0:
                raise SqlSyntaxError(
                    f"APPROX_TOPK recall target must be in (0, 1], got {token}"
                )
            tokens.expect(")")
        else:
            raise SqlSyntaxError(f"unexpected token {keyword!r}")
    first_key = order_by_keys[0] if order_by_keys else (None, False)
    return Query(
        table=table,
        select=select,
        where=where,
        group_by=group_by,
        order_by=first_key[0],
        order_desc=first_key[1],
        limit=limit,
        order_by_keys=order_by_keys,
        recall_target=recall_target,
    )


def _parse_order_key(tokens: _Tokens) -> tuple:
    expression = _parse_sum(tokens)
    descending = False
    if tokens.accept("desc"):
        descending = True
    else:
        tokens.accept("asc")
    return (expression, descending)


def _parse_select_list(tokens: _Tokens) -> list[SelectItem]:
    items = [_parse_select_item(tokens)]
    while tokens.accept(","):
        items.append(_parse_select_item(tokens))
    return items


def _parse_select_item(tokens: _Tokens) -> SelectItem:
    token = tokens.peek()
    if token is not None and token.lower() in AGGREGATES:
        aggregate = tokens.next().lower()
        tokens.expect("(")
        if aggregate == "count":
            tokens.accept("*")
            argument = None
        else:
            argument = _parse_sum(tokens)
        tokens.expect(")")
        alias = aggregate
        if tokens.accept("as"):
            alias = tokens.next()
        return SelectItem(expression=argument, alias=alias, aggregate=aggregate)
    expression = _parse_sum(tokens)
    alias = str(expression)
    if tokens.accept("as"):
        alias = tokens.next()
    elif isinstance(expression, Column):
        alias = expression.name
    return SelectItem(expression=expression, alias=alias)


def _parse_disjunction(tokens: _Tokens) -> Expression:
    left = _parse_conjunction(tokens)
    while tokens.accept("or"):
        left = BinaryOp("or", left, _parse_conjunction(tokens))
    return left


def _parse_conjunction(tokens: _Tokens) -> Expression:
    left = _parse_predicate(tokens)
    while tokens.accept("and"):
        left = BinaryOp("and", left, _parse_predicate(tokens))
    return left


def _parse_predicate(tokens: _Tokens) -> Expression:
    if tokens.accept("not"):
        return Not(_parse_predicate(tokens))
    # A parenthesis may open a boolean group or an arithmetic expression;
    # resolve by attempting the boolean parse first.
    if tokens.peek() == "(":
        saved = tokens.position
        tokens.next()
        try:
            inner = _parse_disjunction(tokens)
            if tokens.peek() == ")":
                tokens.next()
                # Only treat it as a boolean group when not followed by an
                # arithmetic/comparison continuation.
                if tokens.peek() not in set("+-*/<>=") and tokens.peek() not in (
                    "<=",
                    ">=",
                    "!=",
                ):
                    return inner
        except SqlSyntaxError:
            pass
        tokens.position = saved
    left = _parse_sum(tokens)
    operator = tokens.peek()
    if operator in ("<", "<=", ">", ">=", "=", "!=", "<>"):
        tokens.next()
        if operator == "<>":
            operator = "!="
        right = _parse_sum(tokens)
        return BinaryOp(operator, left, right)
    return left


def _parse_sum(tokens: _Tokens) -> Expression:
    left = _parse_product(tokens)
    while tokens.peek() in ("+", "-"):
        operator = tokens.next()
        left = BinaryOp(operator, left, _parse_product(tokens))
    return left


def _parse_product(tokens: _Tokens) -> Expression:
    left = _parse_atom(tokens)
    while tokens.peek() in ("*", "/"):
        operator = tokens.next()
        left = BinaryOp(operator, left, _parse_atom(tokens))
    return left


def _parse_atom(tokens: _Tokens) -> Expression:
    token = tokens.next()
    if token == "(":
        inner = _parse_sum(tokens)
        closing = tokens.next()
        if closing != ")":
            raise SqlSyntaxError(f"expected ')', got {closing!r}")
        return inner
    if token.startswith("'") and token.endswith("'"):
        return Literal(token[1:-1])
    if re.fullmatch(r"\d+\.\d*|\.\d+", token):
        return Literal(float(token))
    if token.isdigit():
        return Literal(int(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
        if token.lower() in _KEYWORDS:
            raise SqlSyntaxError(f"unexpected keyword {token!r} in expression")
        return Column(token)
    raise SqlSyntaxError(f"unexpected token {token!r} in expression")
