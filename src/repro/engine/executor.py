"""Physical query execution with the Section 5 top-k integration strategies.

For an ``ORDER BY expr [DESC] LIMIT k`` query the executor supports the
strategies compared in Section 6.8:

* ``"sort"``          — MapD's default: materialize the (rank, id) pairs
  that pass the filter / projection, fully radix-sort them, take k.
* ``"topk"``          — replace the sort with bitonic top-k, keeping the
  separate filter/projection kernel.
* ``"fused"``         — run the filter or ranking projection *inside* the
  SortReducer (the buffer-filler design of Section 5), eliminating the
  intermediate global write + read.

GROUP BY ... ORDER BY count queries run a hash-aggregation kernel first
and then apply the chosen top-k strategy to the per-group counts (query 4).

Functional results are exact (numpy); traces account the kernels each
strategy would launch, scaled to ``model_rows`` when the caller wants
paper-scale timings (250M tweets) from a smaller functional table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.engine.operators import SelectionOperator, run_once
from repro.engine.sql import Query, parse
from repro.engine.table import Table
from repro.errors import (
    InvalidParameterError,
    ReproError,
    UnsupportedQueryError,
)
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import TraceTime, trace_time
from repro.plan import (
    Fallback,
    Filter,
    PlanNode,
    Scan,
    build_fallback,
    network_k,
)

#: Key + row-id bytes moved per materialized candidate row (4-byte rank
#: value and 4-byte id, the (key, id) layout Section 6.6 recommends).
CANDIDATE_ROW_BYTES = 8

#: Bounded retries of the engine's internal top-k selection on an
#: injected device fault before it falls back to the CPU oracle.
FUNCTIONAL_RETRIES = 2

STRATEGIES = ("sort", "topk", "fused")


@dataclass
class QueryResult:
    """A finished query: result columns plus the simulated execution trace."""

    columns: dict[str, np.ndarray]
    trace: ExecutionTrace
    strategy: str
    device: DeviceSpec
    num_input_rows: int
    num_result_rows: int
    #: The typed physical plan the query executed (None for legacy
    #: construction paths); EXPLAIN and tracing render this tree.
    plan: PlanNode | None = None

    def simulated_time(self) -> TraceTime:
        return trace_time(self.trace, self.device)

    def simulated_ms(self) -> float:
        return self.simulated_time().total_ms

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


class QueryExecutor:
    """Executes parsed queries against a table under a chosen strategy."""

    def __init__(
        self,
        table: Table,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        fault_retries: int = FUNCTIONAL_RETRIES,
        recall_target: float = 1.0,
        shards: int = 1,
    ):
        if fault_retries < 0:
            raise InvalidParameterError(
                f"fault_retries must be non-negative, got {fault_retries}"
            )
        if not 0.0 < recall_target <= 1.0:
            raise InvalidParameterError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        if isinstance(shards, bool) or not isinstance(shards, (int, np.integer)):
            raise InvalidParameterError(
                f"shards must be an integer, got {type(shards).__name__}"
            )
        if shards < 1:
            raise InvalidParameterError(
                f"shards must be at least 1, got {shards}"
            )
        self.table = table
        self.device = device or get_device()
        self.flags = flags
        self.fault_retries = fault_retries
        self.recall_target = recall_target
        self.shards = int(shards)

    def sql(
        self,
        text: str,
        strategy: str = "fused",
        model_rows: int | None = None,
    ) -> QueryResult:
        """Parse and execute a SQL string."""
        return self.execute(parse(text), strategy, model_rows)

    def execute(
        self,
        query: Query,
        strategy: str = "fused",
        model_rows: int | None = None,
    ) -> QueryResult:
        if strategy not in STRATEGIES:
            raise UnsupportedQueryError(
                f"unknown strategy {strategy!r}; available: {STRATEGIES}"
            )
        if query.table != self.table.name:
            raise UnsupportedQueryError(
                f"query targets table {query.table!r} but executor holds "
                f"{self.table.name!r}"
            )
        if query.limit is not None and query.limit < 0:
            raise InvalidParameterError(
                f"LIMIT must be non-negative, got {query.limit}"
            )
        if model_rows is not None and model_rows <= 0:
            raise InvalidParameterError(
                f"model_rows must be positive, got {model_rows}"
            )
        model = model_rows or len(self.table)
        with obs.span(
            "query",
            category="engine",
            table=query.table,
            strategy=strategy,
            model_rows=model,
        ) as span:
            if query.group_by:
                result = self._execute_group_by(query, strategy, model)
            elif query.order_by is not None and query.limit is not None:
                result = self._execute_topk(query, strategy, model)
            else:
                result = self._execute_scan(query, model)
            # Attribute the query's kernel launches (one span each, with
            # simulated time) and publish engine metrics.
            from repro.observability.instrument import record_trace

            sim_ms = record_trace(result.trace, self.device)
            span.set(
                result_rows=result.num_result_rows,
                launches=result.trace.num_launches,
                simulated_ms=sim_ms,
            )
            if result.plan is not None:
                span.set(plan_fingerprint=result.plan.fingerprint())
            registry = obs.active_metrics()
            if registry is not None:
                registry.counter("engine.queries", strategy=result.strategy).inc()
                registry.counter("engine.input_rows").inc(result.num_input_rows)
                registry.counter("engine.result_rows").inc(result.num_result_rows)
        return result

    # -- plain scans ----------------------------------------------------

    def _execute_scan(self, query: Query, model_rows: int) -> QueryResult:
        mask = self._filter_mask(query)
        indices = np.flatnonzero(mask)
        if query.limit is not None:
            indices = indices[: query.limit]
        columns = self._project(query, indices)
        with faults.suspended():
            trace = ExecutionTrace()
            scan = trace.launch("scan-filter")
            width = self._scan_width(query)
            scan.add_global_read(float(model_rows) * width)
            selectivity = len(indices) / max(1, len(self.table))
            scan.add_global_write(
                float(model_rows) * selectivity * self.table.row_bytes()
            )
        plan = self._input_plan(query, model_rows)
        return QueryResult(
            columns, trace, "scan", self.device, len(self.table), len(indices),
            plan=plan,
        )

    # -- plan construction ----------------------------------------------

    def _input_plan(self, query: Query, model_rows: int) -> PlanNode:
        """The Scan(+Filter) subtree every query plan is rooted on."""
        try:
            width = self._scan_width(query)
        except ReproError:
            # Grouped queries order by aggregate aliases that are not
            # table columns; the scan width is then not a plan property.
            width = None
        node: PlanNode = Scan(
            source=self.table.name,
            rows=model_rows,
            dtype="float32",
            width_bytes=width,
        )
        if query.where is not None:
            node = Filter(child=node, predicate=str(query.where))
        return node

    def _selection_plan(
        self,
        query: Query,
        strategy: str,
        model_rows: int,
        matched_model: int,
        k: int,
        effective_recall: float,
        approx_config,
        expected_recall: float | None,
    ) -> Fallback:
        """The query's top-k selection as an explicit Fallback plan.

        The chain mirrors the engine's fault posture exactly: the chosen
        operator (the approximate bucketed selection when planned, the
        partition-parallel Merge when the executor holds multiple shards,
        the bitonic network otherwise), anchored on the CPU oracle —
        bounded kernel retries happen *within* a stage, the oracle is the
        terminal stage that cannot lose a device.  Sharding applies only
        to exact single-key top-k strategies: approximate plans and the
        full-sort baseline stay single-device.
        """
        num_keys = len(query.order_by_keys) if query.order_by_keys else 1
        ranked: list[tuple[str, float | None]] = []
        if approx_config is not None:
            ranked.append(("approx-bucket", None))
        else:
            kernel = "bitonic"
            if strategy == "topk" and num_keys == 1:
                kernel = self._exact_kernel(matched_model, k)
            ranked.append((kernel, None))
            if kernel != "bitonic":
                # The bitonic network stays in the chain: a radix-planned
                # selection degrades through it before the CPU oracle.
                ranked.append(("bitonic", None))
        fallback = build_fallback(
            ranked,
            n=matched_model,
            k=k,
            dtype="float32",
            recall_target=effective_recall,
            approx_config=approx_config,
            expected_recall=expected_recall,
            terminal_cpu=True,
            child=self._input_plan(query, model_rows),
        )
        if (
            self.shards > 1
            and approx_config is None
            and strategy in ("topk", "fused")
            and num_keys == 1
        ):
            from repro.sharding.partition import build_sharded_plan

            merge = build_sharded_plan(
                matched_model,
                k,
                shards=min(self.shards, matched_model),
                dtype="float32",
                algorithm="bitonic",
                source=self.table.name,
            )
            fallback = Fallback(alternatives=(merge, *fallback.alternatives))
        return fallback

    def _exact_kernel(self, n: int, k: int) -> str:
        """The exact selection kernel of the ``"topk"`` strategy.

        Bitonic in the paper's regime; the RadiK-style adaptive radix
        select once the radix family overtakes the network at model
        scale (large k).  Only the separate-kernel strategy consults the
        cost models: ``"fused"`` is inherently bitonic (the Section 5
        buffer-filler is a rewrite of the SortReducer) and ``"sort"`` is
        the full-sort baseline.
        """
        from repro.costmodel.bitonic_model import BitonicModel
        from repro.costmodel.radik_model import RadiKModel

        dtype = np.dtype(np.float32)
        radik = RadiKModel(self.device)
        bitonic = BitonicModel(self.device)
        if not radik.supports(n, k, dtype):
            return "bitonic"
        if not bitonic.supports(n, k, dtype):
            return "radik"
        if radik.predict_seconds(n, k, dtype) < bitonic.predict_seconds(
            n, k, dtype
        ):
            return "radik"
        return "bitonic"

    # -- ORDER BY ... LIMIT k -------------------------------------------

    def _execute_topk(
        self, query: Query, strategy: str, model_rows: int
    ) -> QueryResult:
        mask = self._filter_mask(query)
        candidate_rows = np.flatnonzero(mask)
        k = min(query.limit, len(candidate_rows))
        keys = query.order_by_keys or [(query.order_by, query.order_desc)]
        selectivity = len(candidate_rows) / max(1, len(self.table))
        matched_model = max(1, int(round(model_rows * selectivity)))

        # An APPROX_TOPK clause (or the session's recall_target) opts the
        # selection into the bucketed approximate operator when the cost
        # model finds a configuration meeting the target that beats the
        # exact plan at model scale.  Multi-key orders and the full-sort
        # baseline strategy always stay exact.
        effective_recall = (
            query.recall_target
            if query.recall_target is not None
            else self.recall_target
        )
        approx_plan = None
        if (
            effective_recall < 1.0
            and k > 0
            and len(keys) == 1
            and strategy in ("topk", "fused")
        ):
            from repro.costmodel.approx_model import choose_config

            with faults.suspended():
                approx_plan = choose_config(
                    matched_model,
                    k,
                    effective_recall,
                    np.dtype(np.float32),
                    self.device,
                )
        with faults.suspended():
            plan = self._selection_plan(
                query,
                strategy,
                model_rows,
                matched_model,
                max(k, 1),
                effective_recall,
                approx_plan[0] if approx_plan is not None else None,
                approx_plan[2] if approx_plan is not None else None,
            )
        approx_trace: ExecutionTrace | None = None
        if k <= 0:
            result_rows = np.empty(0, dtype=np.int64)
        elif len(keys) == 1:
            ranks = self._rank_array(keys[0][0])
            if not keys[0][1]:
                ranks = -ranks
            candidate_ranks = ranks[mask].astype(np.float32)
            order, approx_trace = self._run_selection(
                plan, candidate_ranks, k, matched_model
            )
            result_rows = candidate_rows[order]
        else:
            # Multi-key lexicographic order (the KKV kernel of Section
            # 6.6); functional selection via a stable multi-key sort.
            sort_keys = []
            for expression, descending in keys:
                values = self._rank_array(expression)
                sort_keys.append(-values[mask] if descending else values[mask])
            order = np.lexsort(tuple(reversed(sort_keys)))[:k]
            result_rows = candidate_rows[order]
        columns = self._project(query, result_rows)

        # Trace construction is accounting, not device activity; the
        # query's injectable execution is the functional selection above.
        with faults.suspended():
            trace = self._selection_trace(
                query, strategy, model_rows, matched_model, k, approx_trace
            )
            if approx_trace is not None and approx_plan is not None:
                trace.notes["approx.recall_target"] = effective_recall
            self._record_calibration(plan, trace, matched_model, max(k, 1))
        return QueryResult(
            columns, trace, strategy, self.device, len(self.table),
            len(result_rows), plan=plan,
        )

    def _record_calibration(
        self, plan: Fallback, trace: ExecutionTrace, n: int, k: int
    ) -> None:
        """Feed the calibration loop one (predicted, observed) pair.

        A no-op unless a :mod:`repro.costmodel.calibration` store is
        captured in this context (``Session(calibration=store)``).  The
        prediction prices the plan's winning kernel at the modeled
        selection size with its Section 7 model; the observation is the
        simulated time of the whole query trace, so the fitted factor for
        an engine-fed kernel absorbs the pipeline's scan/materialize
        overhead alongside the selection itself — exactly the systematic
        gap a planner comparing kernels under the same pipeline needs
        corrected.  Winners without a predictive model (a sharded Merge,
        the approximate operator) are not sampled.
        """
        from repro.costmodel import calibration

        store = calibration.active_store()
        if store is None or plan is None or not plan.alternatives:
            return
        winner = plan.alternatives[0]
        kernel = getattr(winner, "algorithm", winner.kind)
        model = calibration.base_model_for(kernel, self.device)
        if model is None or not model.supports(n, k, np.dtype(np.float32)):
            return
        predicted_ms = model.predict_ms(n, k)
        observed_ms = trace_time(trace, self.device).total_ms
        calibration.record_sample(
            plan.fingerprint(), kernel, predicted_ms, observed_ms
        )

    # -- the plan interpreter -------------------------------------------

    def _run_selection(
        self,
        plan: Fallback,
        ranks: np.ndarray,
        k: int,
        matched_model: int,
    ) -> tuple[np.ndarray, ExecutionTrace | None]:
        """Run the selection through the incremental operator contract.

        A one-shot query is the degenerate stream: the
        :class:`~repro.engine.operators.SelectionOperator` is opened,
        advanced with the full candidate array as a single chunk, emitted
        once, and closed — bit-identical to walking the plan directly,
        and the same operator a continuous subscription drives per tick.
        """
        operator = SelectionOperator(
            plan,
            device=self.device,
            flags=self.flags,
            fault_retries=self.fault_retries,
        )
        return run_once(operator, ranks, k, model_n=matched_model)

    # -- trace embedding --------------------------------------------------

    def _fuse_scan_kernel(self, first, scan_width: int, model_rows: int,
                          name: str) -> None:
        """Rewrite an operator's first kernel into the Section 5
        buffer-filler: it scans the base columns instead of reading a
        materialized candidate array, staging every scanned row through
        shared memory once."""
        first.name = name
        first.global_bytes_read = float(model_rows) * scan_width
        first.add_shared(float(model_rows) * 4.0)

    def _materialize_kernel(
        self,
        trace: ExecutionTrace,
        query: Query,
        scan_width: int,
        model_rows: int,
        matched_rows: int,
        candidate_bytes_per_row: int,
    ) -> None:
        """The separate filter/projection kernel of the non-fused
        strategies: one full scan, one (rank, id) candidate write."""
        materialize = trace.launch(
            "filter-project" if query.where is not None else "project"
        )
        materialize.add_global_read(float(model_rows) * scan_width)
        materialize.add_global_write(
            float(matched_rows) * candidate_bytes_per_row
        )

    def _selection_trace(
        self,
        query: Query,
        strategy: str,
        model_rows: int,
        matched_rows: int,
        k: int,
        operator_trace: ExecutionTrace | None = None,
    ) -> ExecutionTrace:
        """Embed the query's top-k selection in its strategy pipeline.

        One accounting path for the exact and approximate operators:
        under "fused" the selection's first kernel becomes the Section 5
        buffer-filler (:meth:`_fuse_scan_kernel`); otherwise a
        filter/projection kernel materializes candidate rows first
        (:meth:`_materialize_kernel`).  ``operator_trace`` carries the
        approximate operator's own kernels; None means the exact pipeline
        (bitonic under "topk"/"fused", the radix-sort baseline under
        "sort").
        """
        scan_width = self._scan_width(query)
        trace = ExecutionTrace()
        if operator_trace is not None:
            candidate_bytes_per_row = CANDIDATE_ROW_BYTES
            first = operator_trace.kernels[0]
            if "sharding.shards" in operator_trace.notes:
                # Sharded selections always materialize: the scatter needs
                # per-shard candidate arrays, and the concurrent kernel's
                # directly-modeled seconds must not be rewritten into a
                # buffer-filler.
                self._materialize_kernel(
                    trace, query, scan_width, model_rows, matched_rows,
                    candidate_bytes_per_row,
                )
            elif strategy == "fused":
                self._fuse_scan_kernel(
                    first, scan_width, model_rows, f"fused-{first.name}"
                )
            else:
                self._materialize_kernel(
                    trace, query, scan_width, model_rows, matched_rows,
                    candidate_bytes_per_row,
                )
                first.global_bytes_read = (
                    float(matched_rows) * candidate_bytes_per_row
                )
            trace.extend(operator_trace)
            trace.notes["selectivity"] = matched_rows / model_rows
            return trace

        # One 4-byte rank per ORDER BY key plus the 4-byte row id
        # (the KV/KKV/KKKV row widths of Section 6.6).
        num_keys = max(1, len(query.order_by_keys) or 1)
        candidate_bytes_per_row = 4 * num_keys + 4
        padded_k = network_k(max(k, 1))
        if strategy == "fused":
            fused = build_trace(
                matched_rows,
                padded_k,
                candidate_bytes_per_row,
                self.flags,
                self.device,
            )
            self._fuse_scan_kernel(
                fused.kernels[0], scan_width, model_rows, "FusedSortReducer"
            )
            trace.extend(fused)
            trace.notes["selectivity"] = matched_rows / model_rows
            return trace

        self._materialize_kernel(
            trace, query, scan_width, model_rows, matched_rows,
            candidate_bytes_per_row,
        )
        if strategy == "topk":
            trace.extend(
                build_trace(
                    matched_rows,
                    padded_k,
                    candidate_bytes_per_row,
                    self.flags,
                    self.device,
                )
            )
            return trace
        # strategy == "sort": LSD radix sort over the candidate rows.
        candidate_bytes = float(matched_rows) * candidate_bytes_per_row
        for pass_index in range(4):
            kernel = trace.launch(f"sort-pass-{pass_index}")
            kernel.add_global_read(candidate_bytes)
            kernel.add_global_read(candidate_bytes)
            kernel.add_global_write(candidate_bytes)
        gather = trace.launch("gather-topk")
        gather.add_global_read(float(max(k, 1)) * candidate_bytes_per_row)
        return trace

    # -- GROUP BY ... ORDER BY count LIMIT k ----------------------------

    def _execute_group_by(
        self, query: Query, strategy: str, model_rows: int
    ) -> QueryResult:
        if len(query.group_by) != 1:
            raise UnsupportedQueryError("only single-column GROUP BY is supported")
        aggregate_items = [item for item in query.select if item.is_aggregate]
        if not aggregate_items:
            raise UnsupportedQueryError(
                "GROUP BY queries must select at least one aggregate"
            )
        group_column = query.group_by[0]
        mask = self._filter_mask(query)
        keys = self.table.column(group_column)[mask]
        groups, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )

        aggregates: dict[str, np.ndarray] = {}
        for item in aggregate_items:
            aggregates[item.alias] = self._aggregate(
                item, mask, inverse, counts, len(groups)
            )

        with faults.suspended():
            plan = build_fallback(
                [("bitonic", None)],
                n=len(groups),
                k=min(query.limit or 1, max(len(groups), 1)),
                dtype="float64",
                terminal_cpu=True,
                child=self._input_plan(query, model_rows),
            )
        if query.order_by is not None and query.limit is not None:
            rank = self._group_rank(query, groups, aggregates, group_column)
            if not query.order_desc:
                rank = -rank
            k = min(query.limit, len(groups))
            order, _ = self._run_selection(
                plan, rank.astype(np.float64), k, len(groups)
            )
        else:
            order = np.argsort(counts)[::-1]
        result = {group_column: groups[order]}
        for alias, values in aggregates.items():
            result[alias] = values[order]

        model_groups = max(
            1, int(round(len(groups) * model_rows / max(1, len(self.table))))
        )
        with faults.suspended():
            trace = ExecutionTrace()
            aggregate = trace.launch("hash-aggregate")
            aggregate.add_global_read(
                float(model_rows)
                * self.table.column(group_column).dtype.itemsize
            )
            aggregate.atomic_ops = float(model_rows)
            aggregate.add_global_write(
                float(model_groups) * CANDIDATE_ROW_BYTES
            )
            if query.limit is not None:
                if strategy in ("topk", "fused"):
                    trace.extend(
                        build_trace(
                            model_groups,
                            1
                            << max(0, (max(query.limit, 1) - 1).bit_length()),
                            CANDIDATE_ROW_BYTES,
                            self.flags,
                            self.device,
                        )
                    )
                else:
                    group_bytes = float(model_groups) * CANDIDATE_ROW_BYTES
                    for pass_index in range(4):
                        kernel = trace.launch(f"sort-pass-{pass_index}")
                        kernel.add_global_read(2.0 * group_bytes)
                        kernel.add_global_write(group_bytes)
        return QueryResult(
            result, trace, strategy, self.device, len(self.table), len(order),
            plan=plan,
        )

    # -- helpers ---------------------------------------------------------

    def _aggregate(
        self,
        item,
        mask: np.ndarray,
        inverse: np.ndarray,
        counts: np.ndarray,
        num_groups: int,
    ) -> np.ndarray:
        """Evaluate one aggregate select item over the grouped rows."""
        if item.aggregate == "count":
            return counts
        values = self._rank_array(item.expression)[mask]
        if item.aggregate == "sum":
            return np.bincount(inverse, weights=values, minlength=num_groups)
        if item.aggregate == "avg":
            totals = np.bincount(inverse, weights=values, minlength=num_groups)
            return totals / counts
        extreme = np.full(
            num_groups, -np.inf if item.aggregate == "max" else np.inf
        )
        operator = np.maximum if item.aggregate == "max" else np.minimum
        operator.at(extreme, inverse, values)
        return extreme

    def _group_rank(
        self,
        query: Query,
        groups: np.ndarray,
        aggregates: dict[str, np.ndarray],
        group_column: str,
    ) -> np.ndarray:
        """The ORDER BY key of a grouped query: an aggregate alias or the
        group column itself."""
        from repro.engine.expressions import Column

        key = query.order_by
        if isinstance(key, Column):
            if key.name in aggregates:
                return np.asarray(aggregates[key.name], dtype=np.float64)
            if key.name == group_column:
                return groups.astype(np.float64)
        raise UnsupportedQueryError(
            "GROUP BY queries can only order by a selected aggregate alias "
            "or the grouping column"
        )

    def _rank_array(self, expression) -> np.ndarray:
        """Evaluate a ranking expression to a full-length float array.

        Constant expressions (``ORDER BY 1 + 1``) evaluate to scalars and
        are broadcast — every row ranks equally.
        """
        values = np.asarray(expression.evaluate(self.table), dtype=np.float64)
        if values.ndim == 0:
            values = np.full(len(self.table), float(values))
        return values

    def _filter_mask(self, query: Query) -> np.ndarray:
        if query.where is None:
            return np.ones(len(self.table), dtype=bool)
        mask = np.asarray(query.where.evaluate(self.table)).astype(bool)
        if mask.ndim == 0:
            # Constant predicates (WHERE 1 < 2) select all or nothing.
            mask = np.full(len(self.table), bool(mask))
        return mask

    def _scan_width(self, query: Query) -> int:
        """Bytes per input row the query's kernels must read."""
        referenced: set[str] = set()
        if query.where is not None:
            referenced |= query.where.referenced_columns()
        if query.order_by is not None:
            referenced |= query.order_by.referenced_columns()
        for item in query.select:
            if item.expression is not None:
                referenced |= item.expression.referenced_columns()
        if not referenced:
            referenced = {self.table.column_names[0]}
        return sum(
            self.table.column(name).dtype.itemsize for name in referenced
        )

    def _project(self, query: Query, rows: np.ndarray) -> dict[str, np.ndarray]:
        columns: dict[str, np.ndarray] = {}
        for item in query.select:
            if item.is_count:
                continue
            values = item.expression.evaluate(self.table)
            columns[item.alias] = np.asarray(values)[rows]
        return columns
