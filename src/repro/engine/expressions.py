"""Expression AST and vectorized evaluator.

Covers what the Section 6.8 queries need — column references, numeric and
string literals, arithmetic (the custom ranking function
``retweet_count + 0.5 * likes_count``), comparisons (the time-range and
language filters) and boolean connectives — evaluated column-at-a-time
with numpy, which mirrors how a GPU database JIT-compiles expressions over
columnar data.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table
from repro.errors import UnsupportedQueryError


class Expression(abc.ABC):
    """Base class for all expression nodes."""

    @abc.abstractmethod
    def evaluate(self, table: Table) -> np.ndarray:
        """Vectorized evaluation over all rows of ``table``."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Names of the columns the expression reads."""


@dataclass(frozen=True)
class Column(Expression):
    """A reference to a table column."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A numeric or string constant."""

    value: float | int | str

    def evaluate(self, table: Table) -> np.ndarray:
        raise UnsupportedQueryError(
            "a bare literal cannot be evaluated outside a comparison"
        )

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}

_COMPARISON = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}

_BOOLEAN = {"and": np.logical_and, "or": np.logical_or}


def _operand_array(expression: Expression, table: Table) -> np.ndarray | float:
    if isinstance(expression, Literal):
        if isinstance(expression.value, str):
            raise UnsupportedQueryError(
                "string literals are only valid against string columns"
            )
        return expression.value
    return expression.evaluate(table)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, or boolean binary operator."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        if self.op in _ARITHMETIC:
            left = _operand_array(self.left, table)
            right = _operand_array(self.right, table)
            return _ARITHMETIC[self.op](left, right)
        if self.op in _COMPARISON:
            return self._compare(table)
        if self.op in _BOOLEAN:
            left = self.left.evaluate(table).astype(bool)
            right = self.right.evaluate(table).astype(bool)
            return _BOOLEAN[self.op](left, right)
        raise UnsupportedQueryError(f"unsupported operator {self.op!r}")

    def _compare(self, table: Table) -> np.ndarray:
        # String comparisons resolve the literal through the column's
        # dictionary so the device-side comparison stays integer-typed.
        column, literal = None, None
        if isinstance(self.left, Column) and isinstance(self.right, Literal):
            column, literal, op = self.left, self.right, self.op
        elif isinstance(self.right, Column) and isinstance(self.left, Literal):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            column, literal, op = self.right, self.left, flipped[self.op]
        else:
            op = self.op
        if (
            column is not None
            and isinstance(literal.value, str)
            and table.is_string_column(column.name)
        ):
            if op not in ("=", "!="):
                raise UnsupportedQueryError(
                    "string columns support only equality predicates"
                )
            code = table.encode_string(column.name, literal.value)
            return _COMPARISON[op](table.column(column.name), code)
        # Numeric comparison: the flipped operator only applies to the
        # column-vs-dictionary-code form above; here the operands keep
        # their original order.
        left = _operand_array(self.left, table)
        right = _operand_array(self.right, table)
        return _COMPARISON[self.op](left, right)

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    """Boolean negation."""

    operand: Expression

    def evaluate(self, table: Table) -> np.ndarray:
        return np.logical_not(self.operand.evaluate(table).astype(bool))

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"(not {self.operand})"


def column_width(expression: Expression, table: Table) -> int:
    """Bytes per row the expression's inputs occupy — the scan cost driver."""
    return sum(
        table.column(name).dtype.itemsize
        for name in expression.referenced_columns()
    )
