"""Table ingestion: CSV files and row dictionaries.

A database substrate needs a way in for real data.  The loader infers
column types the way a columnar engine would at ingest: integer if every
value parses as one, else float, else dictionary-encoded string — the
layout :class:`~repro.engine.table.Table` executes on.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.engine.table import Table, make_table
from repro.errors import InvalidParameterError


def _infer_column(values: list[str]) -> np.ndarray | list[str]:
    """Narrowest type that holds every value: int64 -> float64 -> str."""
    try:
        return np.array([int(value) for value in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(value) for value in values], dtype=np.float64)
    except ValueError:
        pass
    return values


def from_rows(name: str, rows: Iterable[Mapping[str, object]]) -> Table:
    """Build a table from an iterable of row dictionaries.

    All rows must share the same keys; column types are taken from the
    values (numpy handles numerics, strings are dictionary-encoded).
    """
    rows = list(rows)
    if not rows:
        raise InvalidParameterError("cannot build a table from zero rows")
    columns = list(rows[0].keys())
    for index, row in enumerate(rows):
        if list(row.keys()) != columns:
            raise InvalidParameterError(
                f"row {index} has columns {list(row.keys())}, expected {columns}"
            )
    data = {column: [row[column] for row in rows] for column in columns}
    return make_table(name, data)


def from_csv_text(name: str, text: str, delimiter: str = ",") -> Table:
    """Build a table from CSV text with a header row."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise InvalidParameterError("CSV input is empty") from None
    header = [column.strip() for column in header]
    if len(set(header)) != len(header):
        raise InvalidParameterError(f"duplicate column names in header: {header}")
    rows = [row for row in reader if row]
    if not rows:
        raise InvalidParameterError("CSV input has a header but no rows")
    for index, row in enumerate(rows):
        if len(row) != len(header):
            raise InvalidParameterError(
                f"CSV row {index} has {len(row)} fields, expected {len(header)}"
            )
    data = {}
    for position, column in enumerate(header):
        data[column] = _infer_column([row[position].strip() for row in rows])
    return make_table(name, data)


def from_csv(name: str, path: str | Path, delimiter: str = ",") -> Table:
    """Build a table from a CSV file with a header row."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise InvalidParameterError(f"cannot read CSV file {path}: {error}")
    return from_csv_text(name, text, delimiter)
