"""Synthetic twitter dataset (stand-in for the paper's 250M-tweet corpus).

The Section 6.8 queries exercise specific distributional properties, which
the generator reproduces at any scale:

* ``uid`` — Zipf-skewed over ~23% as many distinct users as tweets (the
  paper's corpus has 57M unique users over 250M tweets), so the group-by
  query has a heavy-hitter structure;
* ``tweet_time`` — uniform over the month, so a time-range predicate's
  selectivity equals its range fraction (the Figure 16a sweep);
* ``retweet_count`` / ``likes_count`` — heavy-tailed and positively
  correlated (popular tweets score high on both), exercising the custom
  ranking function of query 2;
* ``lang`` — categorical with English + Spanish at ~80% combined, matching
  the stated selectivity of query 3.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.distributions import zipf_integers
from repro.data.stream import stream_chunk, tweet_stream
from repro.engine.table import Table, make_table
from repro.errors import InvalidParameterError

#: Language mix: en + es = 0.8, the selectivity quoted for query 3.
LANGUAGES = ("en", "es", "ja", "pt", "ar", "fr")
LANGUAGE_WEIGHTS = (0.62, 0.18, 0.08, 0.05, 0.04, 0.03)

#: Distinct users per tweet, matching 57M users / 250M tweets.
USERS_PER_TWEET = 57 / 250

#: Seconds in May 2017 (the corpus month).
MAY_2017_START = 1_493_596_800
MAY_2017_END = 1_496_275_200


def generate_tweets(num_rows: int, seed: int = 0) -> Table:
    """Generate the synthetic tweets table."""
    if num_rows <= 0:
        raise InvalidParameterError("num_rows must be positive")
    rng = np.random.default_rng(seed)
    num_users = max(1, int(num_rows * USERS_PER_TWEET))

    uid = zipf_integers(num_rows, num_users, skew=1.2, seed=seed + 1)
    tweet_time = rng.integers(
        MAY_2017_START, MAY_2017_END, size=num_rows, dtype=np.int64
    ).astype(np.int32)

    # Heavy-tailed popularity with correlation between retweets and likes.
    popularity = rng.pareto(1.3, size=num_rows)
    retweet_count = np.floor(popularity * 3.0).astype(np.int32)
    likes_noise = rng.pareto(1.5, size=num_rows)
    likes_count = np.floor(popularity * 4.0 + likes_noise * 2.0).astype(np.int32)

    lang_codes = rng.choice(
        len(LANGUAGES), size=num_rows, p=np.asarray(LANGUAGE_WEIGHTS)
    )
    lang = [LANGUAGES[code] for code in lang_codes]

    return make_table(
        "tweets",
        {
            "id": np.arange(num_rows, dtype=np.int32),
            "uid": uid,
            "tweet_time": tweet_time,
            "retweet_count": retweet_count,
            "likes_count": likes_count,
            "lang": lang,
        },
    )


def _chunk_table(chunk: dict[str, np.ndarray]) -> Table:
    """Wrap one stream chunk's columns into a tweets table."""
    columns = {
        name: values
        for name, values in chunk.items()
        if name != "lang_code"
    }
    columns["lang"] = [LANGUAGES[code] for code in chunk["lang_code"]]
    return make_table("tweets", columns)


def generate_tweet_chunk(
    chunk_index: int, chunk_rows: int, seed: int = 0
) -> Table:
    """One chunk of the unbounded tweet stream as a table.

    A pure function of ``(seed, chunk_index)`` — see
    :func:`repro.data.stream.stream_chunk` — so any chunk is reproducible
    without generating its predecessors.
    """
    return _chunk_table(stream_chunk(chunk_index, chunk_rows, seed))


def stream_tweet_tables(
    chunk_rows: int, seed: int = 0, start_chunk: int = 0
) -> Iterator[Table]:
    """The unbounded tweet stream, lazily wrapped into per-chunk tables.

    The chunked/lazy counterpart of :func:`generate_tweets`: each
    ``next()`` materializes exactly one ``chunk_rows``-row table and no
    state accumulates across chunks, so the stream source never holds
    more than one chunk in memory (unlike the bounded generator, which
    builds the full table up front).
    """
    for chunk in tweet_stream(chunk_rows, seed, start_chunk):
        yield _chunk_table(chunk)


def time_threshold_for_selectivity(selectivity: float) -> int:
    """tweet_time bound X such that ``tweet_time < X`` matches the fraction.

    Times are uniform over May 2017, so the threshold interpolates the
    month linearly — this is how the Figure 16a selectivity sweep sets X.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise InvalidParameterError("selectivity must be in [0, 1]")
    span = MAY_2017_END - MAY_2017_START
    return int(MAY_2017_START + selectivity * span)
