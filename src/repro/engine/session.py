"""Session facade: register tables, run SQL.

    >>> from repro.engine import Session, generate_tweets
    >>> session = Session()
    >>> session.register(generate_tweets(1 << 18))
    >>> result = session.sql(
    ...     "SELECT id FROM tweets ORDER BY retweet_count DESC LIMIT 50"
    ... )
    >>> result.column("id")[:3]
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from repro import observability as obs
from repro.costmodel import calibration as calibration_capture
from repro.costmodel.calibration import CalibrationStore
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.engine.executor import (
    FUNCTIONAL_RETRIES,
    QueryExecutor,
    QueryResult,
)
from repro.engine.sql import parse
from repro.engine.table import Table
from repro.errors import InvalidParameterError, UnsupportedQueryError
from repro.gpu.device import DeviceSpec, get_device


class Session:
    """Holds registered tables and dispatches queries to executors.

    With ``trace=True`` the session owns an
    :class:`~repro.observability.Observation` — a tracer plus a metrics
    registry — that is active for every query it runs, accumulating spans
    and metrics across queries:

        >>> session = Session(trace=True)
        >>> session.register(generate_tweets(1 << 14))
        >>> _ = session.sql(
        ...     "SELECT id FROM tweets ORDER BY likes_count DESC LIMIT 5"
        ... )
        >>> print(session.tracer.render())
        >>> obs.write_chrome_trace("trace.json", session.tracer, session.metrics)
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        trace: bool = False,
        fault_retries: int = FUNCTIONAL_RETRIES,
        recall_target: float = 1.0,
        shards: int = 1,
        calibration: CalibrationStore | None = None,
    ):
        self.device = device or get_device()
        self.flags = flags
        self.fault_retries = fault_retries
        if not 0.0 < recall_target <= 1.0:
            raise InvalidParameterError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        #: Session-wide default recall floor; queries override it with an
        #: explicit APPROX_TOPK(r) clause.  1.0 keeps every query exact.
        self.recall_target = recall_target
        #: Partition count for exact top-k selections; above 1 the engine
        #: plans a Merge over per-shard subtrees (the sharding layer).
        self.shards = shards
        #: When set, every query feeds the cost-model calibration loop:
        #: the executor records (plan fingerprint, kernel, predicted ms,
        #: observed ms) samples into this store (see docs/calibration.md).
        self.calibration = calibration
        self._tables: dict[str, Table] = {}
        self.observation: obs.Observation | None = (
            obs.Observation(obs.Tracer(), obs.MetricsRegistry()) if trace else None
        )

    @property
    def tracer(self) -> obs.Tracer | None:
        """The session's tracer (None unless constructed with trace=True)."""
        return self.observation.tracer if self.observation else None

    @property
    def metrics(self) -> obs.MetricsRegistry | None:
        """The session's metrics registry (None unless trace=True)."""
        return self.observation.metrics if self.observation else None

    @contextmanager
    def _observed(self):
        """Activate the session's observation and calibration scopes."""
        with ExitStack() as stack:
            if self.observation is not None:
                stack.enter_context(self.observation.activate())
            if self.calibration is not None:
                stack.enter_context(
                    calibration_capture.capturing(self.calibration)
                )
            yield

    def register(self, table: Table) -> None:
        """Register (or replace) a table by its name."""
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise UnsupportedQueryError(
                f"no table named {name!r} registered; tables: {known}"
            ) from None

    def sql(
        self,
        text: str,
        strategy: str = "fused",
        model_rows: int | None = None,
    ) -> QueryResult:
        """Execute a SQL query.

        ``strategy`` picks the top-k integration ("sort" = MapD default,
        "topk" = separate bitonic top-k kernel, "fused" = Section 5 fusion);
        ``model_rows`` scales the execution trace to a larger modeled table
        (e.g. the paper's 250M tweets).

        A query prefixed with ``EXPLAIN`` is not executed for its answer:
        it returns the :class:`~repro.engine.explain.QueryPlan` costing
        out every strategy (with each strategy's physical plan tree),
        exactly like :meth:`explain` on the unprefixed text.
        """
        stripped = text.lstrip()
        if stripped[:8].upper() == "EXPLAIN " or stripped.upper() == "EXPLAIN":
            return self.explain(stripped[7:].strip(), model_rows=model_rows)
        with self._observed():
            query = parse(text)
            executor = QueryExecutor(
                self.table(query.table),
                self.device,
                self.flags,
                fault_retries=self.fault_retries,
                recall_target=self.recall_target,
                shards=self.shards,
            )
            return executor.execute(query, strategy, model_rows)

    def explain(self, text: str, model_rows: int | None = None):
        """Cost out every execution strategy for a query (see
        :func:`repro.engine.explain.explain`)."""
        from repro.engine.explain import explain as explain_query

        with self._observed():
            query = parse(text)
            executor = QueryExecutor(
                self.table(query.table),
                self.device,
                self.flags,
                fault_retries=self.fault_retries,
                recall_target=self.recall_target,
                shards=self.shards,
            )
            return explain_query(executor, text, model_rows)

    def subscribe(
        self,
        k: int,
        chunk_rows: int = 1 << 14,
        window: int | None = None,
        decay: float | None = None,
        mode: str = "auto",
        source: str = "stream",
        seed: int = 0,
    ):
        """Open a continuous top-k subscription over the tweet stream.

        The continuous-query counterpart of :meth:`sql`: instead of one
        answer, the returned :class:`~repro.streaming.Subscription` is
        ticked — each :meth:`~repro.streaming.Subscription.step` pulls
        the next seeded chunk from the unbounded tweet stream
        (:func:`repro.data.stream.stream_chunk`, ranking by ``score``
        with the global row id as the tie-break identity) and emits the
        refreshed top-k.  Exactly one of ``window`` (sliding window in
        rows, a multiple of ``chunk_rows``) or ``decay`` (per-tick
        exponential decay) selects the semantics; ``mode="auto"`` lets
        the cost model pick incremental vs recompute maintenance::

            with session.subscribe(k=10, window=1 << 18) as stream:
                result = stream.step()

        Ticks run under the session's observation/calibration scopes, so
        with ``trace=True`` every tick's kernels land in the tracer.
        """
        from repro.data.stream import stream_chunk
        from repro.streaming import StreamChunk, Subscription

        def chunks():
            index = 0
            while True:
                chunk = stream_chunk(index, chunk_rows, seed)
                yield StreamChunk(values=chunk["score"], gids=chunk["id"])
                index += 1

        return Subscription(
            k,
            chunk_rows,
            window=window,
            decay=decay,
            device=self.device,
            flags=self.flags,
            shards=self.shards,
            mode=mode,
            source=source,
            source_chunks=chunks(),
            observed=self._observed,
        )

    def explain_stream(
        self,
        k: int,
        chunk_rows: int = 1 << 14,
        window: int | None = None,
        decay: float | None = None,
        source: str = "stream",
    ):
        """Cost out the maintenance strategies for a subscription (see
        :func:`repro.streaming.explain_stream`)."""
        from repro.streaming import explain_stream as explain_subscription

        with self._observed():
            return explain_subscription(
                k,
                chunk_rows,
                window=window,
                decay=decay,
                device=self.device,
                flags=self.flags,
                shards=self.shards,
                source=source,
            )

    def serve(self, slo=False, **kwargs):
        """Open a concurrent serving front door over this session.

        Returns a started :class:`~repro.serving.TopKServer` bound to the
        session's device, flags, tables, and (with ``trace=True``) metrics
        registry; use it as a context manager::

            with session.serve(max_pending=256) as server:
                future = server.submit(table="tweets", column="likes_count", k=10)
                answer = future.result()

        Pass ``slo=True`` (or an :class:`~repro.slo.SloPolicy`) to get an
        :class:`~repro.slo.SloTopKServer` instead — deadlines, QoS
        classes, and the degradation ladder on the same front door::

            with session.serve(slo=True) as server:
                future = server.submit(
                    table="tweets", column="likes_count", k=10,
                    qos="best-effort",
                )

        Remaining keyword arguments are forwarded to the server class.
        """
        from repro.serving import TopKServer

        kwargs.setdefault("flags", self.flags)
        if slo:
            from repro.slo import SloPolicy, SloTopKServer

            if isinstance(slo, SloPolicy):
                kwargs.setdefault("policy", slo)
            return SloTopKServer(session=self, **kwargs)
        return TopKServer(session=self, **kwargs)
