"""The incremental operator model: every selection runs tick-by-tick.

This module is the execution contract the engine's interpreter drives.  A
plan node's runtime counterpart is an :class:`IncrementalOperator` with
four verbs:

* :meth:`~IncrementalOperator.open`    — reset state, start a run;
* :meth:`~IncrementalOperator.advance` — absorb one chunk of input rows;
* :meth:`~IncrementalOperator.emit`    — produce the current answer;
* :meth:`~IncrementalOperator.close`   — release state, end the run.

A one-shot query is the degenerate stream — ``open``, one ``advance``
with the full input, one ``emit``, ``close`` — which is exactly what
:func:`run_once` does and what :class:`~repro.engine.executor.QueryExecutor`
runs every ``SELECT ... LIMIT k`` through.  A continuous subscription
(:mod:`repro.streaming`) drives the same contract once per tick, with the
window maintainers implementing ``advance`` as summary absorption instead
of buffering.  The invariant that makes the refactor safe: driving
:class:`SelectionOperator` with a single chunk is *bit-identical* to the
pre-incremental one-shot path, because ``emit`` runs the same fallback
walk over the same array.

:class:`SelectionOperator` is that walk — the single fault-retry /
CPU-oracle wrapper for every selection the engine runs, exact or
approximate, moved here verbatim from the executor so both the one-shot
and streaming paths share it.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import reference_topk
from repro.algorithms.registry import create_for_node
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.errors import FaultError, InvalidParameterError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device
from repro.plan import CPU_FALLBACK, ApproxTopK, Fallback, Merge


class IncrementalOperator:
    """Base class of the incremental execution contract.

    Subclasses override :meth:`advance` and :meth:`emit`; ``open`` and
    ``close`` bracket a run and may be overridden to manage state.  The
    base class enforces the protocol ordering (advance/emit only between
    open and close) so a mis-driven operator fails loudly instead of
    silently emitting stale state.
    """

    def __init__(self) -> None:
        self._opened = False

    def open(self) -> None:
        """Start a run: reset any per-run state."""
        self._opened = True

    def advance(self, chunk: np.ndarray) -> None:
        """Absorb one chunk of input rows."""
        raise NotImplementedError

    def emit(self, k: int, model_n: int | None = None):
        """Produce the current answer over everything advanced so far."""
        raise NotImplementedError

    def close(self) -> None:
        """End the run: release per-run state."""
        self._opened = False

    def _require_open(self, verb: str) -> None:
        if not self._opened:
            raise InvalidParameterError(
                f"{type(self).__name__}.{verb}() outside open()/close()"
            )


class SelectionOperator(IncrementalOperator):
    """The engine's top-k selection as an incremental operator.

    ``advance`` buffers chunks; ``emit`` walks the selection plan's
    :class:`~repro.plan.Fallback` alternatives over the buffered rows —
    each kernel stage gets ``fault_retries`` bounded retries on an
    injected device fault; the terminal ``cpu-heap`` stage is the oracle,
    which has no device to lose and answers exactly.  ``emit`` returns
    the selected indices plus the operator's own trace for stages that
    model one (the approximate and sharded operators, and the adaptive
    radix select) — None means "account with the exact query-level
    trace".

    The functional selection is an implementation detail, not a modeled
    kernel; its launches are re-accounted by the query's own trace, so
    observation is suspended around it.
    """

    def __init__(
        self,
        plan: Fallback,
        device: DeviceSpec | None = None,
        flags: OptimizationFlags = FULL,
        fault_retries: int = 0,
    ):
        super().__init__()
        self.plan = plan
        self.device = device or get_device()
        self.flags = flags
        self.fault_retries = fault_retries
        self._chunks: list[np.ndarray] = []

    def open(self) -> None:
        super().open()
        self._chunks = []

    def advance(self, chunk: np.ndarray) -> None:
        self._require_open("advance")
        self._chunks.append(np.asarray(chunk))

    def close(self) -> None:
        super().close()
        self._chunks = []

    def _buffered(self) -> np.ndarray:
        # One chunk passes through untouched: the one-shot path must hand
        # emit() the caller's exact array, keeping results bit-identical
        # to the pre-incremental executor.
        if len(self._chunks) == 1:
            return self._chunks[0]
        return np.concatenate(self._chunks)

    def emit(
        self, k: int, model_n: int | None = None
    ) -> tuple[np.ndarray, ExecutionTrace | None]:
        self._require_open("emit")
        plan = self.plan
        ranks = self._buffered()
        matched_model = model_n if model_n is not None else len(ranks)
        winner = plan.alternatives[0]
        span_attrs: dict = {"candidates": len(ranks)}
        if isinstance(winner, ApproxTopK):
            span_name = "phase:functional-approx-topk"
            span_attrs["buckets"] = winner.buckets
        elif isinstance(winner, Merge):
            span_name = "phase:functional-sharded-topk"
            span_attrs["shards"] = len(winner.inputs)
        else:
            span_name = "phase:functional-topk"
        retries = 0
        oracle = False
        outcome: tuple[np.ndarray, ExecutionTrace | None] | None = None
        with obs.span(span_name, category="phase", **span_attrs):
            with obs.suspended():
                for node in plan.alternatives:
                    if getattr(node, "algorithm", "") == CPU_FALLBACK:
                        oracle = True
                        with faults.suspended():
                            _, indices = reference_topk(ranks, k)
                        outcome = (indices, None)
                        break
                    # Stages that model their own kernels (the approximate
                    # and sharded operators, and the adaptive radix select
                    # whose pass schedule only the run itself knows) hand
                    # their trace up; bitonic stages are re-accounted by
                    # the query-level pipeline trace.
                    own_trace = (
                        isinstance(node, (ApproxTopK, Merge))
                        or getattr(node, "algorithm", "") == "radik"
                    )
                    for _attempt in range(self.fault_retries + 1):
                        try:
                            result = create_for_node(
                                node, self.device, flags=self.flags
                            ).run(
                                ranks,
                                k,
                                model_n=matched_model if own_trace else None,
                            )
                            outcome = (
                                result.indices,
                                result.trace if own_trace else None,
                            )
                            break
                        except FaultError:
                            retries += 1
                    if outcome is not None:
                        break
        assert outcome is not None
        registry = obs.active_metrics()
        if registry is not None:
            if retries:
                registry.counter("engine.fault_retries").inc(retries)
            if oracle:
                registry.counter("engine.cpu_fallbacks").inc()
        return outcome


class TickInterpreter:
    """Drives an :class:`IncrementalOperator` chunk by chunk.

    The engine's execution loop, factored out of the one-shot executor:
    each :meth:`tick` advances the operator with one chunk and emits the
    current answer.  The one-shot path is :func:`run_once` — a stream of
    exactly one chunk; the streaming path (:mod:`repro.streaming`) calls
    :meth:`tick` once per arriving chunk, indefinitely.
    """

    def __init__(self, operator: IncrementalOperator):
        self.operator = operator
        self.ticks = 0
        self._open = False

    def __enter__(self) -> "TickInterpreter":
        self.operator.open()
        self._open = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if self._open:
            self.operator.close()
            self._open = False
        return False

    def tick(self, chunk: np.ndarray, k: int, model_n: int | None = None):
        """Advance one chunk and emit the current answer."""
        if not self._open:
            raise InvalidParameterError(
                "TickInterpreter.tick() outside its context"
            )
        self.operator.advance(chunk)
        self.ticks += 1
        return self.operator.emit(k, model_n)


def run_once(
    operator: IncrementalOperator,
    data: np.ndarray,
    k: int,
    model_n: int | None = None,
):
    """Run a one-shot query through the incremental contract.

    A stream of exactly one chunk: open, advance the full input, emit,
    close.  Every one-shot selection the engine executes goes through
    here, so batch queries and continuous subscriptions exercise the
    same operator code path.
    """
    with TickInterpreter(operator) as interpreter:
        return interpreter.tick(data, k, model_n)
