"""Columnar tables for the query engine.

A :class:`Table` stores one numpy array per column, the layout a GPU
database keeps resident in device memory.  String columns are
dictionary-encoded at ingestion (int32 codes plus a value dictionary),
which is both what MapD does and what makes string predicates evaluable as
integer comparisons on the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError


@dataclass
class Table:
    """An immutable-by-convention columnar table."""

    name: str
    columns: dict[str, np.ndarray]
    dictionaries: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.columns:
            raise InvalidParameterError("a table needs at least one column")
        lengths = {len(column) for column in self.columns.values()}
        if len(lengths) != 1:
            raise InvalidParameterError(
                f"columns of table {self.name!r} have unequal lengths: {lengths}"
            )

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def num_rows(self) -> int:
        return len(self)

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """Raw column data (dictionary codes for string columns)."""
        try:
            return self.columns[name]
        except KeyError:
            known = ", ".join(self.column_names)
            raise InvalidParameterError(
                f"table {self.name!r} has no column {name!r}; columns: {known}"
            ) from None

    def is_string_column(self, name: str) -> bool:
        return name in self.dictionaries

    def encode_string(self, column: str, value: str) -> int:
        """Dictionary code of ``value`` in ``column`` (-1 if absent)."""
        if column not in self.dictionaries:
            raise InvalidParameterError(f"column {column!r} is not a string column")
        try:
            return self.dictionaries[column].index(value)
        except ValueError:
            return -1

    def decode_strings(self, column: str, codes: np.ndarray) -> list[str]:
        """Materialize string values from dictionary codes."""
        dictionary = self.dictionaries[column]
        return [dictionary[int(code)] if code >= 0 else "" for code in codes]

    def column_bytes(self, name: str) -> int:
        """Bytes one full scan of the column reads."""
        return self.column(name).nbytes

    def row_bytes(self, names: list[str] | None = None) -> int:
        """Bytes per row across the named (default: all) columns."""
        names = names or self.column_names
        return sum(self.column(name).dtype.itemsize for name in names)


def make_table(name: str, data: dict[str, object]) -> Table:
    """Build a table, dictionary-encoding any string columns.

    Accepts numpy arrays or Python sequences; sequences of ``str`` become
    dictionary-encoded int32 code columns.
    """
    columns: dict[str, np.ndarray] = {}
    dictionaries: dict[str, list[str]] = {}
    for column_name, values in data.items():
        array = np.asarray(values)
        if array.dtype.kind in ("U", "O"):
            uniques, codes = np.unique(array.astype(str), return_inverse=True)
            columns[column_name] = codes.astype(np.int32)
            dictionaries[column_name] = [str(value) for value in uniques]
        else:
            columns[column_name] = array
    return Table(name=name, columns=columns, dictionaries=dictionaries)
