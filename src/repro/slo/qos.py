"""Tenant QoS classes and the SLO serving policy.

A serving tier that promises one latency number to everyone promises the
wrong number to everyone: interactive dashboards need sub-deadline
answers or nothing, while batch analytics will happily take a late or
slightly-approximate answer over a rejection.  The SLO layer therefore
tags every query with a :class:`QoSClass` that fixes three contracts:

* a **relative deadline** in simulated milliseconds — added to the
  submit timestamp to form the query's absolute deadline;
* a **queue budget** — per-class admission bound, so a flood of
  best-effort traffic cannot exhaust the shared queue ahead of gold;
* **degradability/sheddability** — which rungs of the degradation ladder
  (see ``docs/serving.md``) the class consents to.

:class:`SloPolicy` bundles the class table with the ladder's tuning: the
degraded recall target (rung 1), the EDF scheduler's service-time
estimator, and the circuit-breaker policy (rung 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.resilience.breaker import BreakerPolicy


@dataclass(frozen=True)
class QoSClass:
    """One tenant class's serving contract."""

    name: str
    #: Tie-break after deadline order: lower is more important.
    priority: int
    #: Relative deadline, in simulated milliseconds from submission.
    deadline_ms: float
    #: Maximum queries of this class queued at once; submissions past the
    #: budget are rejected with a typed ResourceExhaustedError.
    queue_budget: int
    #: May the scheduler lower this class's recall target under pressure?
    degradable: bool
    #: May the scheduler drop this class's queries (deadline shed, breaker
    #: shed) instead of running them late?
    sheddable: bool

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise InvalidParameterError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.queue_budget < 1:
            raise InvalidParameterError(
                f"queue_budget must be at least 1, got {self.queue_budget}"
            )


#: The default three-tier table.  Deadlines are calibrated to the bench
#: workload (exact execution of one n≈40–65k query simulates ≈0.05 ms):
#: gold gets headroom for ~8 queued exact queries, best-effort ~30.
GOLD = QoSClass(
    "gold", priority=0, deadline_ms=0.45, queue_budget=64,
    degradable=False, sheddable=False,
)
STANDARD = QoSClass(
    "standard", priority=1, deadline_ms=0.90, queue_budget=48,
    degradable=True, sheddable=False,
)
BEST_EFFORT = QoSClass(
    "best-effort", priority=2, deadline_ms=1.80, queue_budget=32,
    degradable=True, sheddable=True,
)

DEFAULT_CLASSES = (GOLD, STANDARD, BEST_EFFORT)


@dataclass(frozen=True)
class SloPolicy:
    """Everything the SLO scheduler needs to make its decisions."""

    classes: tuple[QoSClass, ...] = DEFAULT_CLASSES
    #: Rung 1: the recall target degraded queries are re-planned at.  The
    #: planner only routes to the approximate operator when a feasible
    #: config exists *and* beats every exact algorithm, so lowering the
    #: target can never make a plan slower — only cheaper.
    degraded_recall: float = 0.99
    #: EDF service-time estimator: EWMA smoothing factor and its starting
    #: estimate (simulated ms per query) before any observation.
    ewma_alpha: float = 0.2
    initial_service_ms: float = 0.05
    #: Rung 3: when/how the device circuit breaker trips.
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)

    def __post_init__(self) -> None:
        if not self.classes:
            raise InvalidParameterError("an SloPolicy needs at least one class")
        names = [qos.name for qos in self.classes]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate QoS class names: {names}")
        if not 0.0 < self.degraded_recall <= 1.0:
            raise InvalidParameterError(
                f"degraded_recall must be in (0, 1], got {self.degraded_recall}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise InvalidParameterError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.initial_service_ms <= 0:
            raise InvalidParameterError(
                f"initial_service_ms must be positive, "
                f"got {self.initial_service_ms}"
            )

    def class_named(self, name: str) -> QoSClass:
        for qos in self.classes:
            if qos.name == name:
                return qos
        raise InvalidParameterError(
            f"unknown QoS class {name!r}; "
            f"known: {[qos.name for qos in self.classes]}"
        )


DEFAULT_POLICY = SloPolicy()
