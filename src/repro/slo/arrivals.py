"""Seeded open-loop workload generation for the SLO serving layer.

Closed-loop load (submit, wait, submit) can never overload a server —
the client self-throttles, which is exactly the regime an SLO study must
escape.  The generators here are **open-loop**: arrival timestamps are
drawn from a stochastic process at a configured offered rate and queries
arrive at those simulated instants whether or not the server has caught
up, so queueing delay, deadline misses, and shedding emerge naturally.

Two arrival processes:

* :func:`poisson_arrivals` — memoryless: i.i.d. exponential
  inter-arrival gaps at ``rate_per_ms``;
* :func:`bursty_arrivals` — a two-state Markov-modulated Poisson
  process: a calm state and a burst state whose rate is
  ``burst_factor``× higher, with state runs of geometric length.  The
  state rates are normalized so the *long-run* offered rate still equals
  ``rate_per_ms`` — bursty and Poisson traces at the same nominal rate
  are comparable, but the bursty one concentrates its pain.

The queries themselves replay the paper's serving scenario over the
synthetic twitter corpus: each query ranks a contiguous window of the
``retweet_count`` column (``ORDER BY retweet_count DESC LIMIT k``), with
window *offsets* skewed toward the head of the table (recent/hot tweets,
mirroring the corpus's Zipf-shaped popularity) and a **distinct window
length per query** — real tenants rarely share exact row counts, which
keeps the stream honest about cross-query batching: none of it fuses, so
capacity gains must come from scheduling, not batching luck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.twitter import generate_tweets
from repro.errors import InvalidParameterError

#: Skew exponent for window offsets: offset = head * u**OFFSET_SKEW with
#: u uniform, concentrating windows near the head of the table.
OFFSET_SKEW = 3.0

#: QoS class mix of the generated stream (name -> probability).
DEFAULT_CLASS_MIX = (
    ("gold", 0.2),
    ("standard", 0.5),
    ("best-effort", 0.3),
)


def poisson_arrivals(
    rate_per_ms: float, count: int, seed: int = 0
) -> np.ndarray:
    """Arrival timestamps (simulated ms) of a Poisson process."""
    if rate_per_ms <= 0:
        raise InvalidParameterError(
            f"rate_per_ms must be positive, got {rate_per_ms}"
        )
    if count < 1:
        raise InvalidParameterError(f"count must be at least 1, got {count}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_ms, size=count)
    return np.cumsum(gaps)


def bursty_arrivals(
    rate_per_ms: float,
    count: int,
    seed: int = 0,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    mean_burst_run: int = 8,
) -> np.ndarray:
    """Arrival timestamps of a two-state Markov-modulated process.

    A ``burst_fraction`` share of queries (in the long run) arrive in the
    burst state at ``burst_factor * rate``; the calm-state rate is solved
    so the overall mean offered rate equals ``rate_per_ms``.  State runs
    have geometric length with the burst run averaging
    ``mean_burst_run`` queries.
    """
    if rate_per_ms <= 0:
        raise InvalidParameterError(
            f"rate_per_ms must be positive, got {rate_per_ms}"
        )
    if count < 1:
        raise InvalidParameterError(f"count must be at least 1, got {count}")
    if burst_factor <= 1.0:
        raise InvalidParameterError(
            f"burst_factor must exceed 1, got {burst_factor}"
        )
    if not 0.0 < burst_fraction < 1.0:
        raise InvalidParameterError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    if burst_fraction * burst_factor >= burst_factor:
        # Unreachable with the guards above; kept for clarity of the math.
        raise InvalidParameterError("burst parameters are infeasible")
    # Solve the calm rate from the harmonic mean of per-query gap costs:
    #   f/(B·r) + (1-f)/r_calm = 1/r   =>   r_calm = (1-f)·B·r / (B-f)
    calm_rate = (
        (1.0 - burst_fraction) * burst_factor * rate_per_ms
        / (burst_factor - burst_fraction)
    )
    burst_rate = burst_factor * rate_per_ms
    # Two-state chain over queries with stationary burst share f and mean
    # burst run length R: exit prob 1/R, entry prob f/((1-f)·R).
    exit_prob = 1.0 / mean_burst_run
    entry_prob = burst_fraction / ((1.0 - burst_fraction) * mean_burst_run)
    rng = np.random.default_rng(seed)
    gaps = np.empty(count)
    in_burst = rng.random() < burst_fraction
    for index in range(count):
        rate = burst_rate if in_burst else calm_rate
        gaps[index] = rng.exponential(1.0 / rate)
        flip = rng.random()
        in_burst = (
            flip >= exit_prob if in_burst else flip < entry_prob
        )
    return np.cumsum(gaps)


ARRIVAL_PROCESSES = ("poisson", "bursty")


@dataclass(frozen=True)
class SloQuery:
    """One query of an open-loop trace."""

    index: int
    #: Simulated-ms timestamp at which the query arrives at the server.
    arrival_ms: float
    #: Window of the base column this query ranks.
    offset: int
    n: int
    k: int
    #: QoS class name (resolved against the policy at serving time).
    qos: str


@dataclass
class OpenLoopWorkload:
    """A seeded open-loop query stream over the twitter corpus.

    ``generate()`` materializes the same *queries* (windows, ks, QoS
    tags) for every offered rate — only the arrival timestamps change
    with ``rate_per_ms`` — so a load sweep compares identical work under
    different pressure, and two schedulers at the same rate see the
    byte-identical trace.
    """

    queries: int = 120
    rate_per_ms: float = 10.0
    process: str = "poisson"
    seed: int = 0
    #: Rows of the generated tweets table queries take windows of.
    rows: int = 1 << 17
    #: Window-length range; every query gets a *distinct* length.
    n_min: int = 40_960
    n_max: int = 65_536
    k: int = 64
    column: str = "retweet_count"
    class_mix: tuple = DEFAULT_CLASS_MIX
    burst_factor: float = 4.0
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise InvalidParameterError(
                f"workload needs at least 1 query, got {self.queries}"
            )
        if self.process not in ARRIVAL_PROCESSES:
            raise InvalidParameterError(
                f"unknown arrival process {self.process!r}; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        if not 0 < self.n_min <= self.n_max <= self.rows:
            raise InvalidParameterError(
                f"need 0 < n_min <= n_max <= rows, got "
                f"{self.n_min}/{self.n_max}/{self.rows}"
            )
        if self.n_max - self.n_min < self.queries:
            raise InvalidParameterError(
                f"window range [{self.n_min}, {self.n_max}) is too narrow "
                f"for {self.queries} distinct window lengths"
            )
        if self.k < 1 or self.k > self.n_min:
            raise InvalidParameterError(
                f"invalid k = {self.k} for n_min = {self.n_min}"
            )

    def arrivals(self) -> np.ndarray:
        if self.process == "bursty":
            return bursty_arrivals(
                self.rate_per_ms,
                self.queries,
                seed=self.seed,
                burst_factor=self.burst_factor,
                burst_fraction=self.burst_fraction,
            )
        return poisson_arrivals(self.rate_per_ms, self.queries, seed=self.seed)

    def generate(self) -> tuple[np.ndarray, list[SloQuery]]:
        """Materialize ``(base_column, trace)``.

        The base column is generated once; query payloads are views
        ``column[offset : offset + n]`` — the serving layers copy what
        they must, mirroring how a real tier serves windows of a shared
        registered table rather than per-query payload uploads.
        """
        column = generate_tweets(self.rows, seed=self.seed).column(self.column)
        # Shapes/QoS use a rate-independent seed stream so every rate of a
        # sweep ranks the same windows.
        rng = np.random.default_rng((self.seed, 0x51_0))
        lengths = rng.choice(
            np.arange(self.n_min, self.n_max), size=self.queries, replace=False
        )
        names = [name for name, _ in self.class_mix]
        weights = np.asarray([weight for _, weight in self.class_mix])
        classes = rng.choice(
            len(names), size=self.queries, p=weights / weights.sum()
        )
        offsets = np.floor(
            (self.rows - lengths) * rng.random(self.queries) ** OFFSET_SKEW
        ).astype(np.int64)
        arrival_times = self.arrivals()
        trace = [
            SloQuery(
                index=index,
                arrival_ms=float(arrival_times[index]),
                offset=int(offsets[index]),
                n=int(lengths[index]),
                k=self.k,
                qos=names[classes[index]],
            )
            for index in range(self.queries)
        ]
        return column, trace

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "rate_per_ms": self.rate_per_ms,
            "process": self.process,
            "seed": self.seed,
            "rows": self.rows,
            "n_min": self.n_min,
            "n_max": self.n_max,
            "k": self.k,
            "column": self.column,
        }
