"""SLO-aware thread server: deadlines and QoS on the production front door.

:class:`SloTopKServer` layers the :mod:`repro.slo` decision core onto
the thread-based :class:`~repro.serving.TopKServer`:

* :meth:`submit` takes ``qos=`` and ``deadline_ms=``; per-class queue
  budgets are enforced at admission (typed
  :class:`~repro.errors.ResourceExhaustedError`) on top of the base
  server's global bound;
* each dispatch cycle runs the backlog through
  :class:`~repro.slo.scheduler.SloScheduler` — EDF ordering, overdue
  shedding (futures fail with
  :class:`~repro.errors.DeadlineExceededError`), and recall degradation
  under projected overrun;
* a :class:`~repro.resilience.CircuitBreaker` watches the batcher's
  fallback counters: repeated device faults trip it open, after which
  sheddable queries fail fast until a cooldown (measured on the server's
  simulated clock) and a successful half-open probe cycle close it.

Deadlines are *simulated-time* deadlines against the server's simulated
clock (accumulated execution cost), matching the deterministic
simulator; wall-clock queue wait is still recorded per query.  For
repeatable overload experiments prefer :func:`repro.slo.simulate` —
thread timing makes drained-batch boundaries, and therefore decision
logs, machine-dependent here.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import numpy as np

from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.resilience.breaker import CircuitBreaker
from repro.serving.batcher import QueryOutcome
from repro.serving.scheduler import TopKServer
from repro.slo.qos import DEFAULT_POLICY, SloPolicy
from repro.slo.scheduler import SloScheduler


class SloTopKServer(TopKServer):
    """A :class:`TopKServer` with deadlines, QoS classes, and the ladder."""

    def __init__(
        self,
        policy: SloPolicy = DEFAULT_POLICY,
        breaker: CircuitBreaker | None = None,
        enable_breaker: bool = True,
        auto_start: bool = True,
        **kwargs,
    ):
        super().__init__(auto_start=False, **kwargs)
        self.policy = policy
        self.slo_scheduler = SloScheduler(
            policy,
            device=self.device,
            profile=self.batcher.profile,
            metrics=self.metrics,
        )
        if breaker is not None:
            self.breaker: CircuitBreaker | None = breaker
        elif enable_breaker:
            self.breaker = CircuitBreaker(
                policy.breaker, name=self.device.name, metrics=self.metrics
            )
        else:
            self.breaker = None
        if auto_start:
            self.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        data: np.ndarray | None = None,
        k: int = 1,
        table: str | None = None,
        column: str | None = None,
        recall_target: float = 1.0,
        qos: str = "standard",
        deadline_ms: float | None = None,
    ) -> Future:
        """Enqueue one query under an SLO contract.

        ``deadline_ms`` is relative (simulated ms from now); omitted, the
        QoS class's default applies.  Raises a typed
        :class:`~repro.errors.ResourceExhaustedError` when either the
        global bound or the class's queue budget is exhausted.
        """
        qos_class = self.policy.class_named(qos)
        request = self._make_request(data, k, table, column, recall_target)
        relative = deadline_ms if deadline_ms is not None else qos_class.deadline_ms
        future: Future = Future()
        request.future = future
        request.qos = qos_class.name
        request.submitted_wall = time.perf_counter()
        request.submitted_sim_ms = self._sim_now_ms()
        request.deadline_ms = request.submitted_sim_ms + relative
        with self._lock:
            if self._closed:
                raise InvalidParameterError("cannot submit to a closed server")
            if len(self._pending) + self._in_flight >= self.max_pending:
                self.metrics.counter("serving.rejected").inc()
                raise ResourceExhaustedError(
                    f"serving queue is full ({self.max_pending} queries "
                    f"pending); shedding load"
                )
            queued_in_class = sum(
                1
                for pending in self._pending
                if pending.qos == qos_class.name
            )
            rejection = self.slo_scheduler.admit(
                qos_class.name, queued_in_class
            )
            if rejection is not None:
                self.metrics.counter("serving.rejected").inc()
                raise self.slo_scheduler.rejection_error(rejection)
            self._pending.append(request)
            self.metrics.counter("serving.submitted").inc()
            self.metrics.gauge("serving.queue_depth").set(len(self._pending))
            self._work_ready.notify()
        return future

    # -- dispatch hooks ----------------------------------------------------

    def _prepare(self, drained: list) -> list:
        now_ms = self._sim_now_ms()
        if self.breaker is not None and not self.breaker.allow(now_ms):
            drained, shed = self.slo_scheduler.breaker_shed(drained)
            self._fail_shed(shed)
        to_run, shed = self.slo_scheduler.prepare(drained, now_ms)
        self._fail_shed(shed)
        for request in to_run:
            if not request.degraded:
                self.slo_scheduler.note_run(request)
        return to_run

    def _fail_shed(self, shed: list) -> None:
        for request, decision, error in shed:
            self.metrics.counter("serving.shed", qos=request.qos).inc()
            self.metrics.counter("serving.failed").inc()
            if request.future is not None:
                request.future.set_exception(error)

    def _run_group(self, group) -> None:
        fallbacks_before = (
            self.batcher.fallback_queries + self.batcher.batch_fallbacks
        )
        sim_before = self.batcher.simulated_ms_total
        super()._run_group(group)
        delta_ms = self.batcher.simulated_ms_total - sim_before
        for _ in group:
            self.slo_scheduler.observe_service(delta_ms / len(group))
        if self.breaker is not None:
            now_ms = self._sim_now_ms()
            faulted = (
                self.batcher.fallback_queries + self.batcher.batch_fallbacks
                > fallbacks_before
            )
            if faulted:
                self.breaker.record_failure(now_ms)
            else:
                self.breaker.record_success(now_ms)
        # Deadline accounting: a query that *finished* late still counts
        # against goodput even though its future resolved successfully.
        now_ms = self._sim_now_ms()
        for request in group:
            if request.deadline_ms is None or request.future is None:
                continue
            if not request.future.done():
                continue
            if request.future.exception() is not None:
                continue
            outcome = request.future.result()
            if isinstance(outcome, QueryOutcome):
                met = now_ms <= request.deadline_ms
                self.metrics.counter(
                    "serving.deadline_met" if met else "serving.deadline_missed",
                    qos=request.qos or "none",
                ).inc()

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        stats = super().stats()
        stats["slo"] = {
            "ewma_service_ms": self.slo_scheduler.ewma_service_ms,
            "decisions": len(self.slo_scheduler.decisions),
            "breaker": self.breaker.stats() if self.breaker else None,
        }
        return stats
