"""Deadline-aware scheduling decisions: EDF, shedding, degradation.

This module is the *decision core* of the SLO layer, deliberately split
from execution: :class:`SloScheduler` looks at a drained backlog and a
simulated clock and says, per query, which rung of the degradation
ladder applies — run exact, run degraded, or shed — recording every
choice as a :class:`Decision`.  Both drivers share it (the
discrete-event :mod:`~repro.slo.simulator` and the threaded
:class:`~repro.slo.server.SloTopKServer`), which is what makes the
overload tests meaningful: identical traces produce identical decision
logs because the logic literally is the same object.

The policy implemented:

1. **Order** the backlog earliest-deadline-first (ties broken by class
   priority, then arrival order — Python's stable sort keeps FIFO among
   equals).
2. **Shed** sheddable queries that are already past their deadline — a
   late best-effort answer has zero goodput value but still costs
   service time the queries behind it need.
3. **Degrade** degradable queries whose projected finish (the EDF
   position times an EWMA service-time estimate) would overrun their
   deadline, by lowering their recall target to the policy's degraded
   level — *when* the recall model finds a genuinely approximate
   configuration for the shape (otherwise degrading is a no-op and the
   query stays exact).

:class:`FifoScheduler` is the control arm: same interface, no reordering
and no ladder, so benches can attribute goodput differences to the
policy rather than to incidental code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.approx.degrade import degraded_config
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import DeadlineExceededError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device
from repro.observability.metrics import MetricsRegistry
from repro.slo.qos import DEFAULT_POLICY, SloPolicy

#: Decision actions (the ladder, plus admission).
RUN = "run"
DEGRADE = "degrade"
SHED_DEADLINE = "shed-deadline"
SHED_BREAKER = "shed-breaker"
REJECT = "reject"


@dataclass(frozen=True)
class Decision:
    """One scheduling choice, identified by the query's shape.

    Window lengths are unique per query in the SLO workload, so ``n``
    doubles as a stable query identifier when diffing decision logs
    across runs.
    """

    action: str
    qos: str
    n: int
    k: int
    reason: str = ""


class SloScheduler:
    """EDF admission + the degradation ladder over one drained backlog."""

    #: Interface tag benches put in reports.
    name = "slo"

    def __init__(
        self,
        policy: SloPolicy = DEFAULT_POLICY,
        device: DeviceSpec | None = None,
        profile: WorkloadProfile = UNIFORM_FLOAT,
        metrics: MetricsRegistry | None = None,
    ):
        self.policy = policy
        self.device = device or get_device()
        self.profile = profile
        self.metrics = metrics
        #: EWMA estimate of simulated ms per served query — the quantity
        #: EDF projects queue positions into finish times with.
        self.ewma_service_ms = policy.initial_service_ms
        #: Every decision ever made, in order (the determinism artifact).
        self.decisions: list[Decision] = []

    # -- admission (submit-time) ------------------------------------------

    def admit(self, qos_name: str, queued_in_class: int) -> Decision | None:
        """Per-class queue-budget check at submit time.

        Returns a REJECT decision when the class is over budget (the
        caller raises the typed error), None when admitted — admitted
        queries get their RUN/DEGRADE/SHED decision at dispatch.
        """
        qos = self.policy.class_named(qos_name)
        if queued_in_class >= qos.queue_budget:
            decision = Decision(
                REJECT,
                qos.name,
                n=0,
                k=0,
                reason=f"class queue budget {qos.queue_budget} exhausted",
            )
            self._record(decision)
            return decision
        return None

    def rejection_error(self, decision: Decision) -> ResourceExhaustedError:
        return ResourceExhaustedError(
            f"{decision.qos} admission rejected: {decision.reason}"
        )

    # -- dispatch-time ladder ---------------------------------------------

    def prepare(self, backlog: list, now_ms: float) -> tuple[list, list]:
        """Order one drained backlog and apply the ladder.

        ``backlog`` holds :class:`~repro.serving.batcher.ServingRequest`
        objects with ``deadline_ms``/``qos`` set.  Returns
        ``(to_run, shed)``: the EDF-ordered requests to execute (some
        possibly mutated to a degraded recall target) and a list of
        ``(request, decision, error)`` triples the caller must fail.
        """
        ordered = sorted(
            backlog,
            key=lambda request: (
                request.deadline_ms
                if request.deadline_ms is not None
                else float("inf"),
                self.policy.class_named(request.qos).priority,
            ),
        )
        to_run: list = []
        shed: list = []
        projected_ms = now_ms
        for request in ordered:
            qos = self.policy.class_named(request.qos)
            deadline = request.deadline_ms
            if (
                qos.sheddable
                and deadline is not None
                and now_ms > deadline
            ):
                decision = self._decision(
                    SHED_DEADLINE,
                    request,
                    reason=f"overdue by {now_ms - deadline:.3f} ms at dispatch",
                )
                shed.append(
                    (
                        request,
                        decision,
                        DeadlineExceededError(
                            f"{qos.name} query missed its deadline "
                            f"({deadline:.3f} ms) before dispatch "
                            f"at {now_ms:.3f} ms; shedding"
                        ),
                    )
                )
                continue
            if (
                qos.degradable
                and deadline is not None
                and request.recall_target >= 1.0
                and projected_ms + self.ewma_service_ms > deadline
            ):
                choice = degraded_config(
                    len(request.data),
                    request.k,
                    self.policy.degraded_recall,
                    dtype=request.data.dtype,
                    device=self.device,
                    profile=self.profile,
                )
                if choice is not None:
                    request.recall_target = self.policy.degraded_recall
                    request.degraded = True
                    request.expected_recall = choice.expected_recall
                    self._decision(
                        DEGRADE,
                        request,
                        reason=(
                            f"projected finish past deadline; serving at "
                            f"expected recall {choice.expected_recall:.4f}"
                        ),
                    )
            to_run.append(request)
            projected_ms += self.ewma_service_ms
        return to_run, shed

    def note_run(self, request) -> None:
        """Log the exact-path execution of a request.

        Callers invoke this once, at execution time, for requests the
        ladder never touched — :meth:`prepare` may see the same queued
        request many times across dispatch cycles, so it only logs
        ladder *events* (degrade/shed), keeping the decision log at one
        entry per query.
        """
        self._decision(RUN, request)

    def breaker_shed(self, backlog: list) -> tuple[list, list]:
        """Rung 3 support: with the device breaker open, fail sheddable
        queries fast instead of queueing them behind a dead device.

        Returns ``(keep, shed)`` with the same triple shape as
        :meth:`prepare`'s shed list.
        """
        keep: list = []
        shed: list = []
        for request in backlog:
            qos = self.policy.class_named(request.qos)
            if qos.sheddable:
                decision = self._decision(
                    SHED_BREAKER, request, reason="device circuit breaker open"
                )
                shed.append(
                    (
                        request,
                        decision,
                        ResourceExhaustedError(
                            f"{qos.name} query shed: device circuit breaker "
                            f"is open"
                        ),
                    )
                )
            else:
                keep.append(request)
        return keep, shed

    # -- feedback ----------------------------------------------------------

    def observe_service(self, simulated_ms: float) -> None:
        """Fold one served query's simulated cost into the EWMA."""
        alpha = self.policy.ewma_alpha
        self.ewma_service_ms = (
            alpha * float(simulated_ms) + (1.0 - alpha) * self.ewma_service_ms
        )

    # -- bookkeeping -------------------------------------------------------

    def _decision(self, action: str, request, reason: str = "") -> Decision:
        decision = Decision(
            action,
            request.qos,
            n=len(request.data),
            k=request.k,
            reason=reason,
        )
        self._record(decision)
        return decision

    def _record(self, decision: Decision) -> Decision:
        self.decisions.append(decision)
        if self.metrics is not None:
            self.metrics.counter(
                "slo.decisions", action=decision.action, qos=decision.qos
            ).inc()
        return decision


class FifoScheduler(SloScheduler):
    """The control arm: arrival order, no shedding, no degradation.

    Per-class budgets are also disabled — FIFO models the pre-SLO server,
    whose only defense is the global ``max_pending`` bound.
    """

    name = "fifo"

    def admit(self, qos_name: str, queued_in_class: int) -> Decision | None:
        self.policy.class_named(qos_name)  # still validate the tag
        return None

    def prepare(self, backlog: list, now_ms: float) -> tuple[list, list]:
        return list(backlog), []
