"""Deterministic open-loop serving simulation in simulated time.

The thread-based :class:`~repro.serving.TopKServer` is the production
front door, but threads make overload experiments unrepeatable: OS
scheduling decides what is in each drained batch.  The simulator replays
the same serving pipeline — plan cache, cross-query batcher, scheduler
decision core, circuit breaker — as a **discrete-event loop over
simulated milliseconds**: queries arrive at their trace timestamps, the
clock advances only by executed kernels' simulated cost, and every
admission/degradation/shedding choice lands in a decision log.  Same
seed, same trace ⇒ bit-identical answers, decisions, and latency
digests; that is the property the overload test suite and the
``slo-smoke`` CI gate pin down.

Dispatch is per-query EDF: every cycle the scheduler re-evaluates the
whole queue against the current clock (shedding newly-overdue work,
degrading queries whose projection slipped), then exactly one query —
the earliest-deadline survivor — executes and the clock advances by its
simulated cost.  Re-evaluating between executions is what lets the
ladder react *during* a burst instead of after it; the threaded server
approximates the same policy at drained-batch granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.recall import measured_recall
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device
from repro.observability.metrics import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.serving.batcher import CrossQueryBatcher, ServingRequest
from repro.serving.plan_cache import PlanCache
from repro.slo.arrivals import OpenLoopWorkload, SloQuery
from repro.slo.qos import DEFAULT_POLICY
from repro.slo.scheduler import (
    DEGRADE,
    REJECT,
    RUN,
    Decision,
    SloScheduler,
)

#: Global in-flight bound (the pre-SLO server's only defense, kept for
#: both arms so FIFO vs SLO differences come from policy alone).
DEFAULT_MAX_PENDING = 512


@dataclass
class ServedAnswer:
    """The fate of one trace query."""

    index: int
    qos: str
    n: int
    k: int
    arrival_ms: float
    deadline_ms: float
    #: Final disposition: run / degrade / shed-* / reject.
    action: str
    #: Deadline met: the query finished at or before its deadline.
    ok: bool
    start_ms: float | None = None
    finish_ms: float | None = None
    simulated_ms: float = 0.0
    error: str | None = None
    degraded: bool = False
    #: Advertised recall floor (the degraded config's analytic expected
    #: recall; 1.0 for exact answers).
    expected_recall: float = 1.0
    #: Empirical recall vs. the exact top-k of the same window — filled
    #: for degraded answers so the SLO contract is *verified*, not
    #: asserted.
    measured_recall: float | None = None
    values: np.ndarray | None = field(default=None, repr=False)
    indices: np.ndarray | None = field(default=None, repr=False)

    @property
    def latency_ms(self) -> float | None:
        if self.finish_ms is None:
            return None
        return self.finish_ms - self.arrival_ms

    @property
    def queue_wait_ms(self) -> float | None:
        if self.start_ms is None:
            return None
        return self.start_ms - self.arrival_ms


@dataclass
class SimulationResult:
    """One (trace, scheduler) run's complete accounting."""

    scheduler: str
    workload: dict
    answers: list[ServedAnswer]
    decisions: list[Decision]
    metrics: MetricsRegistry
    makespan_ms: float
    breaker: dict | None = None

    @property
    def offered(self) -> int:
        return len(self.answers)

    @property
    def met_deadline(self) -> int:
        return sum(1 for answer in self.answers if answer.ok)

    @property
    def goodput(self) -> float:
        """Fraction of *offered* queries answered within their deadline —
        the quantity an open-loop SLO study optimizes (late, shed, and
        rejected queries all count against it equally)."""
        return self.met_deadline / self.offered if self.offered else 0.0

    @property
    def degraded_count(self) -> int:
        return sum(1 for answer in self.answers if answer.degraded)

    @property
    def shed_count(self) -> int:
        return sum(
            1 for answer in self.answers if answer.action.startswith("shed")
        )

    @property
    def rejected_count(self) -> int:
        return sum(1 for answer in self.answers if answer.action == REJECT)

    def class_latency(self, qos: str) -> dict:
        """Exact per-class latency digest (simulated ms, completed only)."""
        summary = self.metrics.summary("slo.latency_ms", qos=qos)
        return summary.snapshot()

    def mean_measured_recall(self) -> float | None:
        """Mean empirical recall over degraded answers (None if none)."""
        measured = [
            answer.measured_recall
            for answer in self.answers
            if answer.degraded and answer.measured_recall is not None
        ]
        if not measured:
            return None
        return float(np.mean(measured))

    def min_advertised_recall(self) -> float | None:
        floors = [
            answer.expected_recall for answer in self.answers if answer.degraded
        ]
        return min(floors) if floors else None

    def to_dict(self) -> dict:
        classes = sorted({answer.qos for answer in self.answers})
        return {
            "scheduler": self.scheduler,
            "workload": dict(self.workload),
            "offered": self.offered,
            "met_deadline": self.met_deadline,
            "goodput": self.goodput,
            "degraded": self.degraded_count,
            "shed": self.shed_count,
            "rejected": self.rejected_count,
            "makespan_ms": self.makespan_ms,
            "mean_measured_recall": self.mean_measured_recall(),
            "min_advertised_recall": self.min_advertised_recall(),
            "classes": {qos: self.class_latency(qos) for qos in classes},
            "breaker": self.breaker,
        }


def _top_k_reference(window: np.ndarray, k: int) -> np.ndarray:
    """Exact top-k value multiset of a window (order irrelevant)."""
    return np.partition(window, len(window) - k)[len(window) - k :]


def simulate(
    workload: OpenLoopWorkload,
    scheduler: SloScheduler | None = None,
    device: DeviceSpec | None = None,
    plan_cache: PlanCache | None = None,
    metrics: MetricsRegistry | None = None,
    injector=None,
    breaker: CircuitBreaker | None = None,
    max_pending: int = DEFAULT_MAX_PENDING,
    column: np.ndarray | None = None,
    trace: list[SloQuery] | None = None,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> SimulationResult:
    """Run one scheduler over one open-loop trace, deterministically.

    ``column``/``trace`` may be passed pre-generated so several runs
    (policies, rates) share byte-identical queries; otherwise they are
    materialized from ``workload``.  ``plan_cache`` may likewise be
    shared across runs — planning is payload-independent, so reuse only
    changes wall time, never results.
    """
    device = device or get_device()
    metrics = metrics if metrics is not None else MetricsRegistry()
    scheduler = (
        scheduler
        if scheduler is not None
        else SloScheduler(DEFAULT_POLICY, device=device, metrics=metrics)
    )
    if column is None or trace is None:
        column, trace = workload.generate()
    batcher = CrossQueryBatcher(
        plan_cache=plan_cache,
        device=device,
        metrics=metrics,
        profile=profile,
    )

    answers: dict[int, ServedAnswer] = {}
    owners: dict[int, SloQuery] = {}
    queue: list[ServingRequest] = []
    now_ms = 0.0
    next_arrival = 0

    def resolve(query: SloQuery, **kwargs) -> ServedAnswer:
        policy = scheduler.policy
        answer = ServedAnswer(
            index=query.index,
            qos=query.qos,
            n=query.n,
            k=query.k,
            arrival_ms=query.arrival_ms,
            deadline_ms=query.arrival_ms
            + policy.class_named(query.qos).deadline_ms,
            **kwargs,
        )
        answers[query.index] = answer
        return answer

    def admit(query: SloQuery) -> None:
        if len(queue) >= max_pending:
            scheduler._record(
                Decision(REJECT, query.qos, query.n, query.k, "queue full")
            )
            metrics.counter("slo.rejected", qos=query.qos).inc()
            resolve(
                query,
                action=REJECT,
                ok=False,
                error=str(
                    ResourceExhaustedError(
                        f"serving queue is full ({max_pending} pending)"
                    )
                ),
            )
            return
        queued_in_class = sum(
            1 for request in queue if request.qos == query.qos
        )
        rejection = scheduler.admit(query.qos, queued_in_class)
        if rejection is not None:
            metrics.counter("slo.rejected", qos=query.qos).inc()
            resolve(
                query,
                action=REJECT,
                ok=False,
                error=str(scheduler.rejection_error(rejection)),
            )
            return
        request = ServingRequest(
            data=column[query.offset : query.offset + query.n],
            k=query.k,
            injector=injector,
            submitted_sim_ms=query.arrival_ms,
            deadline_ms=query.arrival_ms
            + scheduler.policy.class_named(query.qos).deadline_ms,
            qos=query.qos,
        )
        owners[id(request)] = query
        queue.append(request)

    def fail_shed(triples) -> None:
        for request, decision, error in triples:
            query = owners.pop(id(request))
            metrics.counter("slo.shed", qos=query.qos).inc()
            resolve(
                query,
                action=decision.action,
                ok=False,
                error=str(error),
            )

    while next_arrival < len(trace) or queue:
        if not queue:
            # Idle server: jump the clock to the next arrival.
            now_ms = max(now_ms, trace[next_arrival].arrival_ms)
        while (
            next_arrival < len(trace)
            and trace[next_arrival].arrival_ms <= now_ms
        ):
            admit(trace[next_arrival])
            next_arrival += 1
        if not queue:
            continue
        drained, queue = queue, []
        to_run, shed = scheduler.prepare(drained, now_ms)
        fail_shed(shed)
        if not to_run:
            continue
        # Execute only the earliest-deadline survivor; the rest return to
        # the pool so the next cycle re-evaluates them against the clock
        # their wait has actually cost them.
        request, rest = to_run[0], to_run[1:]
        queue.extend(rest)
        query = owners.pop(id(request))
        allowed = breaker.allow(now_ms) if breaker is not None else True
        if not allowed:
            _, breaker_shed = scheduler.breaker_shed([request])
            if breaker_shed:
                for _, decision, error in breaker_shed:
                    metrics.counter("slo.shed", qos=query.qos).inc()
                    resolve(
                        query,
                        action=decision.action,
                        ok=False,
                        error=str(error),
                    )
                continue
            # Non-sheddable queries run even against an open breaker (the
            # resilient fallback chain still produces an answer); their
            # outcome is not reported to the breaker, whose probe
            # accounting covers allowed executions only.
        if not request.degraded:
            scheduler.note_run(request)
        fallbacks_before = batcher.fallback_queries + batcher.batch_fallbacks
        start_ms = now_ms
        request.queue_wait_sim_ms = max(0.0, start_ms - query.arrival_ms)
        metrics.histogram("serving.queue_wait_sim_ms").observe(
            request.queue_wait_sim_ms
        )
        try:
            batcher.plan(request)
            outcome = batcher.execute([request])[0]
        except Exception as error:  # noqa: BLE001 — typed fault escapes
            now_ms += scheduler.ewma_service_ms  # failed attempt still burns time
            if breaker is not None and allowed:
                breaker.record_failure(now_ms, error)
            metrics.counter("slo.failed", qos=query.qos).inc()
            resolve(
                query,
                action=RUN,
                ok=False,
                start_ms=start_ms,
                finish_ms=now_ms,
                error=str(error),
            )
            continue
        now_ms += outcome.simulated_ms
        scheduler.observe_service(outcome.simulated_ms)
        faulted = (
            batcher.fallback_queries + batcher.batch_fallbacks
            > fallbacks_before
        )
        if breaker is not None and allowed:
            if faulted:
                breaker.record_failure(now_ms)
            else:
                breaker.record_success(now_ms)
        answer = resolve(
            query,
            action=DEGRADE if request.degraded else RUN,
            ok=False,  # set below once the deadline check is done
            start_ms=start_ms,
            finish_ms=now_ms,
            simulated_ms=outcome.simulated_ms,
            degraded=request.degraded,
            expected_recall=request.expected_recall,
            values=outcome.values,
            indices=outcome.indices,
        )
        answer.ok = now_ms <= answer.deadline_ms
        if request.degraded:
            answer.measured_recall = measured_recall(
                outcome.values,
                _top_k_reference(
                    column[query.offset : query.offset + query.n], query.k
                ),
            )
            metrics.counter("slo.degraded", qos=query.qos).inc()
        metrics.counter(
            "slo.met" if answer.ok else "slo.missed", qos=query.qos
        ).inc()
        metrics.summary("slo.latency_ms", qos=query.qos).observe(
            answer.latency_ms
        )

    ordered = [answers[index] for index in sorted(answers)]
    result = SimulationResult(
        scheduler=scheduler.name,
        workload=workload.to_dict(),
        answers=ordered,
        decisions=list(scheduler.decisions),
        metrics=metrics,
        makespan_ms=now_ms,
        breaker=breaker.stats() if breaker is not None else None,
    )
    metrics.gauge("slo.goodput", scheduler=scheduler.name).set(result.goodput)
    return result
