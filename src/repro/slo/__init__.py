"""repro.slo — SLO-aware serving: open-loop load, deadlines, degradation.

The serving layer (``repro.serving``) answers *how fast* the tier runs;
this package answers *what it promises under overload*.  Queries carry
deadlines and tenant QoS classes; an earliest-deadline-first scheduler
enforces per-class queue budgets and, under pressure, walks an explicit
degradation ladder — lower the recall target through the approximate
operator's recall model, shed best-effort load with typed errors, and
trip a circuit breaker on repeatedly-faulting devices.

* :mod:`repro.slo.arrivals` — seeded open-loop Poisson/bursty workload
  generation over the twitter corpus;
* :mod:`repro.slo.qos` — QoS classes and the :class:`SloPolicy`;
* :mod:`repro.slo.scheduler` — the EDF + ladder decision core (and its
  FIFO control arm), shared by both drivers;
* :mod:`repro.slo.simulator` — deterministic discrete-event serving
  simulation in simulated time;
* :mod:`repro.slo.server` — :class:`SloTopKServer`, the decision core
  mounted on the threaded production server;
* :mod:`repro.slo.bench` — the load sweep behind ``repro slo-bench``.

See the SLO section of ``docs/serving.md`` for the ladder's contract.
"""

from repro.slo.arrivals import (
    ARRIVAL_PROCESSES,
    OpenLoopWorkload,
    SloQuery,
    bursty_arrivals,
    poisson_arrivals,
)
from repro.slo.bench import (
    DEFAULT_RATES,
    SATURATION_GOODPUT,
    RatePoint,
    SloBenchReport,
    check_baseline,
    run_slo_benchmark,
)
from repro.slo.qos import (
    BEST_EFFORT,
    DEFAULT_CLASSES,
    DEFAULT_POLICY,
    GOLD,
    STANDARD,
    QoSClass,
    SloPolicy,
)
from repro.slo.scheduler import (
    DEGRADE,
    REJECT,
    RUN,
    SHED_BREAKER,
    SHED_DEADLINE,
    Decision,
    FifoScheduler,
    SloScheduler,
)
from repro.slo.server import SloTopKServer
from repro.slo.simulator import (
    DEFAULT_MAX_PENDING,
    ServedAnswer,
    SimulationResult,
    simulate,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "BEST_EFFORT",
    "DEFAULT_CLASSES",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_POLICY",
    "DEFAULT_RATES",
    "DEGRADE",
    "Decision",
    "FifoScheduler",
    "GOLD",
    "OpenLoopWorkload",
    "QoSClass",
    "REJECT",
    "RUN",
    "RatePoint",
    "SATURATION_GOODPUT",
    "SHED_BREAKER",
    "SHED_DEADLINE",
    "STANDARD",
    "ServedAnswer",
    "SimulationResult",
    "SloBenchReport",
    "SloPolicy",
    "SloQuery",
    "SloScheduler",
    "SloTopKServer",
    "bursty_arrivals",
    "check_baseline",
    "poisson_arrivals",
    "run_slo_benchmark",
    "simulate",
]
