"""The SLO load-sweep benchmark behind ``repro slo-bench``.

Sweeps offered load past the serving tier's saturation point and runs
the *same* open-loop trace through two arms at every rate:

* **fifo** — the pre-SLO control: arrival order, no deadlines honored,
  no degradation, global admission bound only;
* **slo** — the full ladder: EDF ordering, per-class budgets, recall
  degradation, overdue shedding.

Three properties are computed (and gated by the ``slo-smoke`` CI job):

1. **Dominance** — past saturation (FIFO goodput below
   :data:`SATURATION_GOODPUT`), the SLO arm's goodput strictly exceeds
   FIFO's: graceful degradation must buy something real.
2. **Honest degradation** — the mean *measured* recall of degraded
   answers (vs. the exact top-k of the same windows) meets the minimum
   recall floor those answers advertised: degradation is a contract,
   not a shrug.
3. **Exactness below saturation** — at rates where the SLO arm never
   degraded, shed, or rejected, its answers are bit-equal to FIFO's:
   the ladder costs nothing until pressure demands it.

Everything gated is in simulated time, so the report is deterministic
for a fixed workload seed; wall time is reported but never compared.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.gpu.device import DeviceSpec, get_device
from repro.observability.metrics import MetricsRegistry
from repro.serving.plan_cache import PlanCache
from repro.slo.arrivals import OpenLoopWorkload
from repro.bench.common import BASELINE_TOLERANCE, drifted
from repro.slo.qos import DEFAULT_POLICY, SloPolicy
from repro.slo.scheduler import FifoScheduler, SloScheduler
from repro.slo.simulator import SimulationResult, simulate

#: JSON schema tag of a serialized report.
REPORT_FORMAT = "repro-slo-bench"
REPORT_VERSION = 1

#: A rate point counts as saturated when FIFO goodput falls below this.
SATURATION_GOODPUT = 0.9

#: Default sweep: two rates below the exact-path capacity (~20 q/ms on
#: the default device), three past it — deep enough that every ladder
#: rung (EDF, degradation, shedding) is exercised.
DEFAULT_RATES = (8.0, 16.0, 28.0, 40.0, 60.0)


@dataclass
class RatePoint:
    """Both arms' results at one offered rate."""

    rate: float
    fifo: SimulationResult
    slo: SimulationResult
    #: Bit-equality of the two arms' answers; only claimed when the SLO
    #: arm ran every query exactly (no degradation, shedding, rejection).
    identical: bool
    wall_seconds: float

    @property
    def saturated(self) -> bool:
        return self.fifo.goodput < SATURATION_GOODPUT

    @property
    def pristine(self) -> bool:
        """The SLO arm never left the exact path at this rate."""
        return (
            self.slo.degraded_count == 0
            and self.slo.shed_count == 0
            and self.slo.rejected_count == 0
        )

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "saturated": self.saturated,
            "pristine": self.pristine,
            "identical": self.identical,
            "wall_seconds": self.wall_seconds,
            "fifo": self.fifo.to_dict(),
            "slo": self.slo.to_dict(),
        }


@dataclass
class SloBenchReport:
    """The sweep plus its three gated properties."""

    workload: dict
    points: list[RatePoint]

    @property
    def dominates(self) -> bool:
        """Strict SLO > FIFO goodput at every saturated rate (and the
        sweep must actually reach saturation)."""
        saturated = [point for point in self.points if point.saturated]
        return bool(saturated) and all(
            point.slo.goodput > point.fifo.goodput for point in saturated
        )

    @property
    def recall_honest(self) -> bool:
        """Degradation happened somewhere, and everywhere it happened the
        mean measured recall met the advertised floor."""
        degraded_points = [
            point for point in self.points if point.slo.degraded_count > 0
        ]
        if not degraded_points:
            return False
        for point in degraded_points:
            measured = point.slo.mean_measured_recall()
            floor = point.slo.min_advertised_recall()
            if measured is None or floor is None or measured < floor - 1e-9:
                return False
        return True

    @property
    def exact_below_saturation(self) -> bool:
        """At least one pristine rate exists and every pristine rate is
        bit-equal to the FIFO arm."""
        pristine = [point for point in self.points if point.pristine]
        return bool(pristine) and all(point.identical for point in pristine)

    @property
    def passed(self) -> bool:
        return (
            self.dominates and self.recall_honest and self.exact_below_saturation
        )

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "workload": dict(self.workload),
            "rates": [point.rate for point in self.points],
            "dominates": self.dominates,
            "recall_honest": self.recall_honest,
            "exact_below_saturation": self.exact_below_saturation,
            "passed": self.passed,
            "points": [point.to_dict() for point in self.points],
        }

    def render(self) -> str:
        lines = [
            f"workload     : {self.workload['queries']} queries, "
            f"{self.workload['process']} arrivals, "
            f"n in [{self.workload['n_min']}, {self.workload['n_max']}), "
            f"k = {self.workload['k']}, seed = {self.workload['seed']}",
            "",
            f"{'rate q/ms':>9} {'fifo good':>10} {'slo good':>9} "
            f"{'degraded':>9} {'shed':>6} {'rejected':>9} "
            f"{'gold p99 ms':>12} {'recall':>8}",
        ]
        for point in self.points:
            p99 = point.slo.class_latency("gold").get("p99")
            measured = point.slo.mean_measured_recall()
            p99_text = "-" if p99 is None else f"{p99:.3f}"
            recall_text = "-" if measured is None else f"{measured:.4f}"
            lines.append(
                f"{point.rate:>9.1f} {point.fifo.goodput:>10.3f} "
                f"{point.slo.goodput:>9.3f} "
                f"{point.slo.degraded_count:>9} {point.slo.shed_count:>6} "
                f"{point.slo.rejected_count:>9} "
                f"{p99_text:>12} {recall_text:>8}"
            )
        lines += [
            "",
            f"dominance    : "
            f"{'SLO > FIFO at every saturated rate' if self.dominates else 'FAILED'}",
            f"degradation  : "
            f"{'measured recall met advertised floors' if self.recall_honest else 'FAILED'}",
            f"below satur. : "
            f"{'bit-equal to the exact path' if self.exact_below_saturation else 'FAILED'}",
        ]
        return "\n".join(lines)


def _bit_equal(fifo: SimulationResult, slo: SimulationResult) -> bool:
    """Answer-for-answer equality of the two arms' served results."""
    for first, second in zip(fifo.answers, slo.answers):
        if (first.values is None) != (second.values is None):
            return False
        if first.values is None:
            continue
        if not (
            np.array_equal(first.values, second.values)
            and np.array_equal(first.indices, second.indices)
        ):
            return False
    return True


def run_slo_benchmark(
    queries: int = 120,
    rates: tuple = DEFAULT_RATES,
    process: str = "poisson",
    seed: int = 0,
    device: DeviceSpec | None = None,
    policy: SloPolicy = DEFAULT_POLICY,
    cache_capacity: int = 1024,
) -> SloBenchReport:
    """Sweep offered load through both arms on shared traces."""
    if not rates:
        raise InvalidParameterError("the sweep needs at least one rate")
    device = device or get_device()
    # One plan cache for the whole sweep: planning is payload-independent,
    # so sharing it only removes redundant cost-model evaluations (the
    # dominant wall cost — each distinct window length plans once).
    plan_cache = PlanCache(device=device, capacity=cache_capacity)
    points: list[RatePoint] = []
    workload_dict: dict = {}
    for rate in rates:
        workload = OpenLoopWorkload(
            queries=queries, rate_per_ms=float(rate), process=process, seed=seed
        )
        column, trace = workload.generate()
        started = time.perf_counter()
        fifo = simulate(
            workload,
            FifoScheduler(policy, device=device),
            device=device,
            plan_cache=plan_cache,
            metrics=MetricsRegistry(),
            column=column,
            trace=trace,
        )
        slo = simulate(
            workload,
            SloScheduler(policy, device=device),
            device=device,
            plan_cache=plan_cache,
            metrics=MetricsRegistry(),
            column=column,
            trace=trace,
        )
        wall = time.perf_counter() - started
        points.append(
            RatePoint(
                rate=float(rate),
                fifo=fifo,
                slo=slo,
                identical=_bit_equal(fifo, slo),
                wall_seconds=wall,
            )
        )
        workload_dict = {
            key: value
            for key, value in workload.to_dict().items()
            if key != "rate_per_ms"
        }
    return SloBenchReport(workload=workload_dict, points=points)


def check_baseline(report: SloBenchReport, baseline: dict) -> list[str]:
    """Regression-gate a report against a committed baseline.

    Only deterministic quantities are compared: per-rate goodput of both
    arms and the SLO arm's gold-class p99 simulated latency.
    """
    problems = []
    if baseline.get("format") != REPORT_FORMAT:
        return [f"baseline is not a {REPORT_FORMAT} document"]
    if baseline.get("workload") != report.workload:
        return [
            "baseline workload differs from the benchmarked workload: "
            f"{baseline.get('workload')} vs {report.workload}"
        ]
    measured_points = {point.rate: point for point in report.points}
    for entry in baseline.get("points", []):
        rate = entry["rate"]
        point = measured_points.get(rate)
        if point is None:
            problems.append(f"rate {rate} missing from the measured sweep")
            continue
        for arm in ("fifo", "slo"):
            expected = entry[arm]["goodput"]
            measured = getattr(point, arm).goodput
            if drifted(measured, expected):
                problems.append(
                    f"{arm} goodput at rate {rate} ({measured:.3f}) deviates "
                    f"more than {BASELINE_TOLERANCE:.0%} from baseline "
                    f"{expected:.3f}"
                )
        expected_p99 = (
            entry["slo"].get("classes", {}).get("gold", {}).get("p99")
        )
        measured_p99 = point.slo.class_latency("gold").get("p99")
        if expected_p99 is not None and measured_p99 is not None:
            if drifted(measured_p99, expected_p99):
                problems.append(
                    f"gold p99 at rate {rate} ({measured_p99:.3f} ms) deviates "
                    f"more than {BASELINE_TOLERANCE:.0%} from baseline "
                    f"{expected_p99:.3f} ms"
                )
    for gate in ("dominates", "recall_honest", "exact_below_saturation"):
        if not getattr(report, gate):
            problems.append(f"SLO property {gate!r} does not hold")
    return problems
