"""Top-level command line: run top-k, the planner, EXPLAIN, or tracing.

Examples::

    python -m repro topk --n 1048576 --k 32
    python -m repro topk --n 1048576 --k 32 --algorithm radix-select \\
        --distribution bucket_killer --model-n 536870912
    python -m repro plan --n 536870912 --k 256 --dtype uint32
    python -m repro explain "SELECT id FROM tweets ORDER BY retweet_count \\
        DESC LIMIT 50" --rows 262144 --model-rows 250000000
    python -m repro explain --k 64 --window 262144 --chunk-rows 16384
    python -m repro trace --n 1048576 --k 32 --out trace.json
    python -m repro trace "SELECT id FROM tweets ORDER BY likes DESC \\
        LIMIT 50" --rows 262144
    python -m repro profile --n 1048576 --k 32
    python -m repro chaos --seed 0 --trials 50
    python -m repro serve-bench --queries 1000 --shapes 4 --n 512 --k 8
    python -m repro approx-bench --baseline benchmarks/baselines/BENCH_approx.json
    python -m repro shard-bench --baseline benchmarks/baselines/BENCH_sharding.json
    python -m repro slo-bench --baseline benchmarks/baselines/BENCH_slo.json
    python -m repro radix-bench --baseline benchmarks/baselines/BENCH_radix.json
    python -m repro stream-bench --baseline benchmarks/baselines/BENCH_streaming.json
    python -m repro calibrate --store calibration.json

Every command reports failures as one-line typed errors on stderr, with a
distinct exit code per :class:`~repro.errors.ReproError` subclass (see
``repro.errors.EXIT_CODES``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import observability as obs
from repro.algorithms.registry import list_algorithms
from repro.bench.common import add_report_arguments, finish_report
from repro.core.planner import TopKPlanner
from repro.core.topk import topk
from repro.costmodel.base import PROFILES, get_profile
from repro.data.distributions import generate, list_distributions
from repro.errors import InvalidParameterError, ReproError, exit_code
from repro.gpu.device import get_device, list_devices

_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
    "uint32": np.uint32,
    "uint64": np.uint64,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of the SIGMOD 2018 bitonic top-k paper.",
    )
    commands = parser.add_subparsers(dest="command")

    run = commands.add_parser("topk", help="run a top-k and report timings")
    run.add_argument("--n", type=int, default=1 << 20, help="input size")
    run.add_argument("--k", type=int, default=32)
    run.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto"] + list_algorithms(),
    )
    run.add_argument(
        "--distribution", default="uniform", choices=list_distributions()
    )
    run.add_argument("--device", default="titan-x-maxwell", choices=list_devices())
    run.add_argument(
        "--model-n", type=int, default=None,
        help="input size the execution trace models (default: --n)",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--timeline", action="store_true", help="print the kernel timeline"
    )

    plan = commands.add_parser("plan", help="rank algorithms by predicted cost")
    plan.add_argument("--n", type=int, default=1 << 29)
    plan.add_argument("--k", type=int, default=64)
    plan.add_argument("--dtype", default="float32", choices=sorted(_DTYPES))
    plan.add_argument("--profile", default="uniform-float", choices=sorted(PROFILES))
    plan.add_argument("--device", default="titan-x-maxwell", choices=list_devices())

    explain = commands.add_parser(
        "explain",
        help="cost out a SQL query on synthetic tweets, or (with "
             "--window/--decay) a continuous subscription over the stream",
    )
    explain.add_argument(
        "sql", nargs="?", default=None,
        help="the query text (table must be 'tweets'); omitted for "
             "subscription EXPLAIN (--window/--decay)",
    )
    explain.add_argument("--rows", type=int, default=1 << 16,
                         help="functional table size")
    explain.add_argument("--model-rows", type=int, default=250_000_000)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--json", action="store_true",
        help="emit the plan (with each strategy's physical plan tree) "
             "as JSON instead of the rendered text",
    )
    explain.add_argument(
        "--shards", type=int, default=1,
        help="partition budget; above 1 the exact strategies plan a Merge "
             "over per-shard Scan→TopK subtrees",
    )
    explain.add_argument(
        "--window", type=int, default=None,
        help="subscription EXPLAIN: sliding window in rows (a multiple of "
             "--chunk-rows); prices incremental vs recompute maintenance",
    )
    explain.add_argument(
        "--decay", type=float, default=None,
        help="subscription EXPLAIN: per-tick exponential decay factor",
    )
    explain.add_argument(
        "--chunk-rows", type=int, default=1 << 14,
        help="subscription EXPLAIN: rows arriving per tick",
    )
    explain.add_argument(
        "--k", type=int, default=64,
        help="subscription EXPLAIN: result size",
    )

    for name, help_text in [
        ("trace", "run a workload under tracing and export the trace"),
        ("profile", "run a workload and print its span tree + metrics"),
    ]:
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "sql", nargs="?", default=None,
            help="optional SQL query (table must be 'tweets'); "
                 "when omitted a top-k workload is traced instead",
        )
        sub.add_argument("--n", type=int, default=1 << 20, help="input size")
        sub.add_argument("--k", type=int, default=32)
        sub.add_argument(
            "--algorithm", default="auto", choices=["auto"] + list_algorithms()
        )
        sub.add_argument(
            "--distribution", default="uniform", choices=list_distributions()
        )
        sub.add_argument(
            "--device", default="titan-x-maxwell", choices=list_devices()
        )
        sub.add_argument(
            "--model-n", type=int, default=None,
            help="input size the execution trace models (default: --n)",
        )
        sub.add_argument("--rows", type=int, default=1 << 16,
                         help="functional table size (SQL mode)")
        sub.add_argument("--model-rows", type=int, default=None,
                         help="modeled table size (SQL mode)")
        sub.add_argument("--seed", type=int, default=0)
        if name == "trace":
            sub.add_argument(
                "--out", default="trace.json",
                help="output path for the exported trace",
            )
            sub.add_argument(
                "--format", dest="trace_format", default="chrome",
                choices=["chrome", "jsonl"],
                help="chrome://tracing JSON or JSON-lines",
            )

    chaos = commands.add_parser(
        "chaos",
        help="run the fault-injection chaos suite and report survival",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--trials", type=int, default=50)
    chaos.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of the text summary",
    )

    serve = commands.add_parser(
        "serve-bench",
        help="replay a synthetic workload through the serving layer and "
             "compare against sequential execution",
    )
    serve.add_argument("--queries", type=int, default=1000)
    serve.add_argument("--shapes", type=int, default=4,
                       help="number of distinct (n, k) shapes in the stream")
    serve.add_argument("--n", type=int, default=512, help="row length")
    serve.add_argument("--k", type=int, default=8, help="base k (shape i uses k + i)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--device", default="titan-x-maxwell", choices=list_devices())
    serve.add_argument("--max-batch", type=int, default=128,
                       help="largest number of queries fused into one launch")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the plan cache (replan every query)")
    serve.add_argument("--no-batch", action="store_true",
                       help="disable cross-query batching (serve per query)")
    add_report_arguments(serve, "BENCH_serving.json")

    approx = commands.add_parser(
        "approx-bench",
        help="sweep the bucketed approximate top-k against the exact "
             "bitonic plan: simulated speedup vs. measured recall",
    )
    approx.add_argument(
        "--n", type=int, action="append", dest="ns", default=None,
        help="modeled input size; repeatable (default: 2^20 and 2^24)",
    )
    approx.add_argument(
        "--k", type=int, action="append", dest="ks", default=None,
        help="result size; repeatable (default: 64 and 256)",
    )
    approx.add_argument(
        "--buckets", type=int, action="append", default=None,
        help="bucket count; repeatable; 0 means the planner default "
             "(default: 0, 16, 64)",
    )
    approx.add_argument(
        "--functional-cap", type=int, default=1 << 18,
        help="functional array size cap (the trace still models --n)",
    )
    approx.add_argument("--seed", type=int, default=0)
    approx.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(approx, "BENCH_approx.json")

    shard = commands.add_parser(
        "shard-bench",
        help="scale one large top-k across simulated devices and check the "
             "partition-parallel scaling curve (exactness + monotonicity)",
    )
    shard.add_argument(
        "--n", type=int, default=None, dest="model_n",
        help="modeled input size (default: 2^26)",
    )
    shard.add_argument("--k", type=int, default=None, help="result size")
    shard.add_argument(
        "--shards", type=int, action="append", dest="shard_counts",
        default=None,
        help="shard count to measure; repeatable, strictly increasing "
             "(default: 1 2 4 8)",
    )
    shard.add_argument(
        "--functional-cap", type=int, default=None,
        help="functional array size cap (the trace still models --n)",
    )
    shard.add_argument("--seed", type=int, default=None)
    shard.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(shard, "BENCH_sharding.json")

    slo = commands.add_parser(
        "slo-bench",
        help="sweep offered load past saturation and compare the SLO "
             "scheduler (EDF + degradation ladder) against the FIFO baseline",
    )
    slo.add_argument("--queries", type=int, default=120)
    slo.add_argument(
        "--rate", type=float, action="append", dest="rates", default=None,
        help="offered load in queries per simulated ms; repeatable "
             "(default: 8 16 28 40 60)",
    )
    slo.add_argument(
        "--process", default="poisson", choices=["poisson", "bursty"],
        help="open-loop arrival process",
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(slo, "BENCH_slo.json")

    radix = commands.add_parser(
        "radix-bench",
        help="sweep the RadiK-style radix kernel against the strawman and "
             "bitonic across (k, batch): large-k crossover + fused batching",
    )
    radix.add_argument(
        "--n", type=int, default=None, dest="model_n",
        help="modeled input size of the k sweep (default: 2^26)",
    )
    radix.add_argument(
        "--k", type=int, action="append", dest="ks", default=None,
        help="result size; repeatable, strictly increasing "
             "(default: 64 256 1024 2048)",
    )
    radix.add_argument(
        "--batch", type=int, action="append", dest="batch_sizes", default=None,
        help="batch size of the fused sweep; repeatable, strictly "
             "increasing (default: 1 2 4 8)",
    )
    radix.add_argument(
        "--batch-n", type=int, default=None,
        help="row length of the batch sweep (default: 2048)",
    )
    radix.add_argument(
        "--batch-k", type=int, default=None,
        help="result size of the batch sweep (default: 64)",
    )
    radix.add_argument(
        "--functional-cap", type=int, default=None,
        help="functional array size cap (the trace still models --n)",
    )
    radix.add_argument("--seed", type=int, default=None)
    radix.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(radix, "BENCH_radix.json")

    stream = commands.add_parser(
        "stream-bench",
        help="drive the seeded tweet stream through incremental and "
             "recompute maintenance: per-tick bit-equality + the "
             "incremental speedup gate",
    )
    stream.add_argument("--k", type=int, default=None, help="result size")
    stream.add_argument(
        "--chunk-rows", type=int, default=None,
        help="functional rows per tick (the equality oracle's chunk size)",
    )
    stream.add_argument(
        "--model-chunk-rows", type=int, default=None,
        help="modeled rows per tick (the tick traces price this size)",
    )
    stream.add_argument(
        "--window-chunks", type=int, default=None,
        help="sliding window length in chunks",
    )
    stream.add_argument(
        "--ticks", type=int, default=None,
        help="stream length in ticks (must cover at least one window)",
    )
    stream.add_argument(
        "--decay", type=float, default=None,
        help="per-tick decay factor of the decayed arm",
    )
    stream.add_argument(
        "--shards", type=int, default=None,
        help="per-chunk summarize parallelism (contiguous shard ranges)",
    )
    stream.add_argument("--seed", type=int, default=None)
    stream.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(stream, "BENCH_streaming.json")

    calibrate = commands.add_parser(
        "calibrate",
        help="replay a seeded workload through every candidate kernel, fit "
             "per-kernel correction factors, and report planner Q-error "
             "before/after calibration",
    )
    calibrate.add_argument(
        "--n", type=int, action="append", dest="ns", default=None,
        help="input size of the replay grid; repeatable, strictly "
             "increasing (default: 16384 65536 262144)",
    )
    calibrate.add_argument(
        "--k", type=int, action="append", dest="ks", default=None,
        help="result size of the replay grid; repeatable, strictly "
             "increasing (default: 8 64 256 1024)",
    )
    calibrate.add_argument(
        "--profile", default=None, choices=sorted(PROFILES),
        help="workload profile of the replay (default: uniform-float)",
    )
    calibrate.add_argument("--seed", type=int, default=None)
    calibrate.add_argument(
        "--device", default="titan-x-maxwell", choices=list_devices()
    )
    add_report_arguments(calibrate)
    calibrate.add_argument(
        "--store", default=None,
        help="persist the fitted calibration store to this JSON path",
    )
    calibrate.add_argument(
        "--load", default=None,
        help="seed the store from a previously persisted JSON file "
             "(the replay's samples append to it before the refit)",
    )
    return parser


def _command_topk(arguments) -> int:
    device = get_device(arguments.device)
    data = generate(arguments.distribution, arguments.n, arguments.seed)
    result = topk(
        data,
        arguments.k,
        algorithm=arguments.algorithm,
        device=device,
        model_n=arguments.model_n,
    )
    model_n = arguments.model_n or arguments.n
    print(f"algorithm   : {result.algorithm}")
    print(f"n / k       : {arguments.n} / {arguments.k} "
          f"({arguments.distribution}, {data.dtype})")
    print(f"model n     : {model_n}")
    print(f"simulated   : {result.simulated_ms(device):.3f} ms on {device.name}")
    print(f"top values  : {np.array2string(result.values[:8], precision=6)}")
    print(f"top rows    : {result.indices[:8].tolist()}")
    if arguments.timeline:
        print(result.simulated_time(device).render())
    return 0


def _command_plan(arguments) -> int:
    device = get_device(arguments.device)
    planner = TopKPlanner(device)
    choice = planner.choose(
        arguments.n,
        arguments.k,
        np.dtype(_DTYPES[arguments.dtype]),
        get_profile(arguments.profile),
    )
    print(f"configuration: n = {arguments.n}, k = {arguments.k}, "
          f"{arguments.dtype}, {arguments.profile}, {device.name}")
    print(f"choice       : {choice.algorithm} "
          f"({choice.predicted_ms:.2f} ms predicted)")
    for name, seconds in choice.candidates:
        print(f"  {name:>14}: {seconds * 1e3:9.2f} ms")
    return 0


def _command_explain(arguments) -> int:
    from repro.engine.session import Session

    session = Session(shards=arguments.shards)
    if arguments.window is not None or arguments.decay is not None:
        plan = session.explain_stream(
            arguments.k,
            arguments.chunk_rows,
            window=arguments.window,
            decay=arguments.decay,
        )
    else:
        if arguments.sql is None:
            raise InvalidParameterError(
                "explain needs a SQL query, or --window/--decay for a "
                "subscription"
            )
        from repro.engine.twitter import generate_tweets

        session.register(generate_tweets(arguments.rows, arguments.seed))
        plan = session.explain(arguments.sql, model_rows=arguments.model_rows)
    if arguments.json:
        import json

        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.render())
    return 0


def _run_observed(arguments) -> tuple[obs.Observation, float]:
    """Run the requested workload under observation.

    Returns the populated observation and the workload's simulated
    milliseconds (the figure the kernel spans must sum to).
    """
    observation = obs.Observation(obs.Tracer(), obs.MetricsRegistry())
    device = get_device(arguments.device)
    if arguments.sql is not None:
        from repro.engine.session import Session
        from repro.engine.twitter import generate_tweets

        session = Session(device)
        session.observation = observation
        session.register(generate_tweets(arguments.rows, arguments.seed))
        result = session.sql(arguments.sql, model_rows=arguments.model_rows)
        simulated_ms = result.simulated_ms()
    else:
        data = generate(arguments.distribution, arguments.n, arguments.seed)
        with observation.activate():
            result = topk(
                data,
                arguments.k,
                algorithm=arguments.algorithm,
                device=device,
                model_n=arguments.model_n,
            )
        simulated_ms = result.simulated_ms(device)
    return observation, simulated_ms


def _command_trace(arguments) -> int:
    observation, simulated_ms = _run_observed(arguments)
    tracer, metrics = observation.tracer, observation.metrics
    if arguments.trace_format == "chrome":
        obs.write_chrome_trace(arguments.out, tracer, metrics)
    else:
        obs.write_jsonl(arguments.out, tracer, metrics)
    kernel_ms = tracer.total_sim_ms("kernel")
    print(f"spans       : {tracer.num_spans}")
    print(f"kernels     : {len(tracer.spans('kernel'))}")
    print(f"simulated   : {simulated_ms:.3f} ms "
          f"(kernel spans sum to {kernel_ms:.3f} ms)")
    print(f"trace       : {arguments.out} ({arguments.trace_format})")
    if abs(kernel_ms - simulated_ms) > 1e-6 * max(1.0, simulated_ms):
        print("WARNING: kernel span total disagrees with the simulated time")
        return 1
    return 0


def _command_profile(arguments) -> int:
    observation, simulated_ms = _run_observed(arguments)
    print(observation.tracer.render())
    print()
    print(observation.metrics.render())
    print()
    print(f"simulated total: {simulated_ms:.3f} ms")
    return 0


def _command_chaos(arguments) -> int:
    from repro.resilience.chaos import run_campaign

    if arguments.trials < 1:
        raise InvalidParameterError(
            f"--trials must be at least 1, got {arguments.trials}"
        )
    report = run_campaign(seed=arguments.seed, trials=arguments.trials)
    if arguments.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.survived else 1


def _command_serve_bench(arguments) -> int:
    from repro.serving import Workload, check_baseline, run_serving_benchmark

    report = run_serving_benchmark(
        Workload(
            queries=arguments.queries,
            shapes=arguments.shapes,
            n=arguments.n,
            k=arguments.k,
            seed=arguments.seed,
        ),
        device=get_device(arguments.device),
        cache=not arguments.no_cache,
        batching=not arguments.no_batch,
        max_batch=arguments.max_batch,
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.identical,
                "served results are not bit-equal to sequential results",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_approx_bench(arguments) -> int:
    from repro.approx import (
        ApproxWorkload,
        check_baseline,
        run_approx_benchmark,
    )

    defaults = ApproxWorkload()
    report = run_approx_benchmark(
        ApproxWorkload(
            ns=tuple(arguments.ns) if arguments.ns else defaults.ns,
            ks=tuple(arguments.ks) if arguments.ks else defaults.ks,
            buckets=(
                tuple(arguments.buckets)
                if arguments.buckets
                else defaults.buckets
            ),
            functional_cap=arguments.functional_cap,
            seed=arguments.seed,
        ),
        device=get_device(arguments.device),
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.headline is None or report.passed,
                "the headline speedup/recall gate failed",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_shard_bench(arguments) -> int:
    from repro.sharding import (
        ShardWorkload,
        check_baseline,
        run_sharding_benchmark,
    )

    defaults = ShardWorkload()
    report = run_sharding_benchmark(
        ShardWorkload(
            model_n=(
                arguments.model_n
                if arguments.model_n is not None
                else defaults.model_n
            ),
            k=arguments.k if arguments.k is not None else defaults.k,
            shard_counts=(
                tuple(arguments.shard_counts)
                if arguments.shard_counts
                else defaults.shard_counts
            ),
            functional_cap=(
                arguments.functional_cap
                if arguments.functional_cap is not None
                else defaults.functional_cap
            ),
            seed=arguments.seed if arguments.seed is not None else defaults.seed,
        ),
        device=get_device(arguments.device),
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.identical,
                "sharded results are not bit-equal to the single-device "
                "reference",
            ),
            (
                report.monotonic,
                "simulated time does not improve monotonically across the "
                "gated shard counts",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_slo_bench(arguments) -> int:
    from repro.slo import DEFAULT_RATES, check_baseline, run_slo_benchmark

    report = run_slo_benchmark(
        queries=arguments.queries,
        rates=tuple(arguments.rates) if arguments.rates else DEFAULT_RATES,
        process=arguments.process,
        seed=arguments.seed,
        device=get_device(arguments.device),
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.passed,
                "an SLO property gate failed (dominance, recall honesty, or "
                "below-saturation exactness)",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_radix_bench(arguments) -> int:
    from repro.bench.radix import (
        RadixWorkload,
        check_baseline,
        run_radix_benchmark,
    )

    defaults = RadixWorkload()
    report = run_radix_benchmark(
        RadixWorkload(
            model_n=(
                arguments.model_n
                if arguments.model_n is not None
                else defaults.model_n
            ),
            ks=tuple(arguments.ks) if arguments.ks else defaults.ks,
            functional_cap=(
                arguments.functional_cap
                if arguments.functional_cap is not None
                else defaults.functional_cap
            ),
            batch_sizes=(
                tuple(arguments.batch_sizes)
                if arguments.batch_sizes
                else defaults.batch_sizes
            ),
            batch_n=(
                arguments.batch_n
                if arguments.batch_n is not None
                else defaults.batch_n
            ),
            batch_k=(
                arguments.batch_k
                if arguments.batch_k is not None
                else defaults.batch_k
            ),
            seed=arguments.seed if arguments.seed is not None else defaults.seed,
        ),
        device=get_device(arguments.device),
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.identical,
                "a radix result is not bit-equal to the reference order",
            ),
            (
                report.large_k_monotonic,
                "the monotonic large-k gate failed (speedup over bitonic "
                "shrank with k, or radik lost a gated point)",
            ),
            (
                report.batch_amortizes,
                "the fused batch did not beat per-query execution at every "
                "batch >= 2",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_stream_bench(arguments) -> int:
    from repro.streaming import (
        GATE_SPEEDUP,
        StreamWorkload,
        check_baseline,
        run_streaming_benchmark,
    )

    defaults = StreamWorkload()
    overrides = {
        name: getattr(arguments, name)
        for name in (
            "k", "chunk_rows", "model_chunk_rows", "window_chunks",
            "ticks", "decay", "shards", "seed",
        )
        if getattr(arguments, name) is not None
    }
    report = run_streaming_benchmark(
        StreamWorkload(**{**defaults.to_dict(), **overrides}),
        device=get_device(arguments.device),
    )
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.identical,
                "an incremental answer is not bit-equal to its recompute "
                "oracle",
            ),
            (
                report.fast_enough,
                f"incremental speedup {report.measured_speedup:.2f}x is "
                f"below the {GATE_SPEEDUP:.1f}x gate",
            ),
        ],
        check_baseline=check_baseline,
    )


def _command_calibrate(arguments) -> int:
    from repro.bench.calibrate import (
        CalibrationWorkload,
        run_calibration_benchmark,
    )
    from repro.costmodel.calibration import CalibrationStore

    defaults = CalibrationWorkload()
    workload = CalibrationWorkload(
        ns=tuple(arguments.ns) if arguments.ns else defaults.ns,
        ks=tuple(arguments.ks) if arguments.ks else defaults.ks,
        profile_name=(
            arguments.profile
            if arguments.profile is not None
            else defaults.profile_name
        ),
        seed=arguments.seed if arguments.seed is not None else defaults.seed,
    )
    store = (
        CalibrationStore.load(arguments.load)
        if arguments.load
        else CalibrationStore()
    )
    report = run_calibration_benchmark(
        workload, device=get_device(arguments.device), store=store
    )
    if arguments.store:
        store.save(arguments.store)
    return finish_report(
        report,
        arguments,
        gates=[
            (
                report.q_error_improves,
                "post-calibration p95 Q-error exceeds pre-calibration",
            ),
            (
                report.decisions_optimal,
                "a fitted correction drifted a planner decision away from "
                "the observed optimum",
            ),
            (
                report.default_unchanged,
                "replanning with calibrate=False did not reproduce the "
                "baseline decisions",
            ),
        ],
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "topk":
            return _command_topk(arguments)
        if arguments.command == "plan":
            return _command_plan(arguments)
        if arguments.command == "explain":
            return _command_explain(arguments)
        if arguments.command == "trace":
            return _command_trace(arguments)
        if arguments.command == "profile":
            return _command_profile(arguments)
        if arguments.command == "chaos":
            return _command_chaos(arguments)
        if arguments.command == "serve-bench":
            return _command_serve_bench(arguments)
        if arguments.command == "approx-bench":
            return _command_approx_bench(arguments)
        if arguments.command == "shard-bench":
            return _command_shard_bench(arguments)
        if arguments.command == "slo-bench":
            return _command_slo_bench(arguments)
        if arguments.command == "radix-bench":
            return _command_radix_bench(arguments)
        if arguments.command == "stream-bench":
            return _command_stream_bench(arguments)
        if arguments.command == "calibrate":
            return _command_calibrate(arguments)
    except ReproError as error:
        # One-line typed diagnostics; each error class has its own exit
        # code so scripts can dispatch on the failure mode.
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return exit_code(error)
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
