"""Workload data generators for the evaluation (Section 6).

Each generator returns a numpy array with the dtype and distribution used by
one of the paper's experiments:

* ``uniform_floats`` — U(0, 1) float32, the default workload (Fig. 11a).
* ``uniform_uints`` — U(0, 2^32 - 1) uint32 (Fig. 11b).
* ``uniform_doubles`` — U(0, 1) float64 (Fig. 11c).
* ``increasing`` / ``decreasing`` — sorted U(0, 1), the adversarial input
  for heap-based methods (Fig. 12a, Fig. 15b, Fig. 18).
* ``bucket_killer`` — all ones except a handful of values that each differ
  from 1.0 in exactly one 8-bit digit of their bit pattern, so every radix
  pass eliminates only a single element (Fig. 12b).
* ``zipf`` — skewed integers for the group-by workload of the MapD study.

All generators take a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_floats(n: int, seed: int | None = 0) -> np.ndarray:
    """n float32 values drawn from U(0, 1)."""
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    return _rng(seed).random(n, dtype=np.float32)


def uniform_doubles(n: int, seed: int | None = 0) -> np.ndarray:
    """n float64 values drawn from U(0, 1)."""
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    return _rng(seed).random(n, dtype=np.float64)


def uniform_uints(n: int, seed: int | None = 0) -> np.ndarray:
    """n uint32 values drawn from U(0, 2^32 - 1)."""
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    return _rng(seed).integers(0, 2**32, size=n, dtype=np.uint32)


def increasing(n: int, seed: int | None = 0, dtype=np.float32) -> np.ndarray:
    """Sorted ascending U(0, 1) values — every element beats the heap minimum."""
    values = _rng(seed).random(n).astype(dtype)
    values.sort()
    return values


def decreasing(n: int, seed: int | None = 0, dtype=np.float32) -> np.ndarray:
    """Sorted descending U(0, 1) values — no heap updates after warm-up."""
    return increasing(n, seed, dtype)[::-1].copy()


def bucket_killer(n: int, seed: int | None = 0) -> np.ndarray:
    """The adversarial distribution for radix select (Section 6.4).

    All elements are 1.0f except four, each of which differs from 1.0 in a
    single 8-bit digit of its IEEE-754 bit pattern.  A most-significant-
    digit radix pass can then only ever eliminate one element, so radix
    select degrades to the cost of a full sort.
    """
    if n < 5:
        raise InvalidParameterError("bucket_killer needs at least 5 elements")
    values = np.ones(n, dtype=np.float32)
    one_bits = np.float32(1.0).view(np.uint32)
    specials = []
    for digit in range(4):
        # Flip a low bit inside one 8-bit digit so the value sorts *below*
        # 1.0 in exactly that radix pass.
        flipped = np.uint32(one_bits ^ np.uint32(1 << (8 * digit)))
        specials.append(flipped)
    positions = _rng(seed).choice(n, size=4, replace=False)
    bits = values.view(np.uint32)
    for position, special in zip(positions, specials):
        bits[position] = special
    return values


def zipf_integers(
    n: int, num_distinct: int, skew: float = 1.1, seed: int | None = 0
) -> np.ndarray:
    """n int64 keys over ``num_distinct`` values with Zipf-like frequency skew.

    Used by the synthetic twitter workload: a few very heavy users / very
    popular tweets and a long tail, the regime where a group-by dominates a
    top-k (the paper's Q4 hashtag remark).
    """
    if num_distinct <= 0:
        raise InvalidParameterError("num_distinct must be positive")
    if skew <= 0:
        raise InvalidParameterError("skew must be positive")
    rng = _rng(seed)
    # Inverse-CDF sampling over a truncated zeta distribution.
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(n)
    return np.searchsorted(cdf, draws).astype(np.int64)


_GENERATORS = {
    "uniform": uniform_floats,
    "uniform_doubles": uniform_doubles,
    "uniform_uints": uniform_uints,
    "increasing": increasing,
    "decreasing": decreasing,
    "bucket_killer": bucket_killer,
}


def generate(name: str, n: int, seed: int | None = 0) -> np.ndarray:
    """Generate a named distribution (registry used by the bench harness)."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise InvalidParameterError(
            f"unknown distribution {name!r}; available: {known}"
        ) from None
    return generator(n, seed)


def list_distributions() -> list[str]:
    """Names of all registered distributions."""
    return sorted(_GENERATORS)
