"""Unbounded seeded tweet stream: the chunked twitter corpus.

The continuous-query workload's source.  Where
:func:`repro.engine.twitter.generate_tweets` materializes one bounded
table, this module generates the same *kind* of data as an unbounded
sequence of fixed-size chunks, one per tick, with two guarantees:

* **Deterministic random access** — chunk ``c`` of stream ``seed`` is a
  pure function of ``(seed, c)`` (each chunk draws from its own
  ``default_rng([seed, chunk_index])``), so any chunk is reproducible
  without generating its predecessors and two consumers of the same
  stream see bit-identical rows.
* **Bounded memory** — producing a chunk touches O(``chunk_rows``)
  memory regardless of how far into the stream it sits; nothing is
  materialized up front and nothing accumulates across chunks (the
  regression test in ``tests/data/test_stream.py`` pins this).

Chunks are plain column dicts (numpy arrays keyed by column name), not
engine tables — ``repro.data`` sits below the engine, which wraps chunks
into :class:`~repro.engine.table.Table` rows itself
(:func:`repro.engine.twitter.stream_tables`).  ``lang_code`` is the
integer code into the engine's language list; ``score`` is the ranking
value streaming subscriptions maintain top-k over (float32, heavy-tailed
like the retweet/likes popularity mix); ``id`` is the global row index,
the tie-breaking identity of the canonical order.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError

#: Fixed user universe of the unbounded stream (the bounded corpus scales
#: users with rows; a stream has no row count to scale by).
STREAM_USERS = 57_000

#: Zipf skew of the per-chunk user draw (matches the bounded corpus).
STREAM_USER_SKEW = 1.2

#: Language-code mix; codes index the engine's language list, and
#: en + es = 0.8 preserves the query-3 selectivity of the bounded corpus.
LANGUAGE_CODE_WEIGHTS = (0.62, 0.18, 0.08, 0.05, 0.04, 0.03)

#: Stream epoch and per-row spacing: row i arrives at EPOCH + i seconds.
STREAM_EPOCH = 1_493_596_800


@lru_cache(maxsize=8)
def _user_cdf(num_users: int, skew: float) -> np.ndarray:
    """Truncated-zeta CDF over user ranks (cached; identical per chunk)."""
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _validate(chunk_rows: int, seed: int) -> None:
    if chunk_rows <= 0:
        raise InvalidParameterError(
            f"chunk_rows must be positive, got {chunk_rows}"
        )
    if seed < 0:
        raise InvalidParameterError(f"seed must be non-negative, got {seed}")


def stream_chunk(
    chunk_index: int, chunk_rows: int, seed: int = 0
) -> dict[str, np.ndarray]:
    """Generate one chunk of the tweet stream.

    A pure function of ``(seed, chunk_index)``: the chunk's rng is seeded
    with the pair, so chunks are independently reproducible in any order.
    """
    _validate(chunk_rows, seed)
    if chunk_index < 0:
        raise InvalidParameterError(
            f"chunk_index must be non-negative, got {chunk_index}"
        )
    rng = np.random.default_rng([seed, chunk_index])
    start = chunk_index * chunk_rows
    row_ids = np.arange(start, start + chunk_rows, dtype=np.int64)

    draws = rng.random(chunk_rows)
    uid = np.searchsorted(
        _user_cdf(STREAM_USERS, STREAM_USER_SKEW), draws
    ).astype(np.int64)
    tweet_time = (STREAM_EPOCH + row_ids).astype(np.int64)

    # Heavy-tailed popularity with retweet/likes correlation, mirroring
    # the bounded corpus; ``score`` is the blended ranking value the
    # streaming top-k maintains.
    popularity = rng.pareto(1.3, size=chunk_rows)
    retweet_count = np.floor(popularity * 3.0).astype(np.int32)
    likes_noise = rng.pareto(1.5, size=chunk_rows)
    likes_count = np.floor(
        popularity * 4.0 + likes_noise * 2.0
    ).astype(np.int32)
    score = (popularity * 3.0 + likes_noise).astype(np.float32)

    lang_code = rng.choice(
        len(LANGUAGE_CODE_WEIGHTS),
        size=chunk_rows,
        p=np.asarray(LANGUAGE_CODE_WEIGHTS),
    ).astype(np.int8)

    return {
        "id": row_ids,
        "uid": uid,
        "tweet_time": tweet_time,
        "retweet_count": retweet_count,
        "likes_count": likes_count,
        "lang_code": lang_code,
        "score": score,
    }


def tweet_stream(
    chunk_rows: int, seed: int = 0, start_chunk: int = 0
) -> Iterator[dict[str, np.ndarray]]:
    """The unbounded stream: yields chunks forever, one per tick.

    Lazy by construction — each ``next()`` generates exactly one chunk
    and holds no reference to previous chunks, so a consumer that drops
    its chunks runs in O(``chunk_rows``) memory no matter how long the
    stream runs.  ``start_chunk`` resumes mid-stream (chunks are
    independently seeded, so resumption is exact).
    """
    _validate(chunk_rows, seed)
    if start_chunk < 0:
        raise InvalidParameterError(
            f"start_chunk must be non-negative, got {start_chunk}"
        )
    chunk_index = start_chunk
    while True:
        yield stream_chunk(chunk_index, chunk_rows, seed)
        chunk_index += 1
