"""Workload generators: key distributions, record batches, and streams."""

from repro.data.distributions import (
    bucket_killer,
    decreasing,
    generate,
    increasing,
    list_distributions,
    uniform_doubles,
    uniform_floats,
    uniform_uints,
    zipf_integers,
)
from repro.data.records import RecordBatch, gather_payload, make_batch
from repro.data.stream import stream_chunk, tweet_stream

__all__ = [
    "bucket_killer",
    "decreasing",
    "generate",
    "increasing",
    "list_distributions",
    "uniform_doubles",
    "uniform_floats",
    "uniform_uints",
    "zipf_integers",
    "RecordBatch",
    "gather_payload",
    "make_batch",
    "stream_chunk",
    "tweet_stream",
]
