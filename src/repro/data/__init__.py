"""Workload generators: key distributions and key/value record batches."""

from repro.data.distributions import (
    bucket_killer,
    decreasing,
    generate,
    increasing,
    list_distributions,
    uniform_doubles,
    uniform_floats,
    uniform_uints,
    zipf_integers,
)
from repro.data.records import RecordBatch, gather_payload, make_batch

__all__ = [
    "bucket_killer",
    "decreasing",
    "generate",
    "increasing",
    "list_distributions",
    "uniform_doubles",
    "uniform_floats",
    "uniform_uints",
    "zipf_integers",
    "RecordBatch",
    "gather_payload",
    "make_batch",
]
