"""Key/value record batches for the payload experiments (Section 6.6).

The paper evaluates top-k over tuples of one to three 4-byte float keys plus
a 4-byte integer value: K, KV, KKV, KKKV.  A :class:`RecordBatch` stores the
columns separately (columnar layout, as a GPU database would) and knows its
total width, which drives the traffic terms of the cost models.

Section 6.6 also records the practical advice that for wide payloads one
should run top-k on (key, row-id) and gather the payload afterwards;
:func:`gather_payload` implements that final assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass
class RecordBatch:
    """A columnar batch of records: one or more key columns plus a value.

    ``keys[0]`` is the primary sort key; further key columns break ties in
    order (the paper's KKV / KKKV configurations).
    """

    keys: list[np.ndarray]
    values: np.ndarray

    def __post_init__(self) -> None:
        if not self.keys:
            raise InvalidParameterError("a record batch needs at least one key column")
        length = len(self.keys[0])
        for column in self.keys:
            if len(column) != length:
                raise InvalidParameterError("all key columns must have equal length")
        if len(self.values) != length:
            raise InvalidParameterError("value column length must match keys")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_keys(self) -> int:
        return len(self.keys)

    @property
    def row_bytes(self) -> int:
        """Bytes per record across all columns."""
        key_bytes = sum(column.dtype.itemsize for column in self.keys)
        return key_bytes + self.values.dtype.itemsize

    @property
    def total_bytes(self) -> int:
        return self.row_bytes * len(self)

    def composite_rank(self) -> np.ndarray:
        """A single float64 rank combining the key columns lexicographically.

        Keys drawn from U(0, 1) (the paper's setup) are combined by scaling:
        ties on the primary key (measure-zero for continuous keys, but
        present in real data) are broken by subsequent keys.  Tests use
        integer keys where ties are real to verify the lexicographic order.
        """
        rank = self.keys[0].astype(np.float64)
        scale = 1.0
        for column in self.keys[1:]:
            spread = float(column.max() - column.min()) if len(column) else 1.0
            scale /= max(spread, 1.0) * 2.0 ** 24
            rank = rank + column.astype(np.float64) * scale
        return rank

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """A new batch with the selected rows."""
        return RecordBatch(
            keys=[column[indices] for column in self.keys],
            values=self.values[indices],
        )


def make_batch(
    n: int, num_keys: int = 1, seed: int | None = 0, key_dtype=np.float32
) -> RecordBatch:
    """Generate the paper's KV / KKV / KKKV workloads.

    Keys are U(0, 1) floats; the value column is the row id (4-byte int),
    matching the (key, id) layout Section 6.6 recommends.
    """
    if num_keys < 1 or num_keys > 3:
        raise InvalidParameterError("the paper evaluates 1 to 3 key columns")
    rng = np.random.default_rng(seed)
    keys = [rng.random(n).astype(key_dtype) for _ in range(num_keys)]
    values = np.arange(n, dtype=np.int32)
    return RecordBatch(keys=keys, values=values)


def gather_payload(
    row_ids: np.ndarray, payload_columns: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Assemble full result tuples from row ids after a (key, id) top-k.

    This is the "construct the full tuple at the end" step of Section 6.6 —
    it touches only k rows, so its cost is negligible next to the scan.
    """
    return {name: column[row_ids] for name, column in payload_columns.items()}
