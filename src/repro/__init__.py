"""repro — reproduction of "Efficient Top-K Query Processing on Massively
Parallel Hardware" (Shanbhag, Pirk, Madden; SIGMOD 2018).

Quickstart::

    import numpy as np
    from repro import topk

    values = np.random.default_rng(0).random(1 << 20, dtype=np.float32)
    result = topk(values, k=32)
    print(result.values, result.algorithm, result.simulated_ms())

Package map
-----------

* :mod:`repro.core` — public ``topk`` API and the cost-model planner.
* :mod:`repro.bitonic` — bitonic top-k, the paper's contribution.
* :mod:`repro.algorithms` — the baseline algorithms (sort, per-thread
  heaps, radix select, bucket select).
* :mod:`repro.cpu` — CPU baselines (STL-style and hand-optimized priority
  queues, CPU bitonic top-k).
* :mod:`repro.gpu` — the simulated GPU substrate (devices, bank conflicts,
  occupancy, timing, micro SIMT executor).
* :mod:`repro.costmodel` — the Section 7 predictive cost models.
* :mod:`repro.engine` — a small columnar query engine with fused top-k
  operators (the MapD integration study).
* :mod:`repro.data` — workload generators.
* :mod:`repro.bench` — the benchmark harness regenerating every figure.
* :mod:`repro.resilience` — fault-tolerant execution (retries, fallback
  chains, result verification, the chaos suite) over the deterministic
  fault injector in :mod:`repro.gpu.faults`.
"""

from repro.algorithms.base import TopKResult, reference_topk
from repro.core.batched import batched_topk
from repro.core.chunked import chunked_topk
from repro.core.filtered import percentile, topk_where
from repro.core.planner import PlanChoice, TopKPlanner
from repro.core.topk import bottomk, topk
from repro.hybrid.adaptive import AdaptiveTopK
from repro.hybrid.cpu_gpu import HybridTopK
from repro.errors import (
    DeviceLostError,
    FaultError,
    InvalidParameterError,
    KernelTimeoutError,
    MemoryCorruptionError,
    ReproError,
    ResourceExhaustedError,
    SimulationError,
    TransferError,
    UnsupportedQueryError,
)
from repro.gpu.device import DeviceSpec, get_device, list_devices
from repro.gpu.faults import FaultInjector, FaultPlan, inject
from repro.resilience import (
    ResilientExecutor,
    RetryPolicy,
    resilient_topk,
)

__version__ = "1.0.0"

__all__ = [
    "TopKResult",
    "reference_topk",
    "PlanChoice",
    "TopKPlanner",
    "bottomk",
    "topk",
    "batched_topk",
    "chunked_topk",
    "percentile",
    "topk_where",
    "AdaptiveTopK",
    "HybridTopK",
    "DeviceLostError",
    "FaultError",
    "InvalidParameterError",
    "KernelTimeoutError",
    "MemoryCorruptionError",
    "ReproError",
    "ResourceExhaustedError",
    "SimulationError",
    "TransferError",
    "UnsupportedQueryError",
    "DeviceSpec",
    "get_device",
    "list_devices",
    "FaultInjector",
    "FaultPlan",
    "inject",
    "ResilientExecutor",
    "RetryPolicy",
    "resilient_topk",
    "__version__",
]
