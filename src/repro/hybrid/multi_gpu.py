"""Data-parallel top-k over multiple GPUs.

The conclusion's "multiple devices" direction, taken to homogeneous and
heterogeneous GPU groups: partition the input across the devices in
proportion to their modeled throughput, reduce each partition to its local
top-k concurrently, gather the ``k * devices`` candidates over PCIe, and
finish with one tiny reduction on the first device.

Scaling behaviour the model exposes (and the tests pin down):

* with homogeneous devices the speedup is nearly linear in the device
  count — top-k is reduction-friendly, the gather moves only k values per
  device;
* with heterogeneous devices, throughput-proportional splitting equalizes
  finish times, so adding a slower card still helps instead of dragging
  the fast one down to its pace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.bitonic.topk import BitonicTopK
from repro.costmodel.bitonic_model import BitonicModel
from repro.errors import DeviceLostError, InvalidParameterError, TransferError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device

#: Bounded retries for a failed PCIe gather before the error surfaces.
GATHER_RETRIES = 3

#: Simulated backoff before re-issuing a failed gather transfer.
GATHER_BACKOFF_SECONDS = 1e-3


@dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the work."""

    device: DeviceSpec
    fraction: float
    seconds: float


class MultiGpuTopK:
    """Top-k split across a group of (possibly heterogeneous) GPUs."""

    def __init__(self, devices: list[DeviceSpec] | None = None):
        if devices is None:
            devices = [get_device(), get_device()]
        if not devices:
            raise InvalidParameterError("at least one device is required")
        self.devices = list(devices)

    def plan_shares(self, n: int, k: int, dtype: np.dtype) -> list[DeviceShare]:
        """Throughput-proportional split with equalized finish times."""
        if n <= 0 or k <= 0:
            raise InvalidParameterError("n and k must be positive")
        dtype = np.dtype(dtype)
        probe = max(n, 1 << 22)
        per_element = [
            BitonicModel(device).predict_seconds(probe, min(k, 2048), dtype) / probe
            for device in self.devices
        ]
        throughput = [1.0 / cost for cost in per_element]
        total = sum(throughput)
        shares = []
        for device, speed, cost in zip(self.devices, throughput, per_element):
            fraction = speed / total
            shares.append(
                DeviceShare(
                    device=device,
                    fraction=fraction,
                    seconds=fraction * n * cost,
                )
            )
        return shares

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        with obs.span(
            "multi-gpu",
            category="scheduler",
            n=n,
            k=k,
            model_n=model,
            devices=len(self.devices),
        ) as span:
            shares = self.plan_shares(model, k, data.dtype)
            registry = obs.active_metrics()
            if registry is not None:
                registry.gauge("multi_gpu.devices").set(len(self.devices))

            boundaries = np.cumsum(
                [0] + [int(round(share.fraction * n)) for share in shares]
            )
            boundaries[-1] = n
            candidate_values: list[np.ndarray] = []
            candidate_rows: list[np.ndarray] = []
            lost: list[tuple[int, int, int]] = []
            alive = list(range(len(shares)))
            # Per-device runs execute functionally; their kernels are
            # re-accounted by the scheduler's own concurrent/gather/reduce
            # trace, so suspend observation to avoid double-counting.
            with obs.suspended():
                for index, (share, start, stop) in enumerate(
                    zip(shares, boundaries, boundaries[1:])
                ):
                    slice_ = data[start:stop]
                    if len(slice_) == 0:
                        continue
                    local_k = min(k, len(slice_))
                    try:
                        faults.fault_point(
                            "device-launch", f"{share.device.name}#{index}"
                        )
                        result = BitonicTopK(share.device).run(slice_, local_k)
                    except DeviceLostError:
                        lost.append((index, start, stop))
                        alive.remove(index)
                        continue
                    candidate_values.append(result.values)
                    candidate_rows.append(result.indices + start)

            redistributed = 0
            if lost:
                redistributed = self._redistribute(
                    data, k, shares, lost, alive, candidate_values, candidate_rows
                )
            values = np.concatenate(candidate_values)
            rows = np.concatenate(candidate_rows)
            order = np.argsort(values, kind="stable")[::-1][:k]

            first = self.devices[alive[0]]
            trace = ExecutionTrace()
            concurrent = trace.launch("multi-gpu-concurrent")
            concurrent.fixed_seconds = max(share.seconds for share in shares)
            if lost:
                self._account_redistribution(
                    trace, data, model, shares, lost, alive, first
                )
            gather = self._gather(trace, first)
            gather_bytes = float(len(candidate_values) * k) * data.dtype.itemsize
            gather.fixed_seconds = gather_bytes / first.pcie_bandwidth
            reduce = trace.launch("multi-gpu-reduce")
            reduce.add_global_read(gather_bytes)
            reduce.add_global_write(float(k) * data.dtype.itemsize)
            trace.notes["devices"] = len(self.devices)
            trace.notes["devices_lost"] = len(lost)
            trace.notes["slices_redistributed"] = redistributed
            for index, share in enumerate(shares):
                trace.notes[f"fraction_{index}"] = share.fraction
            from repro.observability.instrument import record_trace

            span.set(
                simulated_ms=record_trace(trace, first),
                devices_lost=len(lost),
            )
            if lost:
                registry = obs.active_metrics()
                if registry is not None:
                    registry.counter("resilience.devices_lost").inc(len(lost))
        return TopKResult(
            values=values[order].copy(),
            indices=rows[order].copy(),
            trace=trace,
            algorithm=f"multi-gpu-{len(self.devices)}",
            k=k,
            n=n,
            model_n=model,
        )

    # -- device-loss recovery --------------------------------------------

    def _redistribute(
        self,
        data: np.ndarray,
        k: int,
        shares: list[DeviceShare],
        lost: list[tuple[int, int, int]],
        alive: list[int],
        candidate_values: list[np.ndarray],
        candidate_rows: list[np.ndarray],
    ) -> int:
        """Re-run every lost device's slice on the survivors.

        Each lost slice is split evenly across the surviving devices; a
        survivor that dies mid-recovery is dropped and its piece re-queued,
        so recovery tolerates cascading losses until no device remains —
        at which point the loss surfaces as a typed DeviceLostError.
        Returns the number of recovered pieces.
        """
        from collections import deque

        if not alive:
            raise DeviceLostError(
                f"all {len(shares)} devices lost; nothing left to "
                f"redistribute the work to",
                site="device-launch",
            )
        pending: deque[tuple[int, int]] = deque()
        for _, start, stop in lost:
            bounds = np.linspace(start, stop, len(alive) + 1).astype(int)
            for piece_start, piece_stop in zip(bounds, bounds[1:]):
                if piece_stop > piece_start:
                    pending.append((int(piece_start), int(piece_stop)))
        processed = 0
        rotation = 0
        with obs.suspended():
            while pending:
                if not alive:
                    raise DeviceLostError(
                        "all devices lost during redistribution",
                        site="device-launch",
                    )
                piece_start, piece_stop = pending.popleft()
                device_index = alive[rotation % len(alive)]
                rotation += 1
                piece = data[piece_start:piece_stop]
                local_k = min(k, len(piece))
                device = self.devices[device_index]
                try:
                    faults.fault_point(
                        "device-launch",
                        f"{device.name}#{device_index}:redistribute",
                    )
                    result = BitonicTopK(device).run(piece, local_k)
                except DeviceLostError:
                    alive.remove(device_index)
                    pending.append((piece_start, piece_stop))
                    continue
                candidate_values.append(result.values)
                candidate_rows.append(result.indices + piece_start)
                processed += 1
        return processed

    def _account_redistribution(
        self,
        trace: ExecutionTrace,
        data: np.ndarray,
        model: int,
        shares: list[DeviceShare],
        lost: list[tuple[int, int, int]],
        alive: list[int],
        first: DeviceSpec,
    ) -> None:
        """Charge the recovery cost: re-staging the lost slices over PCIe
        plus recomputing them, split across the survivors."""
        lost_elements = sum(shares[index].fraction for index, _, _ in lost) * model
        lost_bytes = lost_elements * data.dtype.itemsize
        recompute = 0.0
        for index in alive:
            share = shares[index]
            per_element = share.seconds / max(share.fraction * model, 1.0)
            recompute = max(
                recompute, (lost_elements / len(alive)) * per_element
            )
        redistribute = trace.launch("multi-gpu-redistribute")
        redistribute.fixed_seconds = (
            lost_bytes / first.pcie_bandwidth + recompute
        )

    def _gather(self, trace: ExecutionTrace, device: DeviceSpec):
        """Launch the gather kernel, retrying failed PCIe transfers.

        A :class:`TransferError` injected at the ``pcie-transfer`` site is
        retried up to ``GATHER_RETRIES`` times with exponential backoff in
        simulated time before it surfaces.
        """
        attempt = 0
        while True:
            try:
                faults.fault_point("pcie-transfer", "multi-gpu-gather")
                return trace.launch("multi-gpu-gather")
            except TransferError:
                attempt += 1
                if attempt > GATHER_RETRIES:
                    raise
                from repro.gpu.counters import KernelCounters
                from repro.gpu.timing import BACKOFF_KERNEL

                backoff = GATHER_BACKOFF_SECONDS * 2 ** (attempt - 1)
                trace.kernels.append(
                    KernelCounters(name=BACKOFF_KERNEL, fixed_seconds=backoff)
                )
                registry = obs.active_metrics()
                if registry is not None:
                    registry.counter(
                        "resilience.retries",
                        algorithm="multi-gpu",
                        fault="TransferError",
                    ).inc()
