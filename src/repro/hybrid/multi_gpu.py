"""Data-parallel top-k over multiple GPUs.

The conclusion's "multiple devices" direction, taken to homogeneous and
heterogeneous GPU groups: partition the input across the devices in
proportion to their modeled throughput, reduce each partition to its local
top-k concurrently, gather the ``k * devices`` candidates over PCIe, and
finish with one tiny reduction on the first device.

Scaling behaviour the model exposes (and the tests pin down):

* with homogeneous devices the speedup is nearly linear in the device
  count — top-k is reduction-friendly, the gather moves only k values per
  device;
* with heterogeneous devices, throughput-proportional splitting equalizes
  finish times, so adding a slower card still helps instead of dragging
  the fast one down to its pace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.bitonic.topk import BitonicTopK
from repro.costmodel.bitonic_model import BitonicModel
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device


@dataclass(frozen=True)
class DeviceShare:
    """One device's slice of the work."""

    device: DeviceSpec
    fraction: float
    seconds: float


class MultiGpuTopK:
    """Top-k split across a group of (possibly heterogeneous) GPUs."""

    def __init__(self, devices: list[DeviceSpec] | None = None):
        if devices is None:
            devices = [get_device(), get_device()]
        if not devices:
            raise InvalidParameterError("at least one device is required")
        self.devices = list(devices)

    def plan_shares(self, n: int, k: int, dtype: np.dtype) -> list[DeviceShare]:
        """Throughput-proportional split with equalized finish times."""
        if n <= 0 or k <= 0:
            raise InvalidParameterError("n and k must be positive")
        dtype = np.dtype(dtype)
        probe = max(n, 1 << 22)
        per_element = [
            BitonicModel(device).predict_seconds(probe, min(k, 2048), dtype) / probe
            for device in self.devices
        ]
        throughput = [1.0 / cost for cost in per_element]
        total = sum(throughput)
        shares = []
        for device, speed, cost in zip(self.devices, throughput, per_element):
            fraction = speed / total
            shares.append(
                DeviceShare(
                    device=device,
                    fraction=fraction,
                    seconds=fraction * n * cost,
                )
            )
        return shares

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        with obs.span(
            "multi-gpu",
            category="scheduler",
            n=n,
            k=k,
            model_n=model,
            devices=len(self.devices),
        ) as span:
            shares = self.plan_shares(model, k, data.dtype)
            registry = obs.active_metrics()
            if registry is not None:
                registry.gauge("multi_gpu.devices").set(len(self.devices))

            boundaries = np.cumsum(
                [0] + [int(round(share.fraction * n)) for share in shares]
            )
            boundaries[-1] = n
            candidate_values: list[np.ndarray] = []
            candidate_rows: list[np.ndarray] = []
            # Per-device runs execute functionally; their kernels are
            # re-accounted by the scheduler's own concurrent/gather/reduce
            # trace, so suspend observation to avoid double-counting.
            with obs.suspended():
                for share, start, stop in zip(shares, boundaries, boundaries[1:]):
                    slice_ = data[start:stop]
                    if len(slice_) == 0:
                        continue
                    local_k = min(k, len(slice_))
                    result = BitonicTopK(share.device).run(slice_, local_k)
                    candidate_values.append(result.values)
                    candidate_rows.append(result.indices + start)
            values = np.concatenate(candidate_values)
            rows = np.concatenate(candidate_rows)
            order = np.argsort(values, kind="stable")[::-1][:k]

            first = self.devices[0]
            trace = ExecutionTrace()
            concurrent = trace.launch("multi-gpu-concurrent")
            concurrent.fixed_seconds = max(share.seconds for share in shares)
            gather = trace.launch("multi-gpu-gather")
            gather_bytes = float(len(self.devices) * k) * data.dtype.itemsize
            gather.fixed_seconds = gather_bytes / first.pcie_bandwidth
            reduce = trace.launch("multi-gpu-reduce")
            reduce.add_global_read(gather_bytes)
            reduce.add_global_write(float(k) * data.dtype.itemsize)
            trace.notes["devices"] = len(self.devices)
            for index, share in enumerate(shares):
                trace.notes[f"fraction_{index}"] = share.fraction
            from repro.observability.instrument import record_trace

            span.set(simulated_ms=record_trace(trace, first))
        return TopKResult(
            values=values[order].copy(),
            indices=rows[order].copy(),
            trace=trace,
            algorithm=f"multi-gpu-{len(self.devices)}",
            k=k,
            n=n,
            model_n=model,
        )
