"""Hybrid and adaptive top-k — the paper's stated future-work directions.

Two extensions beyond the paper's evaluated scope (its conclusion calls
out both): splitting one query across CPU and GPU, and adapting the
algorithm choice to the observed data distribution.
"""

from repro.hybrid.adaptive import AdaptiveTopK, SampleStatistics, measure_sample
from repro.hybrid.cpu_gpu import HybridSplit, HybridTopK
from repro.hybrid.multi_gpu import DeviceShare, MultiGpuTopK

__all__ = [
    "AdaptiveTopK",
    "SampleStatistics",
    "measure_sample",
    "HybridSplit",
    "HybridTopK",
    "DeviceShare",
    "MultiGpuTopK",
]
