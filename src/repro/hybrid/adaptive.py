"""Adaptive algorithm selection from a data sample.

The static planner (:class:`repro.core.planner.TopKPlanner`) needs a
workload profile; real systems do not know the distribution up front.
Section 6.4 shows the stakes: radix select is excellent on uniform keys
but collapses on its adversarial distribution, while the per-thread heap
collapses on sorted input.  An *adaptive* selector closes the gap by
sniffing a small sample:

* **sortedness** — the fraction of ascending adjacent pairs; near 1.0
  predicts the per-thread worst case (every element inserts);
* **radix survivor fractions** — running the real radix bucket selection
  on the sample estimates the eta_i sequence, which both detects
  bucket-killer-like concentration and measures the real reduction rate
  of e.g. U(0, 1) floats (eta_0 ~ 0.5) vs uniform uints (eta_0 ~ 1/256).

The measured statistics parameterize the Section 7 cost models, and the
cheapest feasible algorithm wins — so a bucket killer is routed to bitonic
and uniform uints at large k to radix select, with no user-provided hints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms import keys as keycodec
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.algorithms.radix_sort import DIGIT_BITS
from repro.algorithms.registry import create
from repro.core.planner import PlanChoice, TopKPlanner
from repro.costmodel.base import WorkloadProfile
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device


@dataclass(frozen=True)
class SampleStatistics:
    """Distribution statistics measured from a sample."""

    sortedness: float
    radix_survivor_fractions: tuple[float, ...]

    @property
    def looks_sorted(self) -> bool:
        return self.sortedness > 0.95

    @property
    def looks_adversarial_for_radix(self) -> bool:
        """True when early passes achieve almost no reduction."""
        return self.radix_survivor_fractions[0] > 0.9


def measure_sample(sample: np.ndarray, k_hint: int = 64) -> SampleStatistics:
    """Compute the selector's statistics from a sample."""
    if len(sample) < 2:
        raise InvalidParameterError("the sample needs at least two elements")
    ascending = np.count_nonzero(np.diff(sample.astype(np.float64)) >= 0)
    sortedness = ascending / (len(sample) - 1)

    codes = keycodec.encode(np.ascontiguousarray(sample))
    bits = keycodec.key_bits(sample.dtype)
    fractions: list[float] = []
    candidates = codes
    remaining = min(k_hint, len(sample))
    for shift in range(bits - DIGIT_BITS, -DIGIT_BITS, -DIGIT_BITS):
        if len(candidates) <= max(remaining, 1):
            break
        digits = keycodec.digit(candidates, shift, DIGIT_BITS)
        histogram = np.bincount(digits, minlength=1 << DIGIT_BITS)
        at_least = np.cumsum(histogram[::-1])[::-1]
        bucket = int(np.max(np.flatnonzero(at_least >= remaining)))
        survivors = int(histogram[bucket])
        fractions.append(survivors / len(candidates))
        emitted = int((digits > bucket).sum())
        remaining = max(1, remaining - emitted)
        candidates = candidates[digits == bucket]
    if not fractions:
        fractions = [1.0 / 256]
    while len(fractions) < 4:
        fractions.append(fractions[-1])
    return SampleStatistics(
        sortedness=sortedness,
        radix_survivor_fractions=tuple(fractions[:4]),
    )


class AdaptiveTopK:
    """Sample, profile, choose, run."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        sample_size: int = 4096,
        seed: int = 0,
    ):
        self.device = device or get_device()
        self.sample_size = sample_size
        self.seed = seed
        self.planner = TopKPlanner(self.device)

    def sample(self, data: np.ndarray) -> np.ndarray:
        """A cheap sample: a random slice start keeps order structure
        visible (pure random picks would destroy sortedness evidence)."""
        if len(data) <= self.sample_size:
            return data
        rng = np.random.default_rng(self.seed)
        start = int(rng.integers(0, len(data) - self.sample_size))
        return data[start : start + self.sample_size]

    def profile(self, data: np.ndarray, k: int) -> WorkloadProfile:
        """Measured workload profile for the cost models."""
        with obs.span(
            "adaptive-sample", category="scheduler", sample_size=self.sample_size
        ) as span:
            statistics = measure_sample(self.sample(data), k)
            span.set(
                sortedness=statistics.sortedness,
                eta_0=statistics.radix_survivor_fractions[0],
            )
            registry = obs.active_metrics()
            if registry is not None:
                registry.gauge("adaptive.sortedness").set(statistics.sortedness)
                registry.gauge("adaptive.eta_0").set(
                    statistics.radix_survivor_fractions[0]
                )
        return WorkloadProfile(
            name="sampled",
            radix_survivor_fractions=statistics.radix_survivor_fractions,
            every_element_inserts=statistics.looks_sorted,
        )

    def choose(self, data: np.ndarray, k: int, model_n: int | None = None) -> PlanChoice:
        """The planner's decision under the measured profile."""
        profile = self.profile(data, k)
        return self.planner.choose(model_n or len(data), k, data.dtype, profile)

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        with obs.span(
            "adaptive", category="scheduler", n=len(data), k=k
        ) as span:
            choice = self.choose(data, k, model_n)
            candidates = choice.fallback_chain()
            result = None
            for position, name in enumerate(candidates):
                try:
                    result = create(name, self.device).run(
                        data, k, model_n=model_n
                    )
                    break
                except ResourceExhaustedError:
                    # The sampled profile predicted this candidate would
                    # fit but a hard resource limit disagreed at runtime:
                    # treat it as infeasible and take the next-cheapest.
                    if position == len(candidates) - 1:
                        raise
                    registry = obs.active_metrics()
                    if registry is not None:
                        registry.counter(
                            "planner.runtime_infeasible", algorithm=name
                        ).inc()
            assert result is not None
            span.set(algorithm=result.algorithm)
            registry = obs.active_metrics()
            if registry is not None:
                registry.counter(
                    "adaptive.decisions", algorithm=result.algorithm
                ).inc()
        result.trace.notes["adaptive_choice"] = 1.0
        return result
