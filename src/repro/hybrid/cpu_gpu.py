"""Hybrid CPU + GPU top-k (the paper's closing future-work direction).

The conclusion suggests "hybrid solutions [that] involve multiple devices
(CPUs and GPUs)".  Because top-k is embarrassingly splittable — partition
the input, take each partition's top-k, reduce — the two processors can
work on disjoint slices concurrently.  The only decision is the split
fraction, which the cost models make analytic:

    minimize  max( T_gpu(f * n),  T_cpu((1 - f) * n) )

Both sides are (to first order) linear in their share, so the optimum
equalizes the two finish times: ``f* = t_cpu / (t_cpu + t_gpu)`` where
``t_x`` is the device's per-element cost.  The implementation estimates the
per-element costs from the cost models, splits, runs both sides
functionally, and reduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.bitonic.topk import BitonicTopK
from repro.costmodel.bitonic_model import BitonicModel
from repro.cpu.pq_topk import HandPqTopK
from repro.cpu.spec import I7_6900, CpuSpec
from repro.errors import FaultError, InvalidParameterError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device


@dataclass(frozen=True)
class HybridSplit:
    """The planned division of work."""

    gpu_fraction: float
    gpu_seconds: float
    cpu_seconds: float

    @property
    def makespan(self) -> float:
        """Finish time of the slower side (both run concurrently)."""
        return max(self.gpu_seconds, self.cpu_seconds)


class HybridTopK:
    """Split a top-k between the simulated GPU and CPU."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        cpu: CpuSpec = I7_6900,
    ):
        self.device = device or get_device()
        self.cpu = cpu
        self._gpu_algorithm = BitonicTopK(self.device)
        self._cpu_algorithm = HandPqTopK(self.device, cpu)

    def plan_split(self, n: int, k: int, dtype: np.dtype) -> HybridSplit:
        """Cost-model-optimal split fraction for (n, k)."""
        if n <= 0 or k <= 0:
            raise InvalidParameterError("n and k must be positive")
        dtype = np.dtype(dtype)
        probe = max(n, 1 << 20)
        gpu_per_element = BitonicModel(self.device).predict_seconds(
            probe, min(k, 2048), dtype
        ) / probe
        # CPU per-element cost: memory-bound scan (the uniform-data regime).
        cpu_per_element = dtype.itemsize / self.cpu.memory_bandwidth
        fraction = cpu_per_element / (cpu_per_element + gpu_per_element)
        gpu_share = fraction * n
        cpu_share = n - gpu_share
        return HybridSplit(
            gpu_fraction=fraction,
            gpu_seconds=gpu_share * gpu_per_element,
            cpu_seconds=cpu_share * cpu_per_element,
        )

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        with obs.span(
            "hybrid-cpu-gpu", category="scheduler", n=n, k=k, model_n=model
        ) as span:
            split = self.plan_split(model, k, data.dtype)
            span.set(gpu_fraction=split.gpu_fraction)
            registry = obs.active_metrics()
            if registry is not None:
                registry.gauge("hybrid.gpu_fraction").set(split.gpu_fraction)

            boundary = int(round(split.gpu_fraction * n))
            boundary = min(max(boundary, 0), n)
            parts: list[TopKResult] = []
            offsets: list[int] = []
            # The inner runs execute functionally; their kernels are
            # re-accounted by this scheduler's own concurrent/reduce trace,
            # so suspend observation to avoid double-counting them.
            gpu_lost = False
            with obs.suspended():
                if boundary >= 1:
                    gpu_k = min(k, boundary)
                    try:
                        faults.fault_point("device-launch", "hybrid-gpu-side")
                        parts.append(
                            self._gpu_algorithm.run(data[:boundary], gpu_k)
                        )
                        offsets.append(0)
                    except FaultError:
                        # GPU side lost mid-run: the CPU absorbs the whole
                        # input instead of just its share.  Slower — the
                        # trace accounting below charges the CPU-only cost
                        # — but the answer stays exact.
                        gpu_lost = True
                        boundary = 0
                if n - boundary >= 1:
                    cpu_k = min(k, n - boundary)
                    with faults.suspended():
                        parts.append(
                            self._cpu_algorithm.run(data[boundary:], cpu_k)
                        )
                    offsets.append(boundary)

            values = np.concatenate([part.values for part in parts])
            rows = np.concatenate(
                [part.indices + offset for part, offset in zip(parts, offsets)]
            )
            order = np.argsort(values, kind="stable")[::-1][:k]

            trace = ExecutionTrace()
            concurrent = trace.launch("hybrid-concurrent")
            if gpu_lost:
                # The CPU redid the entire input after the GPU died; charge
                # the CPU-only scan cost on top of the wasted GPU share.
                cpu_per_element = (
                    data.dtype.itemsize / self.cpu.memory_bandwidth
                )
                concurrent.fixed_seconds = (
                    split.gpu_seconds + model * cpu_per_element
                )
            else:
                concurrent.fixed_seconds = split.makespan
            reduce = trace.launch("hybrid-reduce")
            reduce.add_global_read(float(2 * k) * data.dtype.itemsize)
            trace.notes["gpu_fraction"] = split.gpu_fraction
            trace.notes["gpu_seconds"] = split.gpu_seconds
            trace.notes["cpu_seconds"] = split.cpu_seconds
            trace.notes["gpu_lost"] = float(gpu_lost)
            if gpu_lost:
                registry = obs.active_metrics()
                if registry is not None:
                    registry.counter(
                        "resilience.devices_lost", scheduler="hybrid-cpu-gpu"
                    ).inc()
            from repro.observability.instrument import record_trace

            span.set(simulated_ms=record_trace(trace, self.device))
        return TopKResult(
            values=values[order].copy(),
            indices=rows[order].copy(),
            trace=trace,
            algorithm="hybrid-cpu-gpu",
            k=k,
            n=n,
            model_n=model,
        )
