"""Batched top-k: one top-k per row of a matrix.

The paper's introduction cites open feature requests in TensorFlow and
ArrayFire for a GPU top-k operator; both frameworks need the *batched*
form (top-k per row of a [batch, n] tensor).  The bitonic network extends
to it for free: every compare-exchange step applies elementwise along the
row axis, so one fused kernel serves the whole batch and the per-row
launches amortize — exactly the regime where bitonic's uniformity shines.

Functionally the operators here are the 2-D versions of
:mod:`repro.bitonic.operators`; the execution trace is the single-row
kernel pipeline with its traffic scaled by the batch size (the launch
count does not scale — the point of batching).
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult
from repro.bitonic.kernels import build_trace
from repro.bitonic.network import (
    Step,
    local_sort_steps,
    rebuild_steps,
    validate_power_of_two,
)
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device


def apply_step_batched(
    matrix: np.ndarray, step: Step, payload: np.ndarray | None = None
) -> None:
    """One compare-exchange step applied to every row, in place."""
    n = matrix.shape[1]
    if n % (2 * step.inc) != 0:
        raise InvalidParameterError(
            f"row length {n} is not a multiple of the step block {2 * step.inc}"
        )
    t = np.arange(n // 2)
    low = t & (step.inc - 1)
    i = (t << 1) - low
    partner = i + step.inc
    reverse = (i & step.direction_period) == 0
    left = matrix[:, i]
    right = matrix[:, partner]
    swap = np.logical_xor(reverse[np.newaxis, :], left < right)
    matrix[:, i] = np.where(swap, right, left)
    matrix[:, partner] = np.where(swap, left, right)
    if payload is not None:
        left_payload = payload[:, i]
        right_payload = payload[:, partner]
        payload[:, i] = np.where(swap, right_payload, left_payload)
        payload[:, partner] = np.where(swap, left_payload, right_payload)


def _merge_batched(
    matrix: np.ndarray, k: int, payload: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    rows = matrix.shape[0]
    pairs = matrix.reshape(rows, -1, 2, k)
    keep_first = pairs[:, :, 0, :] >= pairs[:, :, 1, :]
    merged = np.where(keep_first, pairs[:, :, 0, :], pairs[:, :, 1, :])
    merged = merged.reshape(rows, -1)
    merged_payload = None
    if payload is not None:
        payload_pairs = payload.reshape(rows, -1, 2, k)
        merged_payload = np.where(
            keep_first, payload_pairs[:, :, 0, :], payload_pairs[:, :, 1, :]
        ).reshape(rows, -1)
    return merged, merged_payload


def batched_reduce_topk(
    matrix: np.ndarray, k: int, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Reduce every row of ``matrix`` (power-of-two width) to its top-k."""
    validate_power_of_two(k, "k")
    n = matrix.shape[1]
    validate_power_of_two(n, "row length")
    if k > n:
        raise InvalidParameterError("k cannot exceed the row length")
    if k == n:
        order = np.argsort(matrix, axis=1, kind="stable")[:, ::-1]
        sorted_matrix = np.take_along_axis(matrix, order, axis=1)
        sorted_payload = (
            np.take_along_axis(payload, order, axis=1) if payload is not None else None
        )
        return sorted_matrix, sorted_payload
    if k == 1:
        while matrix.shape[1] > 1:
            matrix, payload = _merge_batched(matrix, 1, payload)
        return matrix, payload
    for step in local_sort_steps(k):
        apply_step_batched(matrix, step, payload)
    while matrix.shape[1] > k:
        matrix, payload = _merge_batched(matrix, k, payload)
        if matrix.shape[1] > k:
            for step in rebuild_steps(k):
                apply_step_batched(matrix, step, payload)
    order = np.argsort(matrix, axis=1, kind="stable")[:, ::-1]
    sorted_matrix = np.take_along_axis(matrix, order, axis=1)
    sorted_payload = (
        np.take_along_axis(payload, order, axis=1) if payload is not None else None
    )
    return sorted_matrix, sorted_payload


def batched_topk(
    matrix: np.ndarray,
    k: int,
    device: DeviceSpec | None = None,
    flags: OptimizationFlags = FULL,
    model_rows: int | None = None,
) -> TopKResult:
    """Top-k of every row of a [batch, n] array.

    Returns a :class:`TopKResult` whose ``values`` and ``indices`` are
    [batch, k] arrays (indices are column positions within each row).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise InvalidParameterError("batched top-k expects a 2-D array")
    rows, n = matrix.shape
    if rows == 0 or n == 0:
        raise InvalidParameterError("batched top-k needs a non-empty matrix")
    if k <= 0 or k > n:
        raise InvalidParameterError(f"k = {k} must be in [1, {n}]")
    device = device or get_device()

    network_k = 1 << max(0, (k - 1).bit_length())
    padded_n = max(1 << max(0, (n - 1).bit_length()), network_k)
    with obs.span(
        "batched-topk",
        category="api",
        rows=rows,
        n=n,
        k=k,
        network_k=network_k,
    ) as span:
        if matrix.dtype.kind == "f":
            sentinel = -np.inf
        else:
            sentinel = np.iinfo(matrix.dtype).min
        working = np.full((rows, padded_n), sentinel, dtype=matrix.dtype)
        working[:, :n] = matrix
        payload = np.broadcast_to(
            np.arange(padded_n, dtype=np.int64), (rows, padded_n)
        ).copy()
        values, indices = batched_reduce_topk(working, network_k, payload)

        # The single-row kernel pipeline, traffic scaled by the batch size but
        # launch count unchanged (one fused launch covers all rows).
        single_row = build_trace(
            padded_n, network_k, matrix.dtype.itemsize, flags, device
        )
        batch = model_rows or rows
        trace = ExecutionTrace(notes=dict(single_row.notes))
        trace.kernels = [kernel.scaled(batch) for kernel in single_row.kernels]
        trace.notes["batch_rows"] = batch
        from repro.observability.instrument import record_trace

        span.set(simulated_ms=record_trace(trace, device))
    return TopKResult(
        values=values[:, :k].copy(),
        indices=indices[:, :k].copy(),
        trace=trace,
        algorithm="batched-bitonic",
        k=k,
        n=rows * n,
        model_n=batch * padded_n,
    )
