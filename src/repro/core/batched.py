"""Batched top-k: one top-k per row of a matrix.

The paper's introduction cites open feature requests in TensorFlow and
ArrayFire for a GPU top-k operator; both frameworks need the *batched*
form (top-k per row of a [batch, n] tensor).  The bitonic network extends
to it for free: every compare-exchange step applies elementwise along the
row axis, so one fused kernel serves the whole batch and the per-row
launches amortize — exactly the regime where bitonic's uniformity shines.

Functionally the operators here are the 2-D versions of
:mod:`repro.bitonic.operators`; the execution trace is the single-row
kernel pipeline with its traffic scaled by the batch size (the launch
count does not scale — the point of batching).
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import SUPPORTED_DTYPES, TopKResult
from repro.bitonic.kernels import build_trace
from repro.bitonic.topk import repair_padded_indices
from repro.bitonic.network import (
    Step,
    local_sort_steps,
    rebuild_steps,
    validate_power_of_two,
)
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device


def apply_step_batched(
    matrix: np.ndarray, step: Step, payload: np.ndarray | None = None
) -> None:
    """One compare-exchange step applied to every row, in place.

    The step's lower partners ``i = 2t - (t & (inc - 1))`` are exactly the
    first ``inc`` columns of each ``2 * inc`` block, so on contiguous
    arrays the exchange runs on reshaped block views (contiguous strided
    copies) instead of fancy-indexed gather/scatter — the fused-launch
    fast path the serving batcher relies on.
    """
    n = matrix.shape[1]
    inc = step.inc
    if n % (2 * inc) != 0:
        raise InvalidParameterError(
            f"row length {n} is not a multiple of the step block {2 * inc}"
        )
    contiguous = matrix.flags.c_contiguous and (
        payload is None or payload.flags.c_contiguous
    )
    if not contiguous:
        _apply_step_batched_gather(matrix, step, payload)
        return
    rows = matrix.shape[0]
    view = matrix.reshape(rows, -1, 2, inc)
    left = view[:, :, 0, :]
    right = view[:, :, 1, :]
    blocks = n // (2 * inc)
    i = (np.arange(blocks) * 2 * inc)[:, None] + np.arange(inc)[None, :]
    reverse = (i & step.direction_period) == 0
    swap = np.logical_xor(reverse, left < right)
    new_left = np.where(swap, right, left)
    view[:, :, 1, :] = np.where(swap, left, right)
    view[:, :, 0, :] = new_left
    if payload is not None:
        payload_view = payload.reshape(rows, -1, 2, inc)
        left_payload = payload_view[:, :, 0, :]
        right_payload = payload_view[:, :, 1, :]
        new_left_payload = np.where(swap, right_payload, left_payload)
        payload_view[:, :, 1, :] = np.where(swap, left_payload, right_payload)
        payload_view[:, :, 0, :] = new_left_payload


def _apply_step_batched_gather(
    matrix: np.ndarray, step: Step, payload: np.ndarray | None
) -> None:
    """Fancy-indexed fallback for non-contiguous inputs (reshape would
    silently copy, losing the in-place writes)."""
    n = matrix.shape[1]
    t = np.arange(n // 2)
    low = t & (step.inc - 1)
    i = (t << 1) - low
    partner = i + step.inc
    reverse = (i & step.direction_period) == 0
    left = matrix[:, i]
    right = matrix[:, partner]
    swap = np.logical_xor(reverse[np.newaxis, :], left < right)
    matrix[:, i] = np.where(swap, right, left)
    matrix[:, partner] = np.where(swap, left, right)
    if payload is not None:
        left_payload = payload[:, i]
        right_payload = payload[:, partner]
        payload[:, i] = np.where(swap, right_payload, left_payload)
        payload[:, partner] = np.where(swap, left_payload, right_payload)


def _merge_batched(
    matrix: np.ndarray, k: int, payload: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    rows = matrix.shape[0]
    pairs = matrix.reshape(rows, -1, 2, k)
    keep_first = pairs[:, :, 0, :] >= pairs[:, :, 1, :]
    merged = np.where(keep_first, pairs[:, :, 0, :], pairs[:, :, 1, :])
    merged = merged.reshape(rows, -1)
    merged_payload = None
    if payload is not None:
        payload_pairs = payload.reshape(rows, -1, 2, k)
        merged_payload = np.where(
            keep_first, payload_pairs[:, :, 0, :], payload_pairs[:, :, 1, :]
        ).reshape(rows, -1)
    return merged, merged_payload


def batched_reduce_topk(
    matrix: np.ndarray, k: int, payload: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Reduce every row of ``matrix`` (power-of-two width) to its top-k."""
    validate_power_of_two(k, "k")
    n = matrix.shape[1]
    validate_power_of_two(n, "row length")
    if k > n:
        raise InvalidParameterError("k cannot exceed the row length")
    if k == n:
        order = np.argsort(matrix, axis=1, kind="stable")[:, ::-1]
        sorted_matrix = np.take_along_axis(matrix, order, axis=1)
        sorted_payload = (
            np.take_along_axis(payload, order, axis=1) if payload is not None else None
        )
        return sorted_matrix, sorted_payload
    if k == 1:
        while matrix.shape[1] > 1:
            matrix, payload = _merge_batched(matrix, 1, payload)
        return matrix, payload
    for step in local_sort_steps(k):
        apply_step_batched(matrix, step, payload)
    while matrix.shape[1] > k:
        matrix, payload = _merge_batched(matrix, k, payload)
        if matrix.shape[1] > k:
            for step in rebuild_steps(k):
                apply_step_batched(matrix, step, payload)
    order = np.argsort(matrix, axis=1, kind="stable")[:, ::-1]
    sorted_matrix = np.take_along_axis(matrix, order, axis=1)
    sorted_payload = (
        np.take_along_axis(payload, order, axis=1) if payload is not None else None
    )
    return sorted_matrix, sorted_payload


def batched_topk(
    matrix: np.ndarray,
    k: int,
    device: DeviceSpec | None = None,
    flags: OptimizationFlags = FULL,
    model_rows: int | None = None,
) -> TopKResult:
    """Top-k of every row of a [batch, n] array.

    Returns a :class:`TopKResult` whose ``values`` and ``indices`` are
    [batch, k] arrays (indices are column positions within each row).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise InvalidParameterError("batched top-k expects a 2-D array")
    if matrix.dtype.type not in SUPPORTED_DTYPES:
        supported = ", ".join(t.__name__ for t in SUPPORTED_DTYPES)
        raise InvalidParameterError(
            f"unsupported dtype {matrix.dtype}; supported: {supported}"
        )
    rows, n = matrix.shape
    if rows == 0 or n == 0:
        raise InvalidParameterError("batched top-k needs a non-empty matrix")
    if k <= 0 or k > n:
        raise InvalidParameterError(f"k = {k} must be in [1, {n}]")
    device = device or get_device()

    network_k = 1 << max(0, (k - 1).bit_length())
    padded_n = max(1 << max(0, (n - 1).bit_length()), network_k)
    with obs.span(
        "batched-topk",
        category="api",
        rows=rows,
        n=n,
        k=k,
        network_k=network_k,
    ) as span:
        if matrix.dtype.kind == "f":
            sentinel = -np.inf
        else:
            sentinel = np.iinfo(matrix.dtype).min
        working = np.full((rows, padded_n), sentinel, dtype=matrix.dtype)
        working[:, :n] = matrix
        # Column positions fit in 32 bits for any realistic row, halving the
        # payload traffic through the network; widened to the result dtype
        # (matching the single-row kernel) after the reduction.
        payload_dtype = np.int32 if padded_n <= np.iinfo(np.int32).max else np.int64
        payload = np.broadcast_to(
            np.arange(padded_n, dtype=payload_dtype), (rows, padded_n)
        ).copy()
        values, indices = batched_reduce_topk(working, network_k, payload)
        indices = indices.astype(np.int64, copy=False)

        # The single-row kernel pipeline, traffic scaled by the batch size but
        # launch count unchanged (one fused launch covers all rows).
        single_row = build_trace(
            padded_n, network_k, matrix.dtype.itemsize, flags, device
        )
        batch = model_rows or rows
        trace = ExecutionTrace(notes=dict(single_row.notes))
        trace.kernels = [kernel.scaled(batch) for kernel in single_row.kernels]
        trace.notes["batch_rows"] = batch
        from repro.observability.instrument import record_trace

        span.set(simulated_ms=record_trace(trace, device))

        top_values = values[:, :k].copy()
        top_indices = indices[:, :k].copy()
        # Padding slots carry the dtype's minimum value, which ties with
        # legitimate minima (0 for unsigned ints, real -inf floats), so a
        # padded column index >= n can win a compare-exchange.  Point those
        # entries back at unused real columns holding the same value — the
        # same repair (and tie-breaking) as the single-row kernel.
        leaked = top_indices >= n
        if leaked.any():
            for row in np.flatnonzero(leaked.any(axis=1)):
                top_indices[row] = repair_padded_indices(
                    matrix[row], top_values[row], top_indices[row], n
                )
    return TopKResult(
        values=top_values,
        indices=top_indices,
        trace=trace,
        algorithm="batched-bitonic",
        k=k,
        n=rows * n,
        model_n=batch * padded_n,
    )
