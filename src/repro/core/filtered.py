"""Fused filter + top-k as a standalone API (Section 5 outside SQL).

``topk_where(values, mask, k)`` returns the top-k of the rows where
``mask`` holds, with a trace modeling the FusedSortReducer design: the
filter acts as a buffer filler, reading the base data once and feeding
matched elements straight into the in-shared-memory reduction — no
materialized intermediate.  ``percentile`` builds on the same machinery
for the common analytics ask ("the 99th percentile latency").
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import TopKResult, validate_topk_args
from repro.bitonic.kernels import build_trace
from repro.bitonic.optimizations import FULL, OptimizationFlags
from repro.bitonic.topk import BitonicTopK
from repro.errors import InvalidParameterError
from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec, get_device


def topk_where(
    values: np.ndarray,
    mask: np.ndarray,
    k: int,
    device: DeviceSpec | None = None,
    flags: OptimizationFlags = FULL,
    model_n: int | None = None,
) -> TopKResult:
    """Top-k over the rows selected by a boolean mask, kernel-fused.

    ``k`` may exceed the number of selected rows; the result then contains
    every selected row (sorted), mirroring SQL LIMIT semantics.
    """
    values = np.asarray(values)
    mask = np.asarray(mask)
    if mask.shape != values.shape:
        raise InvalidParameterError("mask must have the same shape as values")
    if mask.dtype != np.bool_:
        raise InvalidParameterError("mask must be boolean")
    validate_topk_args(values, max(1, min(k, len(values))))
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    device = device or get_device()

    selected_rows = np.flatnonzero(mask)
    selected = values[selected_rows]
    effective_k = min(k, len(selected))
    n = len(values)
    model = model_n or n
    selectivity = len(selected) / max(1, n)
    matched_model = max(1, int(round(model * selectivity)))

    if effective_k > 0:
        inner = BitonicTopK(device, flags).run(selected, effective_k)
        result_values = inner.values
        result_rows = selected_rows[inner.indices]
    else:
        result_values = values[:0].copy()
        result_rows = np.empty(0, dtype=np.int64)

    width = values.dtype.itemsize
    network_k = 1 << max(0, (max(effective_k, 1) - 1).bit_length())
    trace = ExecutionTrace()
    fused = build_trace(matched_model, network_k, width, flags, device)
    first = fused.kernels[0]
    first.name = "FusedSortReducer"
    # The buffer filler scans the *full* base column and stages every
    # scanned element through shared memory once (Section 5).
    first.global_bytes_read = float(model) * width
    first.add_shared(float(model) * 4.0)
    trace.extend(fused)
    trace.notes["selectivity"] = selectivity
    return TopKResult(
        values=result_values,
        indices=result_rows,
        trace=trace,
        algorithm="fused-filter-bitonic",
        k=effective_k,
        n=n,
        model_n=model,
    )


def percentile(
    values: np.ndarray,
    q: float,
    device: DeviceSpec | None = None,
) -> float:
    """The q-th percentile (0 < q <= 100) via k-selection.

    Uses the nearest-rank definition: the value whose descending rank is
    ``ceil((1 - q/100) * n)`` — p99 of a latency column is the 1%-th
    largest value.  One radix-select pass structure, no full sort.
    """
    values = np.asarray(values)
    if not 0.0 < q <= 100.0:
        raise InvalidParameterError("q must be in (0, 100]")
    n = len(values)
    if n == 0:
        raise InvalidParameterError("percentile of an empty array")
    rank = max(1, math.ceil((1.0 - q / 100.0) * n))
    from repro.algorithms.radix_select import RadixSelectTopK

    result = RadixSelectTopK(device).run(values, rank)
    return float(np.sort(result.values)[0])
