"""Public API: top-k entry points, the planner, and the extensions."""

from repro.core.batched import batched_reduce_topk, batched_topk
from repro.core.chunked import ChunkedTopK, ChunkPlan, chunked_topk
from repro.core.filtered import percentile, topk_where
from repro.core.planner import PlanChoice, TopKPlanner
from repro.core.topk import bottomk, topk

__all__ = [
    "batched_reduce_topk",
    "batched_topk",
    "ChunkedTopK",
    "ChunkPlan",
    "chunked_topk",
    "percentile",
    "topk_where",
    "PlanChoice",
    "TopKPlanner",
    "bottomk",
    "topk",
]
