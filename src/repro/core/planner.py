"""Cost-model-driven algorithm selection.

The paper's closing motivation for its cost models: "a query planner needs
to choose a top-k implementation."  :class:`TopKPlanner` evaluates every
algorithm's cost model for a configuration, discards infeasible ones (the
per-thread heap beyond its shared-memory capacity), and picks the cheapest.

With the default device this reproduces the headline decision boundary:
bitonic top-k for small k, radix select for large k, with the crossover in
the hundreds (k = 256 in the paper's measurements).
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.costmodel.base import UNIFORM_FLOAT, CostModel, WorkloadProfile
from repro.costmodel.bitonic_model import BitonicModel
from repro.costmodel.calibration import CalibratedModel, CalibrationStore
from repro.costmodel.other_models import BucketSelectModel, PerThreadModel
from repro.costmodel.radik_model import RadiKModel
from repro.costmodel.radix_model import RadixSelectModel, SortModel
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device
from repro.plan.plan import PlanChoice, TopKPlan

__all__ = ["PlanChoice", "TopKPlan", "TopKPlanner"]


class TopKPlanner:
    """Chooses a top-k algorithm via the Section 7 cost models."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        calibration: CalibrationStore | None = None,
        calibrate: bool = False,
    ):
        """``calibrate=True`` prices every candidate through a
        :class:`~repro.costmodel.calibration.CalibratedModel` over
        ``calibration`` (a fresh store when none is given), so fitted
        per-kernel correction factors move the ranking.  The default
        ``calibrate=False`` never constructs the wrappers — decisions,
        fingerprints, and the EXPLAIN goldens stay bit-identical to the
        uncalibrated planner even when a store is attached.
        """
        self.device = device or get_device()
        self.calibrate = bool(calibrate)
        self.calibration = calibration
        models: list[CostModel] = [
            BitonicModel(self.device),
            RadixSelectModel(self.device),
            RadiKModel(self.device),
            SortModel(self.device),
            PerThreadModel(self.device),
            BucketSelectModel(self.device),
        ]
        if self.calibrate:
            if self.calibration is None:
                self.calibration = CalibrationStore()
            models = [
                CalibratedModel(model, self.calibration) for model in models
            ]
        self.models = models

    def choose(
        self,
        n: int,
        k: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        recall_target: float = 1.0,
        max_shards: int = 1,
    ) -> TopKPlan:
        """Rank all feasible algorithms and return the cheapest as a
        typed physical plan (a :class:`~repro.plan.TopKPlan` whose root is
        an explicit :class:`~repro.plan.Fallback` tree over the ranking).

        ``recall_target`` below 1.0 additionally lets the planner consider
        the bucketed approximate operator: it is chosen iff a configuration
        exists whose analytic expected recall meets the target *and* whose
        predicted time beats every exact algorithm.  At the default 1.0 the
        approximate model is never even constructed — the decision is
        bit-identical to the exact-only planner.

        ``max_shards`` above 1 additionally lets the planner consider
        partition-parallel plans: when n reaches the per-device threshold
        (:data:`~repro.costmodel.sharding_model.SHARD_MIN_ROWS`) and the
        sharding cost model beats every single-device candidate, the plan's
        root becomes a :class:`~repro.plan.Merge` over per-shard
        ``Scan -> TopK`` subtrees, with the exact single-device ranking as
        its fallback alternatives.  At the default 1 the sharding model is
        never consulted — decisions are bit-identical to the single-device
        planner.
        """
        if n <= 0 or k <= 0 or k > n:
            raise InvalidParameterError(
                f"invalid top-k configuration: n = {n}, k = {k}"
            )
        if not 0.0 < recall_target <= 1.0:
            raise InvalidParameterError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        if isinstance(max_shards, bool) or not isinstance(
            max_shards, (int, np.integer)
        ):
            raise InvalidParameterError(
                f"max_shards must be an integer, got {type(max_shards).__name__}"
            )
        if max_shards < 1:
            raise InvalidParameterError(
                f"max_shards must be at least 1, got {max_shards}"
            )
        dtype = np.dtype(dtype)
        with obs.span(
            "plan",
            category="planner",
            n=n,
            k=k,
            dtype=str(dtype),
            profile=profile.name,
        ) as span:
            ranking: list[tuple[str, float]] = []
            infeasible: list[str] = []
            for model in self.models:
                if not model.supports(n, k, dtype):
                    infeasible.append(model.algorithm)
                    continue
                try:
                    predicted = model.predict_seconds(n, k, dtype, profile)
                except ResourceExhaustedError:
                    # A model that claims support but hits a hard resource
                    # limit while costing the configuration (the per-thread
                    # heap's occupancy calculation at large k) is simply
                    # not a candidate — skip it, don't surface the error.
                    infeasible.append(model.algorithm)
                    continue
                ranking.append((model.algorithm, predicted))
            if not ranking:
                raise ResourceExhaustedError(
                    f"no algorithm can run n = {n}, k = {k} ({dtype}) on "
                    f"{self.device.name}; infeasible: {', '.join(infeasible)}"
                )
            ranking.sort(key=lambda item: item[1])
            best_name, best_time = ranking[0]
            approx_config = None
            plan_recall = 1.0
            if recall_target < 1.0:
                from repro.costmodel.approx_model import choose_config

                approx = choose_config(
                    n, k, recall_target, dtype, self.device, profile
                )
                if approx is not None and approx[1] < best_time:
                    approx_config, approx_time, plan_recall = approx
                    best_name = "approx-bucket"
                    best_time = approx_time
                    ranking.insert(0, (best_name, best_time))
            shard_root = None
            chosen_shards = 1
            if max_shards > 1 and approx_config is None:
                from repro.costmodel.sharding_model import (
                    SHARD_MIN_ROWS,
                    choose_shards,
                )

                choice = None
                if n >= SHARD_MIN_ROWS:
                    choice = choose_shards(
                        n, k, dtype, profile, self.device, max_shards
                    )
                if (
                    choice is not None
                    and choice.shards > 1
                    and choice.seconds < best_time
                ):
                    from repro.plan.nodes import Fallback
                    from repro.plan.plan import build_fallback
                    from repro.sharding.partition import build_sharded_plan

                    merge = build_sharded_plan(
                        n,
                        k,
                        shards=choice.shards,
                        dtype=str(dtype),
                        algorithm=choice.inner,
                        predicted_seconds=choice.seconds,
                    )
                    # The single-device ranking stays behind the sharded
                    # winner, so a lost shard fleet degrades through the
                    # same chain a single device would.
                    exact = build_fallback(
                        ranking,
                        n=n,
                        k=k,
                        dtype=str(dtype),
                        recall_target=recall_target,
                    )
                    shard_root = Fallback(
                        alternatives=(merge, *exact.alternatives)
                    )
                    chosen_shards = choice.shards
                    best_name = "sharded"
                    best_time = choice.seconds
                    ranking.insert(0, (best_name, best_time))
            plan = TopKPlan(
                algorithm=best_name,
                predicted_seconds=best_time,
                candidates=tuple(ranking),
                infeasible=tuple(infeasible),
                recall_target=recall_target,
                approx_config=approx_config,
                expected_recall=plan_recall,
                n=n,
                k=k,
                dtype=str(dtype),
                profile=profile.name,
                device=self.device.name,
                root=shard_root,
                shards=chosen_shards,
            )
            span.set(
                algorithm=best_name,
                predicted_ms=best_time * 1e3,
                candidates=len(ranking),
                plan_fingerprint=plan.fingerprint(),
            )
            registry = obs.active_metrics()
            if registry is not None:
                registry.counter("planner.decisions", algorithm=best_name).inc()
                registry.gauge("planner.predicted_ms", algorithm=best_name).set(
                    best_time * 1e3
                )
        return plan

    def crossover_k(
        self,
        n: int,
        dtype: np.dtype = np.dtype(np.float32),
        profile: WorkloadProfile = UNIFORM_FLOAT,
        max_k: int = 2048,
    ) -> int | None:
        """Smallest power-of-two k at which the radix family overtakes
        bitonic.

        The headline decision boundary of the evaluation (bitonic wins up
        to the crossover, radix beyond).  The radix side is the *family
        minimum* — the cheaper of the paper's 2018 strawman
        (:class:`RadixSelectModel`) and the RadiK-style adaptive kernel
        (:class:`RadiKModel`), so the boundary reflects the best radix
        implementation available to the planner.  Returns None if bitonic
        wins everywhere up to ``max_k``.
        """
        bitonic = BitonicModel(self.device)
        radix_family = (RadixSelectModel(self.device), RadiKModel(self.device))
        k = 1
        while k <= max_k:
            # Clamp before doing anything else: past k = n the comparison
            # is frozen at k = n, and a k > n must never be returned.
            effective_k = min(k, n)
            # Support is checked *before* costing — an unsupported bitonic
            # configuration simply is the crossover; asking its model for a
            # prediction first could raise instead.
            if not bitonic.supports(n, effective_k, dtype):
                return effective_k
            radix_time = min(
                model.predict_seconds(n, effective_k, dtype, profile)
                for model in radix_family
            )
            bitonic_time = bitonic.predict_seconds(n, effective_k, dtype, profile)
            if radix_time < bitonic_time:
                return effective_k
            k *= 2
        return None
