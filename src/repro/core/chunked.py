"""Out-of-core top-k: data larger than GPU memory (Section 4.3 discussion).

The paper notes that top-k's reductive nature makes oversized inputs easy:
"process the data in memory-size chunks and overlap computation with
transfer".  This module implements that pipeline:

1. split the input into chunks that fit the device's global memory budget;
2. stream each chunk over PCIe and reduce it to its top-k candidates on
   the device (any registered algorithm; bitonic by default);
3. keep only ``k`` candidates per chunk on the device (k * chunks values in
   total — negligible), and reduce them to the final top-k at the end.

Timing follows the classic two-stage software pipeline: with overlap
enabled, chunk i+1 uploads while chunk i computes, so the steady-state cost
per chunk is ``max(transfer, compute)`` with one transfer of pipeline fill;
without overlap the stages serialize.  The execution trace carries one
fixed-time kernel per pipeline stage so the usual reporting applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKAlgorithm, TopKResult, validate_topk_args
from repro.algorithms.registry import create
from repro.bitonic.topk import BitonicTopK
from repro.errors import TransferError
from repro.gpu import faults
from repro.gpu.counters import ExecutionTrace, KernelCounters
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import BACKOFF_KERNEL, trace_time

#: Bounded retries for one chunk's failed PCIe staging transfer.
TRANSFER_RETRIES = 3

#: Simulated backoff before re-issuing a failed chunk transfer.
TRANSFER_BACKOFF_SECONDS = 1e-3


@dataclass(frozen=True)
class ChunkPlan:
    """How an oversized input is streamed through the device."""

    num_chunks: int
    chunk_elements: int
    transfer_seconds_per_chunk: float
    compute_seconds_per_chunk: float
    overlap: bool

    @property
    def pipeline_seconds(self) -> float:
        """Total pipeline time for all chunks."""
        transfer = self.transfer_seconds_per_chunk
        compute = self.compute_seconds_per_chunk
        if not self.overlap:
            return self.num_chunks * (transfer + compute)
        if self.num_chunks == 1:
            return transfer + compute
        steady = (self.num_chunks - 1) * max(transfer, compute)
        return transfer + steady + compute

    @property
    def overlap_efficiency(self) -> float:
        """Achieved fraction of the ideal (fully hidden) pipeline time."""
        ideal = self.num_chunks * max(
            self.transfer_seconds_per_chunk, self.compute_seconds_per_chunk
        )
        return ideal / self.pipeline_seconds


class ChunkedTopK:
    """Streamed top-k for inputs larger than device memory."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        algorithm: str = "bitonic",
        overlap: bool = True,
        memory_budget_bytes: int | None = None,
    ):
        self.device = device or get_device()
        self.algorithm_name = algorithm
        self.overlap = overlap
        # Double buffering: half the budget per resident chunk.
        budget = memory_budget_bytes or int(self.device.global_memory_size * 0.9)
        self.chunk_budget = budget // 2

    def plan(self, n: int, k: int, dtype: np.dtype) -> ChunkPlan:
        """Pipeline plan for an input of ``n`` elements of ``dtype``."""
        with faults.suspended():
            return self._plan(n, k, dtype)

    def _plan(self, n: int, k: int, dtype: np.dtype) -> ChunkPlan:
        dtype = np.dtype(dtype)
        chunk_elements = min(n, max(k, self.chunk_budget // dtype.itemsize))
        num_chunks = math.ceil(n / chunk_elements)
        transfer = self.device.pcie_transfer_time(chunk_elements * dtype.itemsize)
        algorithm = create(self.algorithm_name, self.device)
        probe = _chunk_compute_seconds(algorithm, chunk_elements, k, dtype, self.device)
        return ChunkPlan(
            num_chunks=num_chunks,
            chunk_elements=chunk_elements,
            transfer_seconds_per_chunk=transfer,
            compute_seconds_per_chunk=probe,
            overlap=self.overlap,
        )

    def run(
        self, data: np.ndarray, k: int, model_n: int | None = None
    ) -> TopKResult:
        """Compute the exact top-k of ``data`` through the chunk pipeline."""
        validate_topk_args(data, k)
        n = len(data)
        model = model_n or n
        with obs.span(
            "chunked",
            category="scheduler",
            n=n,
            k=k,
            model_n=model,
            algorithm=self.algorithm_name,
        ) as span:
            plan = self.plan(model, k, data.dtype)
            span.set(chunks=plan.num_chunks)
            registry = obs.active_metrics()
            if registry is not None:
                registry.gauge("chunked.num_chunks").set(plan.num_chunks)
                registry.gauge("chunked.overlap_efficiency").set(
                    plan.overlap_efficiency
                )

            algorithm = create(self.algorithm_name, self.device)
            functional_chunk = max(k, math.ceil(n / plan.num_chunks))
            candidate_values: list[np.ndarray] = []
            candidate_rows: list[np.ndarray] = []
            # Per-chunk runs execute functionally; their cost is already
            # accounted by the pipeline trace below, so suspend observation
            # to avoid double-counting their kernels.
            transfer_retries = 0
            backoff_seconds = 0.0
            with obs.suspended():
                for chunk_index, start in enumerate(
                    range(0, n, functional_chunk)
                ):
                    chunk = data[start : start + functional_chunk]
                    chunk_k = min(k, len(chunk))
                    # Stage the chunk over PCIe; a failed transfer is
                    # retried with simulated backoff before it surfaces.
                    for attempt in range(TRANSFER_RETRIES + 1):
                        try:
                            faults.fault_point(
                                "pcie-transfer", f"chunk-{chunk_index}"
                            )
                            break
                        except TransferError:
                            if attempt == TRANSFER_RETRIES:
                                raise
                            transfer_retries += 1
                            backoff_seconds += (
                                TRANSFER_BACKOFF_SECONDS * 2**attempt
                            )
                    result = algorithm.run(chunk, chunk_k)
                    candidate_values.append(result.values)
                    candidate_rows.append(result.indices + start)
            values = np.concatenate(candidate_values)
            rows = np.concatenate(candidate_rows)
            order = np.argsort(values, kind="stable")[::-1][:k]

            trace = ExecutionTrace()
            pipeline = trace.launch("chunk-pipeline")
            pipeline.fixed_seconds = plan.pipeline_seconds
            final = trace.launch("final-reduce")
            final.add_global_read(float(plan.num_chunks * k) * data.dtype.itemsize)
            final.add_global_write(float(k) * data.dtype.itemsize)
            trace.notes["chunks"] = plan.num_chunks
            trace.notes["overlap_efficiency"] = plan.overlap_efficiency
            if transfer_retries:
                trace.kernels.append(
                    KernelCounters(
                        name=BACKOFF_KERNEL, fixed_seconds=backoff_seconds
                    )
                )
                trace.notes["transfer_retries"] = float(transfer_retries)
                if registry is not None:
                    registry.counter(
                        "resilience.retries",
                        algorithm=f"chunked-{self.algorithm_name}",
                        fault="TransferError",
                    ).inc(transfer_retries)
            from repro.observability.instrument import record_trace

            span.set(simulated_ms=record_trace(trace, self.device))
        return TopKResult(
            values=values[order].copy(),
            indices=rows[order].copy(),
            trace=trace,
            algorithm=f"chunked-{self.algorithm_name}",
            k=k,
            n=n,
            model_n=model,
        )


def _chunk_compute_seconds(
    algorithm: TopKAlgorithm,
    chunk_elements: int,
    k: int,
    dtype: np.dtype,
    device: DeviceSpec,
) -> float:
    """On-device time to reduce one resident chunk to its top-k."""
    if isinstance(algorithm, BitonicTopK):
        from repro.bitonic.kernels import build_trace

        network_k = 1 << max(0, (k - 1).bit_length())
        trace = build_trace(
            chunk_elements, network_k, dtype.itemsize, algorithm.flags, device
        )
        return trace_time(trace, device).total
    # Fall back to a tiny probe run extrapolated to the chunk size.  The
    # probe is a planning estimate, not real work — keep it out of traces.
    probe_n = min(chunk_elements, 1 << 14)
    rng = np.random.default_rng(0)
    if np.dtype(dtype).kind == "f":
        probe = rng.random(probe_n).astype(dtype)
    else:
        probe = rng.integers(0, 2**31, probe_n).astype(dtype)
    with obs.suspended():
        result = algorithm.run(probe, min(k, probe_n), model_n=chunk_elements)
    return result.simulated_time(device).total


def chunked_topk(
    data: np.ndarray,
    k: int,
    device: DeviceSpec | None = None,
    algorithm: str = "bitonic",
    overlap: bool = True,
    memory_budget_bytes: int | None = None,
    model_n: int | None = None,
) -> TopKResult:
    """Convenience wrapper around :class:`ChunkedTopK`."""
    runner = ChunkedTopK(device, algorithm, overlap, memory_budget_bytes)
    return runner.run(data, k, model_n=model_n)
