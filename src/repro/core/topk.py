"""The library's public top-k entry point.

    >>> from repro import topk
    >>> result = topk(values, k=32)                     # auto-planned
    >>> result = topk(values, k=32, algorithm="bitonic")
    >>> result = topk(values, k=32, largest=False)      # bottom-k

All the algorithms natively find the *largest* k; bottom-k is served by
order-reversing the keys (negating floats / complementing integers), which
costs one elementwise pass — the same trick a database projection would
apply.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.algorithms.registry import create, create_for_node
from repro.core.planner import TopKPlanner
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import InvalidParameterError, ResourceExhaustedError
from repro.gpu.device import DeviceSpec, get_device


def _order_reversed(values: np.ndarray) -> np.ndarray:
    """Keys whose ascending order is the descending order of ``values``."""
    if values.dtype.kind == "f":
        return -values
    if values.dtype.kind == "u":
        return np.iinfo(values.dtype).max - values
    if values.dtype.kind == "i":
        # Complement avoids the overflow of negating the dtype minimum.
        return -1 - values
    raise InvalidParameterError(f"cannot reverse order of dtype {values.dtype}")


def topk(
    values: np.ndarray,
    k: int,
    algorithm: str = "auto",
    largest: bool = True,
    device: DeviceSpec | None = None,
    model_n: int | None = None,
    profile: WorkloadProfile = UNIFORM_FLOAT,
    recall_target: float = 1.0,
) -> TopKResult:
    """Find the k largest (or smallest) elements of ``values``.

    Parameters
    ----------
    values:
        One-dimensional numpy array of a supported dtype (float32/64,
        int32/64, uint32/64).
    k:
        Number of results, 1 <= k <= len(values).
    algorithm:
        A registry name ("bitonic", "radix-select", "sort", "per-thread",
        "bucket-select", "per-thread-registers"), or "auto" to let the
        Section 7 cost models choose.
    largest:
        True for top-k (default), False for bottom-k.
    device:
        Simulated GPU profile; defaults to the paper's Titan X Maxwell.
    model_n:
        Input size the execution trace models (defaults to ``len(values)``;
        benchmarks pass the paper's 2^29).
    profile:
        Workload statistics for the "auto" planner.
    recall_target:
        Minimum acceptable recall for the "auto" planner.  The default 1.0
        restricts planning to the exact algorithms (bit-identical to the
        pre-approximate behaviour); below 1.0 the planner may pick the
        bucketed approximate operator when its analytic expected recall
        meets the target and its predicted time beats every exact plan.

    Returns
    -------
    TopKResult with ``values`` sorted in rank order (best first),
    ``indices`` into the input, and the simulated execution trace.
    """
    values = np.asarray(values)
    validate_topk_args(values, k)
    device = device or get_device()
    with obs.span(
        "topk",
        category="api",
        n=len(values),
        k=k,
        largest=largest,
        requested_algorithm=algorithm,
        device=device.name,
    ) as span:
        if algorithm == "auto":
            plan = TopKPlanner(device).choose(
                len(values), k, values.dtype, profile,
                recall_target=recall_target,
            )
            span.set(plan_fingerprint=plan.fingerprint())
            # Walk the plan tree's explicit Fallback alternatives: each
            # operator node (TopK or ApproxTopK, configuration included)
            # resolves to its kernel through the registry's node dispatch.
            attempts = [
                (getattr(node, "algorithm", node.kind), node)
                for node in plan.root.alternatives
            ]
        else:
            attempts = [(algorithm, None)]

        keys = values if largest else _order_reversed(values)
        result = None
        for position, (name, node) in enumerate(attempts):
            try:
                runner = (
                    create_for_node(node, device)
                    if node is not None
                    else create(name, device)
                )
                result = runner.run(keys, k, model_n=model_n)
                break
            except ResourceExhaustedError:
                # The cost model predicted this candidate would fit but the
                # implementation hit a hard resource limit: with "auto" the
                # candidate is simply infeasible, so degrade to the next
                # one; an explicitly requested algorithm surfaces the error.
                if position == len(attempts) - 1:
                    raise
                registry = obs.active_metrics()
                if registry is not None:
                    registry.counter(
                        "planner.runtime_infeasible", algorithm=name
                    ).inc()
        assert result is not None
        if not largest:
            # Map the reversed-key results back to the original values.
            result.values = values[result.indices].copy()
        if algorithm == "auto" and (model_n is None or model_n == len(values)):
            # Close the prediction loop: the plan priced the executed
            # kernel at exactly the traced size, so the pair calibrates.
            # (With a foreign model_n predicted and observed model
            # different inputs — no sample.)  A no-op unless a
            # calibration store is captured in this context.
            from repro.costmodel import calibration

            if calibration.active_store() is not None:
                predicted = dict(plan.candidates).get(result.algorithm)
                if predicted is not None:
                    calibration.record_sample(
                        plan.fingerprint(),
                        result.algorithm,
                        predicted * 1e3,
                        result.simulated_ms(device),
                    )
        span.set(algorithm=result.algorithm)
        registry = obs.active_metrics()
        if registry is not None:
            registry.counter("topk.api_calls", algorithm=result.algorithm).inc()
            registry.histogram("topk.k").observe(k)
    return result


def bottomk(
    values: np.ndarray,
    k: int,
    algorithm: str = "auto",
    device: DeviceSpec | None = None,
    model_n: int | None = None,
) -> TopKResult:
    """Convenience wrapper: the k smallest elements."""
    return topk(
        values, k, algorithm=algorithm, largest=False, device=device, model_n=model_n
    )
