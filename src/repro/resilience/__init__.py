"""Resilient execution: survive simulated device failures.

The subsystem has four parts:

* :mod:`repro.gpu.faults` — the deterministic fault injector the layers
  below consult (kernel launches, memory reads, PCIe transfers);
* :mod:`repro.resilience.retry` — bounded retry policies with exponential
  backoff in *simulated* time;
* :mod:`repro.resilience.verify` — result verification hooks that catch
  silent corruption before an answer escapes;
* :mod:`repro.resilience.executor` — the :class:`ResilientExecutor` that
  combines them with planner-driven fallback chains;
* :mod:`repro.resilience.breaker` — the :class:`CircuitBreaker` the SLO
  serving layer trips on repeatedly-faulting devices;
* :mod:`repro.resilience.chaos` — the seeded chaos campaign behind
  ``repro chaos``.
"""

from repro.resilience.breaker import (
    DEFAULT_BREAKER,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.chaos import ChaosReport, ChaosTrial, run_campaign
from repro.resilience.executor import (
    CPU_FALLBACK,
    DEFAULT_FALLBACK_CHAIN,
    AttemptLog,
    ResilientExecutor,
    resilient_topk,
)
from repro.resilience.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    RETRYABLE_ERRORS,
    RetryPolicy,
    is_retryable,
)
from repro.resilience.verify import verification_issues, verify_result

__all__ = [
    "AttemptLog",
    "BreakerPolicy",
    "ChaosReport",
    "ChaosTrial",
    "CircuitBreaker",
    "CPU_FALLBACK",
    "DEFAULT_BREAKER",
    "DEFAULT_FALLBACK_CHAIN",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "RETRYABLE_ERRORS",
    "ResilientExecutor",
    "RetryPolicy",
    "is_retryable",
    "resilient_topk",
    "run_campaign",
    "verification_issues",
    "verify_result",
]
