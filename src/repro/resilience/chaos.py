"""Seeded chaos campaign: randomized fault injection with an exact oracle.

Each trial draws a target (one of the five top-k algorithms, or the
multi-GPU scheduler), a workload, and a fault plan from one seeded PRNG,
runs the target under injection, and classifies the outcome:

* ``exact``       — the run survived and returned the exact top-k;
* ``typed-error`` — the run failed, but with a typed
  :class:`~repro.errors.ReproError` (an acceptable loss: every device
  can be down);
* ``wrong-answer``— the run "succeeded" with an incorrect result — the
  outcome resilience exists to make impossible;
* ``unhandled``   — a non-:class:`~repro.errors.ReproError` exception
  escaped — equally disqualifying.

The campaign *survives* when no trial is a wrong answer or an unhandled
exception.  Identical seeds reproduce identical schedules, decisions, and
simulated timings, so a chaos failure is always replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import reference_topk
from repro.errors import ReproError
from repro.gpu.faults import FaultInjector, FaultPlan, inject
from repro.hybrid.multi_gpu import MultiGpuTopK
from repro.resilience.executor import ResilientExecutor

#: Targets a campaign cycles through: the five paper algorithms (run
#: under the resilient executor) plus the multi-GPU scheduler.
ALGORITHM_TARGETS = (
    "bitonic",
    "radix-select",
    "bucket-select",
    "sort",
    "per-thread",
)
MULTI_GPU_TARGET = "multi-gpu"
SERVING_TARGET = "serving"
TARGETS = ALGORITHM_TARGETS + (MULTI_GPU_TARGET, SERVING_TARGET)

#: (site, fault, silent) triples a single-device trial may draw.
ALGORITHM_FAULTS = (
    ("kernel-launch", "device-lost", False),
    ("kernel-launch", "kernel-timeout", False),
    ("kernel-launch", "resource-exhausted", False),
    ("result-transfer", "transfer-error", False),
    ("result-buffer", "memory-corruption", True),
    ("result-buffer", "memory-corruption", False),
)

#: The analogue for the multi-GPU scheduler.
MULTI_GPU_FAULTS = (
    ("device-launch", "device-lost", False),
    ("pcie-transfer", "transfer-error", False),
    ("kernel-launch", "device-lost", False),
)

#: Faults the serving trial may draw while queries flow through the
#: batcher + dispatcher.  Only *signalled* kernel-launch faults: the
#: serving path does not re-verify device buffers (silent-corruption
#: coverage stays with the algorithm targets), and the result-transfer
#: site lives inside the resilient fallback the serving path only
#: reaches after a launch fault.
SERVING_FAULTS = (
    ("kernel-launch", "device-lost", False),
    ("kernel-launch", "kernel-timeout", False),
    ("kernel-launch", "resource-exhausted", False),
)

OUTCOMES = ("exact", "typed-error", "wrong-answer", "unhandled")


@dataclass(frozen=True)
class ChaosTrial:
    """One randomized trial and its verdict."""

    index: int
    target: str
    n: int
    k: int
    site: str
    fault: str
    silent: bool
    injections: int
    outcome: str
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "target": self.target,
            "n": self.n,
            "k": self.k,
            "site": self.site,
            "fault": self.fault,
            "silent": self.silent,
            "injections": self.injections,
            "outcome": self.outcome,
            "error": self.error,
        }


@dataclass
class ChaosReport:
    """A finished campaign."""

    seed: int
    trials: list[ChaosTrial] = field(default_factory=list)

    def count(self, outcome: str) -> int:
        return sum(1 for trial in self.trials if trial.outcome == outcome)

    @property
    def survived(self) -> bool:
        """No wrong answer, no unhandled exception, across every trial."""
        return self.count("wrong-answer") == 0 and self.count("unhandled") == 0

    def failures(self) -> list[ChaosTrial]:
        return [
            trial
            for trial in self.trials
            if trial.outcome in ("wrong-answer", "unhandled")
        ]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "trials": [trial.to_dict() for trial in self.trials],
            "outcomes": {outcome: self.count(outcome) for outcome in OUTCOMES},
            "survived": self.survived,
        }

    def render(self) -> str:
        """Human-readable survival report."""
        lines = [
            f"chaos campaign: seed={self.seed} trials={len(self.trials)}",
            "",
        ]
        width = max(len(outcome) for outcome in OUTCOMES)
        for outcome in OUTCOMES:
            lines.append(f"  {outcome:<{width}}  {self.count(outcome):>5}")
        lines.append("")
        for target in TARGETS:
            subset = [t for t in self.trials if t.target == target]
            if not subset:
                continue
            exact = sum(1 for t in subset if t.outcome == "exact")
            typed = sum(1 for t in subset if t.outcome == "typed-error")
            bad = len(subset) - exact - typed
            verdict = "ok" if bad == 0 else "FAIL"
            lines.append(
                f"  {target:<14} {len(subset):>4} trials  "
                f"{exact:>4} exact  {typed:>3} typed  {bad:>3} bad  [{verdict}]"
            )
        lines.append("")
        verdict = "SURVIVED" if self.survived else "FAILED"
        lines.append(
            f"{verdict}: every fault either recovered to the exact top-k "
            "or raised a typed error."
            if self.survived
            else f"{verdict}: {len(self.failures())} trial(s) returned a "
            "wrong answer or leaked an untyped exception."
        )
        return "\n".join(lines)


def _make_data(rng: np.random.Generator, n: int, with_inf: bool) -> np.ndarray:
    data = rng.standard_normal(n).astype(np.float32)
    if with_inf:
        positions = rng.integers(0, n, size=max(1, n // 256))
        data[positions] = np.float32(np.inf) * rng.choice(
            np.array([1.0, -1.0], dtype=np.float32), size=len(positions)
        )
    return data


def _run_trial(
    index: int, master: random.Random, seed: int
) -> ChaosTrial:
    target = master.choice(TARGETS)
    n = master.choice((512, 1024, 2048, 4096))
    k = min(n, master.choice((1, 8, 32, 64)))
    if target == MULTI_GPU_TARGET:
        faults_menu = MULTI_GPU_FAULTS
    elif target == SERVING_TARGET:
        faults_menu = SERVING_FAULTS
    else:
        faults_menu = ALGORITHM_FAULTS
    site, fault, silent = master.choice(faults_menu)
    plan = FaultPlan(
        site=site,
        fault=fault,
        nth=master.randint(1, 3) if master.random() < 0.5 else None,
        probability=round(master.uniform(0.2, 0.9), 3),
        max_injections=master.choice((1, 2, 3)),
        silent=silent,
    )
    if target == SERVING_TARGET:
        return _run_serving_trial(index, n, k, plan, seed)
    data = _make_data(
        np.random.default_rng(seed), n, with_inf=master.random() < 0.25
    )
    expected_values, _ = reference_topk(data, k)

    injector = FaultInjector(seed=seed, plans=[plan])
    outcome = "unhandled"
    error = ""
    result = None
    try:
        with inject(injector):
            if target == MULTI_GPU_TARGET:
                result = MultiGpuTopK().run(data, k)
            else:
                result = ResilientExecutor().run(data, k, algorithm=target)
    except ReproError as exc:
        outcome = "typed-error"
        error = type(exc).__name__
    except Exception as exc:  # noqa: BLE001 — the class under test
        outcome = "unhandled"
        error = f"{type(exc).__name__}: {exc}"
    else:
        if np.array_equal(result.values, expected_values):
            outcome = "exact"
        else:
            outcome = "wrong-answer"
            error = "result differs from the sort oracle"
    return ChaosTrial(
        index=index,
        target=target,
        n=n,
        k=k,
        site=site,
        fault=fault,
        silent=silent,
        injections=len(injector.injections),
        outcome=outcome,
        error=error,
    )


def _run_serving_trial(
    index: int, n: int, k: int, plan: FaultPlan, seed: int
) -> ChaosTrial:
    """One trial against the serving path: faults fire while queries flow
    through the batcher + dispatcher thread.

    Six queries with two same-shape pairs, so the trial exercises both
    fused batch execution and singleton launches under injection.  Each
    request captures the active injector at submit time and the batcher
    re-installs it around execution, so injection reaches the dispatcher
    thread deterministically.
    """
    from repro.serving import TopKServer

    rng = np.random.default_rng(seed)
    half = max(k, n // 2)
    shapes = [(n, k), (n, k), (half, k), (half, k), (n, max(1, k // 2)), (n, k)]
    payloads = [
        rng.standard_normal(length).astype(np.float32) for length, _ in shapes
    ]
    expected = [
        reference_topk(payload, kk)[0]
        for payload, (_, kk) in zip(payloads, shapes)
    ]
    injector = FaultInjector(seed=seed, plans=[plan])
    worst = "exact"
    error = ""
    server = TopKServer(auto_start=False)
    try:
        with inject(injector):
            futures = [
                server.submit(payload, kk)
                for payload, (_, kk) in zip(payloads, shapes)
            ]
        server.start()
        server.flush()
        for future, expected_values in zip(futures, expected):
            try:
                outcome = future.result(timeout=60)
            except ReproError as exc:
                if worst == "exact":
                    worst = "typed-error"
                    error = type(exc).__name__
            except Exception as exc:  # noqa: BLE001 — the class under test
                worst = "unhandled"
                error = f"{type(exc).__name__}: {exc}"
            else:
                if not np.array_equal(outcome.values, expected_values):
                    worst = "wrong-answer"
                    error = "served result differs from the sort oracle"
    finally:
        server.close()
    return ChaosTrial(
        index=index,
        target=SERVING_TARGET,
        n=n,
        k=k,
        site=plan.site,
        fault=plan.fault,
        silent=plan.silent,
        injections=len(injector.injections),
        outcome=worst,
        error=error,
    )


def run_campaign(seed: int = 0, trials: int = 50) -> ChaosReport:
    """Run ``trials`` randomized fault-injection trials from one seed."""
    master = random.Random(seed)
    report = ChaosReport(seed=seed)
    for index in range(trials):
        trial_seed = master.randrange(2**31)
        report.trials.append(_run_trial(index, master, trial_seed))
    return report
