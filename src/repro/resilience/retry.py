"""Bounded retry with exponential backoff in *simulated* time.

A production system would sleep between retries; a deterministic simulator
must not touch the wall clock.  Backoff here is therefore accounted the
same way every other cost in this library is: as simulated seconds,
appended to the winning result's execution trace as one fixed-time
``resilience-backoff`` kernel.  Identical fault schedules thus produce
identical ``simulated_ms()`` — the determinism the chaos suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    DeviceLostError,
    FaultError,
    InvalidParameterError,
    KernelTimeoutError,
    MemoryCorruptionError,
    TransferError,
)

#: Fault classes worth retrying on the *same* algorithm: transient device
#: failures.  ResourceExhaustedError is deliberately absent — a capacity
#: limit will not go away on retry, so it falls through to the next
#: algorithm in the fallback chain instead.
RETRYABLE_ERRORS = (
    DeviceLostError,
    MemoryCorruptionError,
    KernelTimeoutError,
    TransferError,
    FaultError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff, expressed in simulated seconds."""

    max_attempts: int = 3
    base_backoff_seconds: float = 1e-3
    multiplier: float = 2.0
    max_backoff_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError("max_attempts must be at least 1")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise InvalidParameterError("backoff durations cannot be negative")
        if self.multiplier < 1.0:
            raise InvalidParameterError("multiplier must be at least 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Simulated sleep before retrying after failed attempt ``attempt``
        (1-based): ``base * multiplier**(attempt - 1)``, capped."""
        if attempt < 1:
            raise InvalidParameterError("attempt numbers are 1-based")
        raw = self.base_backoff_seconds * self.multiplier ** (attempt - 1)
        return min(raw, self.max_backoff_seconds)

    def total_backoff_seconds(self, failed_attempts: int) -> float:
        """Simulated backoff accumulated over ``failed_attempts`` failures."""
        return sum(
            self.backoff_seconds(attempt)
            for attempt in range(1, failed_attempts + 1)
        )


#: A policy that never retries — useful to make fallback decisions direct.
NO_RETRY = RetryPolicy(max_attempts=1)

#: The default policy used by the resilient executor and the engine.
DEFAULT_RETRY = RetryPolicy()


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` is a transient fault worth retrying."""
    return isinstance(error, RETRYABLE_ERRORS)
