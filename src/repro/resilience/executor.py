"""Resilient top-k execution: retries, fallback chains, verification.

The production counterpart to :func:`repro.topk`: where the plain entry
point lets a device fault escape as an exception, the
:class:`ResilientExecutor` walks a *fallback chain* of algorithms (by
default the planner's cost ranking, finishing on the CPU heap, which has
no simulated GPU to lose) and retries each transient fault with
exponential backoff in simulated time:

1. **bounded retry** — :class:`~repro.resilience.retry.RetryPolicy`;
   backoff is accounted as a fixed-time ``resilience-backoff`` kernel
   appended to the winning trace, so timing stays deterministic;
2. **fallback** — after ``max_attempts`` failures (or immediately on
   :class:`~repro.errors.ResourceExhaustedError`, which no retry can fix)
   the next-cheapest surviving algorithm takes over;
3. **verification** — every candidate result passes the
   :mod:`repro.resilience.verify` hooks; a corrupt answer is treated as a
   retryable :class:`~repro.errors.MemoryCorruptionError`, never returned.

With no fault injector installed and no faults occurring, the executor
adds nothing to the result: same values, same trace, same simulated time
as calling the algorithm directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.algorithms.base import TopKResult, validate_topk_args
from repro.algorithms.registry import create_for_node, list_algorithms
from repro.core.planner import TopKPlanner
from repro.costmodel.base import UNIFORM_FLOAT, WorkloadProfile
from repro.errors import ReproError, ResourceExhaustedError
from repro.gpu import faults
from repro.gpu.counters import KernelCounters
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import BACKOFF_KERNEL
from repro.plan import CPU_FALLBACK, Fallback, PlanNode, build_fallback
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy, is_retryable
from repro.resilience.verify import verify_result

#: The fixed fallback order when the caller names an explicit algorithm
#: (the planner's cost ranking is used for "auto"): bitonic first (the
#: paper's winner), then the selection baselines, then the CPU heap —
#: which needs no working GPU at all.
DEFAULT_FALLBACK_CHAIN = ("bitonic", "radix-select", "bucket-select", "sort")


@dataclass
class AttemptLog:
    """What happened across one resilient run, for reports and tests."""

    attempts: int = 0
    retries: int = 0
    fallbacks: list[tuple[str, str]] = field(default_factory=list)
    verification_failures: int = 0
    backoff_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)


class ResilientExecutor:
    """Run top-k so that transient device faults never surface as wrong
    answers — only as retries, fallbacks, or (when everything is down) a
    typed :class:`~repro.errors.ReproError`."""

    def __init__(
        self,
        device: DeviceSpec | None = None,
        retry: RetryPolicy = DEFAULT_RETRY,
        verify: bool = True,
        cpu_fallback: bool = True,
    ):
        self.device = device or get_device()
        self.retry = retry
        self.verify = verify
        self.cpu_fallback = cpu_fallback
        self.planner = TopKPlanner(self.device)

    # -- chain construction ---------------------------------------------

    def fallback_plan(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        algorithm: str = "auto",
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> Fallback:
        """The explicit :class:`~repro.plan.Fallback` node for this
        configuration: the planner's cost ranking (or the caller's named
        algorithm), extended with the fixed degradation order and — when
        ``cpu_fallback`` — anchored on the CPU heap."""
        approx_config = None
        expected_recall = None
        if algorithm == "auto":
            choice = self.planner.choose(n, k, dtype, profile)
            ranked = list(choice.candidates)
            approx_config = choice.approx_config
            expected_recall = choice.expected_recall
        else:
            ranked = [(algorithm, None)]
        names = [name for name, _ in ranked]
        for name in DEFAULT_FALLBACK_CHAIN:
            if name not in names and name in list_algorithms():
                ranked.append((name, None))
                names.append(name)
        return build_fallback(
            ranked,
            n=n,
            k=k,
            dtype=str(np.dtype(dtype)),
            approx_config=approx_config,
            expected_recall=expected_recall,
            terminal_cpu=self.cpu_fallback,
        )

    def fallback_chain(
        self,
        n: int,
        k: int,
        dtype: np.dtype,
        algorithm: str = "auto",
        profile: WorkloadProfile = UNIFORM_FLOAT,
    ) -> list[str]:
        """Ordered algorithm names to attempt (the plan's chain view)."""
        return self.fallback_plan(n, k, dtype, algorithm, profile).chain()

    # -- execution -------------------------------------------------------

    def run(
        self,
        data: np.ndarray,
        k: int,
        algorithm: str = "auto",
        model_n: int | None = None,
        profile: WorkloadProfile = UNIFORM_FLOAT,
        log: AttemptLog | None = None,
    ) -> TopKResult:
        """Compute the exact top-k of ``data``, surviving injected faults.

        Raises a typed :class:`~repro.errors.ReproError` only when every
        algorithm in the chain has exhausted its retry budget.
        """
        data = np.asarray(data)
        validate_topk_args(data, k)
        log = log if log is not None else AttemptLog()
        plan = self.fallback_plan(
            len(data), k, data.dtype, algorithm, profile
        )
        chain = plan.chain()
        registry = obs.active_metrics()
        last_error: ReproError | None = None
        with obs.span(
            "resilient-topk",
            category="resilience",
            n=len(data),
            k=k,
            requested_algorithm=algorithm,
            chain=",".join(chain),
            plan_fingerprint=plan.fingerprint(),
        ) as span:
            for position, node in enumerate(plan.alternatives):
                name = chain[position]
                if position > 0:
                    previous = chain[position - 1]
                    log.fallbacks.append((previous, name))
                    if registry is not None:
                        registry.counter(
                            "resilience.fallbacks", source=previous, target=name
                        ).inc()
                    with obs.span(
                        "fallback",
                        category="resilience",
                        source=previous,
                        target=name,
                    ):
                        pass
                result, error = self._attempt_node(
                    node, name, data, k, model_n, log
                )
                if result is not None:
                    self._account_backoff(result, log)
                    span.set(
                        algorithm=result.algorithm,
                        attempts=log.attempts,
                        retries=log.retries,
                        fallbacks=len(log.fallbacks),
                    )
                    if registry is not None:
                        registry.counter(
                            "resilience.runs", algorithm=result.algorithm
                        ).inc()
                    return result
                last_error = error
            span.set(exhausted=True, attempts=log.attempts)
        if registry is not None:
            registry.counter("resilience.exhausted").inc()
        assert last_error is not None
        raise last_error

    def _attempt_node(
        self,
        node: PlanNode,
        name: str,
        data: np.ndarray,
        k: int,
        model_n: int | None,
        log: AttemptLog,
    ) -> tuple[TopKResult | None, ReproError | None]:
        """Retry loop for one fallback alternative; (None, error) means
        'degrade to the next node'."""
        registry = obs.active_metrics()
        last_error: ReproError | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            log.attempts += 1
            try:
                algorithm = create_for_node(node, self.device)
                if name == CPU_FALLBACK:
                    # The CPU heap has no simulated device to lose and no
                    # PCIe copy to corrupt: it is the terminal stage that
                    # must succeed whatever the injector does, so device
                    # fault sites are suspended for its attempt.
                    with faults.suspended():
                        result = algorithm.run(data, k, model_n=model_n)
                else:
                    result = algorithm.run(data, k, model_n=model_n)
                    # Simulated D2H copy of the finished result: a transfer
                    # fault-injection site, then an optional silent-
                    # corruption site the verification hooks must catch.
                    faults.fault_point("result-transfer", name)
                    faults.filter_result("result-buffer", result.values, name)
                if self.verify:
                    verify_result(data, result)
                return result, None
            except ResourceExhaustedError as error:
                # A capacity limit: retrying cannot help, skip the stage.
                log.errors.append(f"{name}: {error}")
                if registry is not None:
                    registry.counter(
                        "resilience.infeasible", algorithm=name
                    ).inc()
                return None, error
            except ReproError as error:
                if not is_retryable(error):
                    raise
                log.errors.append(f"{name}: {error}")
                last_error = error
                site = getattr(error, "site", "")
                if site == "result-verify":
                    log.verification_failures += 1
                    if registry is not None:
                        registry.counter(
                            "resilience.verification_failures", algorithm=name
                        ).inc()
                if attempt == self.retry.max_attempts:
                    return None, last_error
                log.retries += 1
                backoff = self.retry.backoff_seconds(attempt)
                log.backoff_seconds += backoff
                if registry is not None:
                    registry.counter(
                        "resilience.retries",
                        algorithm=name,
                        fault=type(error).__name__,
                    ).inc()
                with obs.span(
                    "retry",
                    category="resilience",
                    algorithm=name,
                    attempt=attempt,
                    fault=type(error).__name__,
                    backoff_ms=backoff * 1e3,
                ) as retry_span:
                    retry_span.add_simulated_ms(backoff * 1e3)
        return None, last_error

    def _account_backoff(self, result: TopKResult, log: AttemptLog) -> None:
        """Charge accumulated backoff to the winning trace (simulated)."""
        if log.backoff_seconds <= 0.0:
            return
        # Constructed directly (not via trace.launch) so backoff accounting
        # cannot itself trip the kernel-launch fault point.
        counters = KernelCounters(
            name=BACKOFF_KERNEL, fixed_seconds=log.backoff_seconds
        )
        result.trace.kernels.append(counters)
        result.trace.notes["retries"] = float(log.retries)
        result.trace.notes["backoff_seconds"] = log.backoff_seconds


def resilient_topk(
    data: np.ndarray,
    k: int,
    algorithm: str = "auto",
    device: DeviceSpec | None = None,
    retry: RetryPolicy = DEFAULT_RETRY,
    model_n: int | None = None,
    profile: WorkloadProfile = UNIFORM_FLOAT,
) -> TopKResult:
    """Convenience wrapper around :class:`ResilientExecutor`."""
    executor = ResilientExecutor(device, retry=retry)
    return executor.run(
        data, k, algorithm=algorithm, model_n=model_n, profile=profile
    )
