"""Result verification hooks: catch corrupted answers before callers do.

Silent memory corruption (a bit flip in a result buffer) produces a result
that *looks* fine — right length, plausible values.  These checks are the
cheap invariants every top-k answer must satisfy, all O(k):

* **k-length** — exactly ``k`` values and (if present) ``k`` indices;
* **sortedness** — values are in descending rank order (pairs involving
  NaN are skipped: IEEE comparisons with NaN are unordered, and the radix
  artifact documented in ``tests/test_special_values.py`` may surface NaN
  legitimately);
* **membership spot-check** — ``values[i] == data[indices[i]]`` for every
  result row (bitwise NaN-tolerant), so a flipped bit in either array is
  caught.

A failed check raises :class:`~repro.errors.MemoryCorruptionError`, which
the resilient executor treats as retryable — re-execution replaces the
corrupt answer.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import TopKResult
from repro.errors import MemoryCorruptionError


def _equal_nan_aware(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise equality where NaN == NaN (float dtypes only)."""
    if a.dtype.kind == "f":
        return (a == b) | (np.isnan(a) & np.isnan(b))
    return a == b


def verification_issues(data: np.ndarray, result: TopKResult) -> list[str]:
    """All violated invariants of ``result`` against its input ``data``."""
    issues: list[str] = []
    values = np.asarray(result.values)
    if len(values) != result.k:
        issues.append(
            f"k-length: expected {result.k} values, got {len(values)}"
        )
    if result.indices is not None and len(result.indices) != result.k:
        issues.append(
            f"k-length: expected {result.k} indices, got {len(result.indices)}"
        )
    if len(values) > 1:
        if values.dtype.kind == "f":
            nan = np.isnan(values)
            comparable = ~(nan[:-1] | nan[1:])
        else:
            comparable = np.ones(len(values) - 1, dtype=bool)
        descending = values[:-1] >= values[1:]
        if bool((~descending & comparable).any()):
            issues.append("sortedness: values are not in descending order")
    if result.indices is not None and len(values) == result.k:
        indices = np.asarray(result.indices)
        if indices.size and (
            (indices < 0).any() or (indices >= len(data)).any()
        ):
            issues.append("membership: indices out of range")
        elif indices.size:
            gathered = np.asarray(data)[indices]
            if not bool(_equal_nan_aware(gathered, values).all()):
                issues.append(
                    "membership: values disagree with data[indices]"
                )
    return issues


def verify_result(data: np.ndarray, result: TopKResult) -> None:
    """Raise :class:`MemoryCorruptionError` if ``result`` is corrupt."""
    issues = verification_issues(data, result)
    if issues:
        raise MemoryCorruptionError(
            f"result verification failed for {result.algorithm}: "
            + "; ".join(issues),
            site="result-verify",
            detail=result.algorithm,
        )
