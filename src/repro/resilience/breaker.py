"""Circuit breaker: stop retrying a device that keeps faulting.

Retry-with-backoff (``repro.resilience.retry``) is the right answer to a
*transient* fault; against a device that is persistently down it amplifies
overload — every query burns its full retry budget before failing, so a
saturated queue gets slower exactly when it must get faster.  The breaker
is the standard production remedy, adapted to this library's simulated
clock:

* **closed** — normal operation; consecutive failures are counted and
  successes reset the count.
* **open** — tripped after ``failure_threshold`` consecutive failures.
  New work is refused *fast* (the caller sheds it with a typed error or
  routes around the device) for ``cooldown_ms`` of **simulated** time, so
  breaker behavior is as deterministic and testable as everything else in
  the simulator — identical fault schedules trip and recover the breaker
  at identical simulated timestamps.
* **half-open** — after the cooldown, up to ``half_open_probes`` trial
  executions are allowed through; one success closes the breaker, one
  failure re-opens it for another cooldown.

The breaker shares the resilience layer's fault taxonomy: only errors
that :func:`repro.resilience.retry.is_retryable` classifies as transient
device faults count toward tripping — an
:class:`~repro.errors.InvalidParameterError` is the caller's bug, not the
device's, and must never open the breaker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError
from repro.observability.metrics import MetricsRegistry
from repro.resilience.retry import is_retryable

#: Breaker states (also published as the ``resilience.breaker.state``
#: gauge: closed = 0, open = 1, half-open = 2).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_GAUGE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs of one circuit breaker."""

    #: Consecutive counted failures that trip the breaker open.
    failure_threshold: int = 3
    #: Simulated milliseconds the breaker stays open before probing.
    cooldown_ms: float = 1.0
    #: Trial executions allowed while half-open before a verdict.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be at least 1, "
                f"got {self.failure_threshold}"
            )
        if self.cooldown_ms <= 0:
            raise InvalidParameterError(
                f"cooldown_ms must be positive, got {self.cooldown_ms}"
            )
        if self.half_open_probes < 1:
            raise InvalidParameterError(
                f"half_open_probes must be at least 1, "
                f"got {self.half_open_probes}"
            )


DEFAULT_BREAKER = BreakerPolicy()


class CircuitBreaker:
    """Per-device failure tracker with open/half-open/closed states.

    All transitions are driven by an explicit ``now_ms`` simulated
    timestamp supplied by the caller (the SLO simulator's event clock, or
    a server's accumulated simulated milliseconds) — the breaker never
    reads a wall clock, which is what keeps overload behavior replayable.
    """

    def __init__(
        self,
        policy: BreakerPolicy = DEFAULT_BREAKER,
        name: str = "device",
        metrics: MetricsRegistry | None = None,
    ):
        self.policy = policy
        self.name = name
        self.metrics = metrics
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms: float | None = None
        self._half_open_in_flight = 0
        #: Lifetime transition counts, for stats() and tests.
        self.times_opened = 0
        self.times_closed = 0
        self.probes = 0

    # -- admission --------------------------------------------------------

    def allow(self, now_ms: float) -> bool:
        """May a new execution hit the device at simulated time ``now_ms``?

        An open breaker transitions to half-open once the cooldown has
        elapsed; half-open admits at most ``half_open_probes`` in-flight
        probes.  Callers must pair every allowed execution with exactly
        one :meth:`record_success` / :meth:`record_failure`.
        """
        if self.state == OPEN:
            if now_ms - self.opened_at_ms >= self.policy.cooldown_ms:
                self._transition(HALF_OPEN)
                self._half_open_in_flight = 0
            else:
                return False
        if self.state == HALF_OPEN:
            if self._half_open_in_flight >= self.policy.half_open_probes:
                return False
            self._half_open_in_flight += 1
            self.probes += 1
            self._count("resilience.breaker.probes")
            return True
        return True

    # -- outcomes ---------------------------------------------------------

    def record_success(self, now_ms: float) -> None:
        """A device execution completed without a counted fault."""
        if self.state == HALF_OPEN:
            self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
            self._transition(CLOSED)
            self.times_closed += 1
            self._count("resilience.breaker.closed")
        self.consecutive_failures = 0

    def record_failure(self, now_ms: float, error: BaseException | None = None) -> None:
        """A device execution faulted; trips the breaker at the threshold.

        ``error`` is classified through the resilience fault taxonomy:
        non-retryable errors (caller bugs, hard capacity limits) do not
        count.  ``error=None`` means the caller already classified the
        failure as a device fault (e.g. it observed the batcher's
        fallback counters move) and is always counted.
        """
        if error is not None and not is_retryable(error):
            return
        if self.state == HALF_OPEN:
            self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
            self._open(now_ms)
            return
        self.consecutive_failures += 1
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._open(now_ms)

    # -- transitions ------------------------------------------------------

    def _open(self, now_ms: float) -> None:
        self._transition(OPEN)
        self.opened_at_ms = now_ms
        self.consecutive_failures = 0
        self.times_opened += 1
        self._count("resilience.breaker.opened")

    def _transition(self, state: str) -> None:
        self.state = state
        if self.metrics is not None:
            self.metrics.gauge(
                "resilience.breaker.state", breaker=self.name
            ).set(_STATE_GAUGE[state])

    def _count(self, metric: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric, breaker=self.name).inc()

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "times_opened": self.times_opened,
            "times_closed": self.times_closed,
            "probes": self.probes,
        }
