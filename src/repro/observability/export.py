"""Exporters: JSON-lines and Chrome ``chrome://tracing`` trace format.

JSON-lines is the machine-readable archive format (one record per line:
a ``meta`` header, every span, every metric instrument); it round-trips
back into a :class:`~repro.observability.tracer.Tracer` via
:func:`load_jsonl`, which is what the regression tests rely on.

The Chrome trace format is the human one: load the file at
``chrome://tracing`` (or https://ui.perfetto.dev) to see two process
tracks — real wall-clock time of the Python reproduction and simulated
device time from the timing model.  Kernel-launch spans are emitted with
``cat == "kernel"``, and their durations sum exactly to the result's
``simulated_ms()`` total, which the CLI and tests verify.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Span, Tracer

#: Chrome trace process ids for the two time domains.
WALL_PID = 1
SIM_PID = 2


def _json_default(value):
    """Serialize numpy scalars / dtypes and other oddballs."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def _span_record(span: Span) -> dict:
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "category": span.category,
        "start_wall": span.start_wall,
        "end_wall": span.end_wall,
        "sim_ms": span.sim_ms,
        "attributes": span.attributes,
    }


def to_jsonl(tracer: Tracer, metrics: MetricsRegistry | None = None) -> str:
    """Serialize a trace (and optionally metrics) to JSON-lines."""
    records: list[dict] = [{"type": "meta", "format": "repro-trace", "version": 1}]
    records.extend(_span_record(span) for span in tracer.walk())
    if metrics is not None:
        for record in metrics.snapshot():
            records.append({"type": "metric", **record})
    return "\n".join(json.dumps(record, default=_json_default) for record in records)


def write_jsonl(
    path: str | Path, tracer: Tracer, metrics: MetricsRegistry | None = None
) -> None:
    Path(path).write_text(to_jsonl(tracer, metrics) + "\n")


def load_jsonl(text: str | Iterable[str]) -> tuple[Tracer, list[dict]]:
    """Rebuild a :class:`Tracer` and metric records from JSON-lines.

    The reconstructed tracer is read-only in spirit: spans carry the
    recorded clocks and attributes and are wired into the original tree.
    """
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = list(text)
    tracer = Tracer()
    spans: dict[int, Span] = {}
    metrics: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "metric":
            metrics.append(record)
            continue
        if kind != "span":
            continue
        span = Span(
            name=record["name"],
            category=record["category"],
            span_id=record["id"],
            parent_id=record["parent"],
            start_wall=record["start_wall"],
            attributes=record["attributes"],
        )
        span.end_wall = record["end_wall"]
        span.sim_ms = record["sim_ms"]
        spans[span.span_id] = span
        parent = spans.get(record["parent"])
        if parent is None:
            tracer.roots.append(span)
        else:
            parent.children.append(span)
    tracer._next_id = max(spans, default=0) + 1
    return tracer, metrics


# -- Chrome trace format -------------------------------------------------


def _wall_events(span: Span, events: list[dict]) -> None:
    end = span.end_wall if span.end_wall is not None else span.start_wall
    events.append(
        {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_wall * 1e6,
            "dur": (end - span.start_wall) * 1e6,
            "pid": WALL_PID,
            "tid": 1,
            "args": dict(span.attributes),
        }
    )
    for child in span.children:
        _wall_events(child, events)


def _sim_events(span: Span, cursor_us: float, events: list[dict]) -> float:
    """Lay the simulated timeline out depth-first; returns the new cursor.

    A span's interval covers its own simulated time followed by its
    children's, so parents visually contain their children exactly as the
    wall-clock track does.
    """
    total_us = span.total_sim_ms * 1e3
    if total_us <= 0 and not span.children:
        return cursor_us
    events.append(
        {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": cursor_us,
            "dur": total_us,
            "pid": SIM_PID,
            "tid": 1,
            "args": dict(span.attributes),
        }
    )
    child_cursor = cursor_us + span.sim_ms * 1e3
    for child in span.children:
        child_cursor = _sim_events(child, child_cursor, events)
    return cursor_us + total_us


def to_chrome_trace(tracer: Tracer, metrics: MetricsRegistry | None = None) -> dict:
    """The trace as a Chrome trace-event JSON object.

    Timestamps and durations are microseconds (the format's unit).  The
    wall-clock process shows real Python execution; the simulated process
    shows modeled device time with one ``cat == "kernel"`` event per
    kernel launch.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": WALL_PID,
            "args": {"name": "wall clock (reproduction)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "args": {"name": "simulated device time"},
        },
    ]
    for root in tracer.roots:
        _wall_events(root, events)
    cursor = 0.0
    for root in tracer.roots:
        cursor = _sim_events(root, cursor, events)
    document: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.snapshot()}
    return document


def write_chrome_trace(
    path: str | Path, tracer: Tracer, metrics: MetricsRegistry | None = None
) -> None:
    Path(path).write_text(
        json.dumps(to_chrome_trace(tracer, metrics), indent=2, default=_json_default)
    )


def kernel_sim_total_ms(document: dict) -> float:
    """Sum of ``cat == "kernel"`` durations in a Chrome trace, in ms.

    The invariant the acceptance tests pin down: for a traced ``topk()``
    this equals ``TopKResult.simulated_ms()``.  Only the simulated-time
    process counts — the wall-clock track duplicates the kernel spans with
    real (Python) durations.
    """
    return sum(
        event.get("dur", 0.0)
        for event in document.get("traceEvents", [])
        if event.get("cat") == "kernel"
        and event.get("ph") == "X"
        and event.get("pid") == SIM_PID
    ) / 1e3
