"""Metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is the sink the GPU simulator, planner, engine
executor, and hybrid schedulers publish into while observation is active.
The model is deliberately Prometheus-shaped (instrument kinds, label
sets, a flat snapshot) so an export to a real metrics backend is a
serialization detail, not a redesign:

* **Counter** — monotonically increasing totals (kernel launches, global
  bytes moved, planner decisions);
* **Gauge** — last-write-wins values (occupancy, selected split fraction);
* **Histogram** — distribution summaries (per-kernel simulated
  milliseconds, SIMT barrier counts) with power-of-two buckets.

Instruments are created on first use and accumulate across queries until
the registry is reset, which is what lets a long-lived
:class:`~repro.engine.session.Session` aggregate per-query costs.
"""

from __future__ import annotations

import math
from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A distribution summary with logarithmic (power-of-two) buckets.

    Tracks count / sum / min / max exactly; the bucket map counts
    observations by ``ceil(log2(value))``, which is enough resolution to
    separate a 0.1 ms kernel from a 100 ms one without storing samples.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= 0:
            bucket = -1025  # dedicated bucket for zero/negative observations
        else:
            bucket = math.ceil(math.log2(value))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Summary:
    """A distribution summary with *exact* quantiles.

    Unlike :class:`Histogram` (which buckets by power of two and cannot
    answer "what is p99"), a Summary keeps every observation, so its
    quantiles are exact and deterministic — the property the SLO serving
    layer's per-class latency digests are gated on in CI.  The cost is
    O(observations) memory, which is fine for bench-sized runs; use a
    Histogram for unbounded hot paths.
    """

    kind = "summary"

    #: The percentiles every snapshot reports.
    QUANTILES = (0.50, 0.95, 0.99)

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    def quantile(self, q: float) -> float | None:
        """Exact nearest-rank quantile; None with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return None
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, math.ceil(q * len(self._values)) - 1)
        return self._values[rank]

    @property
    def maximum(self) -> float | None:
        """Largest observation; None with no observations."""
        return self.quantile(1.0)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            **{
                f"p{int(q * 100)}": self.quantile(q)
                for q in self.QUANTILES
            },
            "max": self.maximum,
        }


Instrument = Counter | Gauge | Histogram | Summary


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by (name, labels)."""

    def __init__(self):
        self._instruments: dict[tuple[str, str, LabelKey], Instrument] = {}

    def _get(self, factory, name: str, labels: dict) -> Instrument:
        key = (factory.kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def summary(self, name: str, **labels) -> Summary:
        return self._get(Summary, name, labels)

    # -- views -----------------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> list[dict]:
        """JSON-serializable dump of every instrument."""
        records = []
        for instrument in self._instruments.values():
            records.append(
                {
                    "kind": instrument.kind,
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    **instrument.snapshot(),
                }
            )
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def value(self, name: str, **labels) -> float | None:
        """Convenience: the current value of a counter/gauge, or None."""
        for kind in ("counter", "gauge"):
            instrument = self._instruments.get((kind, name, _label_key(labels)))
            if instrument is not None:
                return instrument.value
        return None

    def reset(self) -> None:
        self._instruments.clear()

    def render(self) -> str:
        """Fixed-width table of every instrument, for CLI output."""
        lines = []
        for record in self.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(record["labels"].items()))
            name = record["name"] + (f"{{{labels}}}" if labels else "")
            if record["kind"] == "histogram":
                detail = (
                    f"count={record['count']} sum={record['sum']:.4f} "
                    f"mean={record['mean']:.4f}"
                )
            elif record["kind"] == "summary":
                p50 = record["p50"]
                p99 = record["p99"]
                detail = (
                    f"count={record['count']} "
                    f"p50={p50 if p50 is None else format(p50, '.4f')} "
                    f"p99={p99 if p99 is None else format(p99, '.4f')}"
                )
            else:
                detail = f"{record['value']:.4f}"
            lines.append(f"  {name:<56} {record['kind']:<9} {detail}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
