"""Metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is the sink the GPU simulator, planner, engine
executor, and hybrid schedulers publish into while observation is active.
The model is deliberately Prometheus-shaped (instrument kinds, label
sets, a flat snapshot) so an export to a real metrics backend is a
serialization detail, not a redesign:

* **Counter** — monotonically increasing totals (kernel launches, global
  bytes moved, planner decisions);
* **Gauge** — last-write-wins values (occupancy, selected split fraction);
* **Histogram** — distribution summaries (per-kernel simulated
  milliseconds, SIMT barrier counts) with power-of-two buckets.

Instruments are created on first use and accumulate across queries until
the registry is reset, which is what lets a long-lived
:class:`~repro.engine.session.Session` aggregate per-query costs.
"""

from __future__ import annotations

import math
from typing import Iterator

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins value."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A distribution summary with logarithmic (power-of-two) buckets.

    Tracks count / sum / min / max exactly; the bucket map counts
    observations by ``ceil(log2(value))``, which is enough resolution to
    separate a 0.1 ms kernel from a 100 ms one without storing samples.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= 0:
            bucket = -1025  # dedicated bucket for zero/negative observations
        else:
            bucket = math.ceil(math.log2(value))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of instruments keyed by (name, labels)."""

    def __init__(self):
        self._instruments: dict[tuple[str, str, LabelKey], Instrument] = {}

    def _get(self, factory, name: str, labels: dict) -> Instrument:
        key = (factory.kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- views -----------------------------------------------------------

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> list[dict]:
        """JSON-serializable dump of every instrument."""
        records = []
        for instrument in self._instruments.values():
            records.append(
                {
                    "kind": instrument.kind,
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    **instrument.snapshot(),
                }
            )
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def value(self, name: str, **labels) -> float | None:
        """Convenience: the current value of a counter/gauge, or None."""
        for kind in ("counter", "gauge"):
            instrument = self._instruments.get((kind, name, _label_key(labels)))
            if instrument is not None:
                return instrument.value
        return None

    def reset(self) -> None:
        self._instruments.clear()

    def render(self) -> str:
        """Fixed-width table of every instrument, for CLI output."""
        lines = []
        for record in self.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(record["labels"].items()))
            name = record["name"] + (f"{{{labels}}}" if labels else "")
            if record["kind"] == "histogram":
                detail = (
                    f"count={record['count']} sum={record['sum']:.4f} "
                    f"mean={record['mean']:.4f}"
                )
            else:
                detail = f"{record['value']:.4f}"
            lines.append(f"  {name:<56} {record['kind']:<9} {detail}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
