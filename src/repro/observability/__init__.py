"""repro.observability — tracing, metrics, and profiling hooks.

The layer every scaling PR profiles against: hierarchical spans
(query -> plan -> algorithm -> kernel launch) with wall-clock *and*
simulated-time attribution, plus a metrics registry the GPU simulator,
planner, engine executor, and hybrid schedulers publish into.

Usage::

    from repro import observability as obs

    with obs.observe() as observation:
        result = topk(values, k=32)
    print(observation.tracer.render())
    obs.write_chrome_trace("trace.json", observation.tracer)

Instrumentation sites call :func:`span` / :func:`active_metrics`; both
read context-vars and cost one dictionary-free lookup when observation is
disabled, so the library runs untraced at full speed by default.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.observability.export import (
    kernel_sim_total_ms,
    load_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
)
from repro.observability.tracer import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Summary",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "Observation",
    "observe",
    "suspended",
    "span",
    "current_tracer",
    "active_metrics",
    "kernel_sim_total_ms",
    "load_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

_TRACER: ContextVar[Tracer | None] = ContextVar("repro_tracer", default=None)
_METRICS: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics", default=None
)


@dataclass
class Observation:
    """A tracer + metrics registry pair installed together."""

    tracer: Tracer
    metrics: MetricsRegistry

    @contextmanager
    def activate(self):
        """Install this observation for the duration of a ``with`` block."""
        tracer_token = _TRACER.set(self.tracer)
        metrics_token = _METRICS.set(self.metrics)
        try:
            yield self
        finally:
            _TRACER.reset(tracer_token)
            _METRICS.reset(metrics_token)


@contextmanager
def observe(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Enable observation for a ``with`` block; yields the Observation."""
    # Explicit None checks: an empty registry (len 0) is falsy, and ``or``
    # would silently swap a caller's registry for a fresh one.
    observation = Observation(
        Tracer() if tracer is None else tracer,
        MetricsRegistry() if metrics is None else metrics,
    )
    with observation.activate():
        yield observation


@contextmanager
def suspended():
    """Temporarily disable observation (for internal helper computations
    that are not part of the modeled execution, e.g. a hybrid scheduler's
    functional per-partition runs whose kernels the scheduler re-accounts
    in its own trace)."""
    tracer_token = _TRACER.set(None)
    metrics_token = _METRICS.set(None)
    try:
        yield
    finally:
        _TRACER.reset(tracer_token)
        _METRICS.reset(metrics_token)


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when observation is disabled."""
    return _TRACER.get()


def active_metrics() -> MetricsRegistry | None:
    """The installed metrics registry, or None when disabled."""
    return _METRICS.get()


def span(name: str, category: str = "span", **attributes) -> Span | NullSpan:
    """Open a span on the active tracer, or return the shared no-op span.

    This is the only call instrumented hot paths make; when tracing is
    off it performs one context-var read and returns :data:`NULL_SPAN`.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **attributes)
