"""Bridges between the GPU simulation layer and the observability layer.

This module is imported by instrumentation *call sites* (the public
``topk`` entry point, the query executor, the hybrid schedulers), never
by the observability core — it imports :mod:`repro.gpu.timing`, and
keeping it out of ``repro.observability.__init__`` avoids an import
cycle with the gpu package's own metrics publishing.

The central helper, :func:`record_trace`, converts an
:class:`~repro.gpu.counters.ExecutionTrace` into

* one ``category == "kernel"`` child span per kernel launch whose
  ``sim_ms`` is the launch's simulated time on the device — these are the
  events whose durations sum to ``TopKResult.simulated_ms()``; and
* metric updates: launch counts, global/shared traffic, atomics, and a
  per-kernel simulated-time histogram.
"""

from __future__ import annotations

import functools
import re

from repro.gpu.counters import ExecutionTrace
from repro.gpu.device import DeviceSpec
from repro.gpu.timing import kernel_time
from repro.observability import active_metrics, current_tracer

#: Kernel names carry per-pass suffixes ("select-histogram-3"); metrics
#: label by the family so cardinality stays bounded.
_PASS_SUFFIX = re.compile(r"-\d+$")


def kernel_family(name: str) -> str:
    return _PASS_SUFFIX.sub("", name)


def record_trace(trace: ExecutionTrace, device: DeviceSpec) -> float:
    """Record an execution trace's kernels as spans + metrics.

    Child spans land under the caller's currently open span.  Returns the
    trace's total simulated milliseconds (0.0 when observation is off and
    nothing was computed).
    """
    tracer = current_tracer()
    metrics = active_metrics()
    if tracer is None and metrics is None:
        return 0.0

    total_ms = 0.0
    for counters in trace.kernels:
        timing = kernel_time(counters, device)
        sim_ms = timing.total * 1e3
        total_ms += sim_ms
        if tracer is not None:
            with tracer.span(
                f"kernel:{counters.name}",
                category="kernel",
                bound_by=timing.bound_by,
                global_bytes=counters.global_bytes,
                shared_bytes=counters.shared_bytes,
                atomic_ops=counters.atomic_ops,
                occupancy=counters.occupancy,
            ) as span:
                span.add_simulated_ms(sim_ms)
        if metrics is not None:
            family = kernel_family(counters.name)
            metrics.counter("gpu.kernel_launches", kernel=family).inc()
            metrics.counter("gpu.global_bytes").inc(counters.global_bytes)
            metrics.counter("gpu.shared_bytes").inc(counters.shared_bytes)
            metrics.counter("gpu.shared_bytes_weighted").inc(
                counters.shared_bytes_weighted
            )
            metrics.counter("gpu.atomic_ops").inc(counters.atomic_ops)
            metrics.counter("gpu.divergent_iterations").inc(
                counters.divergent_iterations
            )
            metrics.histogram("gpu.kernel_sim_ms", kernel=family).observe(sim_ms)
    if metrics is not None:
        metrics.counter("gpu.traces_recorded").inc()
        metrics.counter("gpu.simulated_ms_total").inc(total_ms)
        for note, value in trace.notes.items():
            try:
                metrics.gauge("trace.note", note=note).set(float(value))
            except (TypeError, ValueError):
                continue
    return total_ms


def traced_algorithm(run_method):
    """Wrap a :meth:`TopKAlgorithm.run` with span + kernel recording.

    Applied automatically by ``TopKAlgorithm.__init_subclass__``, so every
    algorithm — the five GPU baselines, bitonic top-k, the CPU variants,
    and user-registered subclasses — emits an ``algorithm:<name>`` span
    whose children are its kernel launches.  When observation is disabled
    the wrapper costs two context-var reads and delegates immediately.
    """

    @functools.wraps(run_method)
    def traced_run(self, data, k, model_n=None):
        tracer = current_tracer()
        metrics = active_metrics()
        if tracer is None and metrics is None:
            return run_method(self, data, k, model_n=model_n)
        if metrics is not None:
            metrics.counter("topk.runs", algorithm=self.name).inc()
        if tracer is None:
            result = run_method(self, data, k, model_n=model_n)
            record_trace(result.trace, self.device)
            return result
        with tracer.span(
            f"algorithm:{self.name}",
            category="algorithm",
            n=len(data),
            k=k,
            model_n=model_n or len(data),
            dtype=str(data.dtype),
        ) as span:
            result = run_method(self, data, k, model_n=model_n)
            sim_ms = record_trace(result.trace, self.device)
            span.set(simulated_ms=sim_ms, launches=result.trace.num_launches)
        return result

    traced_run.__repro_traced__ = True
    return traced_run
