"""Hierarchical tracing with dual time domains.

A :class:`Tracer` records a forest of :class:`Span` objects.  Each span
carries *two* clocks:

* **wall time** — real seconds measured with ``time.perf_counter`` while
  the instrumented Python code runs (how long the reproduction took), and
* **simulated time** — milliseconds attributed from the GPU timing model
  (how long the modeled hardware would take).

The two are deliberately independent: a kernel-launch span has zero wall
duration (the counters are analytic) but a meaningful simulated duration,
while a planner span has wall duration and no simulated time.

Zero overhead when disabled
---------------------------

Instrumentation sites never construct spans directly; they call
:func:`repro.observability.span`, which reads a :class:`contextvars.ContextVar`.
When no tracer is installed the call returns a shared no-op
:data:`NULL_SPAN` — one context-var load and one function call, no
allocation, no branching inside the hot loop.  Context-vars (rather than a
module global) keep concurrent sessions — threads, asyncio tasks — from
observing each other's spans.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Iterator


class Span:
    """One node in the trace tree.

    Usable as a context manager; entering starts the wall clock, exiting
    stops it and pops the span off its tracer's stack.
    """

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "start_wall",
        "end_wall",
        "sim_ms",
        "attributes",
        "children",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: int | None,
        start_wall: float,
        attributes: dict | None = None,
        tracer: "Tracer | None" = None,
    ):
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = start_wall
        self.end_wall: float | None = None
        self.sim_ms = 0.0
        self.attributes: dict = attributes or {}
        self.children: list[Span] = []
        self._tracer = tracer
        self._token = None

    # -- recording ------------------------------------------------------

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def add_simulated_ms(self, milliseconds: float) -> None:
        """Attribute simulated milliseconds to this span."""
        self.sim_ms += milliseconds

    # -- derived views ---------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall duration; 0.0 while the span is still open."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def total_sim_ms(self) -> float:
        """Simulated milliseconds of the whole subtree."""
        return self.sim_ms + sum(child.total_sim_ms for child in self.children)

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over the subtree, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if self._tracer is not None:
            self._tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"sim_ms={self.sim_ms:.3f}, children={len(self.children)})"
        )


class NullSpan:
    """The shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attributes) -> "NullSpan":
        return self

    def add_simulated_ms(self, milliseconds: float) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Builds the span forest for one observed execution."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.epoch = clock()
        self.roots: list[Span] = []
        self._next_id = 1
        # The open-span stack lives in a context-var so concurrent tasks
        # sharing one tracer nest their spans correctly.
        self._stack: ContextVar[tuple[Span, ...]] = ContextVar(
            "repro_span_stack", default=()
        )

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, category: str = "span", **attributes) -> Span:
        """Open a child span of the innermost open span (or a new root)."""
        stack = self._stack.get()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            category=category,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            start_wall=self._clock() - self.epoch,
            attributes=dict(attributes),
            tracer=self,
        )
        self._next_id += 1
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        span._token = self._stack.set(stack + (span,))
        return span

    def _finish(self, span: Span) -> None:
        span.end_wall = self._clock() - self.epoch
        if span._token is not None:
            self._stack.reset(span._token)
            span._token = None

    # -- queries ---------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    @property
    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def spans(self, category: str | None = None) -> list[Span]:
        """All spans, optionally filtered by category."""
        if category is None:
            return list(self.walk())
        return [span for span in self.walk() if span.category == category]

    def total_sim_ms(self, category: str | None = None) -> float:
        """Sum of per-span simulated milliseconds (no double counting:
        ``sim_ms`` is per-span, not per-subtree)."""
        return sum(span.sim_ms for span in self.spans(category))

    def render(self, max_depth: int | None = None) -> str:
        """ASCII tree of the trace with both clocks."""
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            indent = "  " * depth
            timing = f"{span.wall_seconds * 1e3:8.3f} ms wall"
            if span.total_sim_ms > 0:
                timing += f"  {span.total_sim_ms:10.4f} ms simulated"
            lines.append(f"{indent}{span.name} [{span.category}] {timing}")
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"
